//! # srs-trackers
//!
//! Aggressor-row trackers for Row Hammer defenses. The Scale-SRS paper
//! evaluates its mitigation with two state-of-the-art trackers:
//!
//! * the **Misra-Gries** frequent-item tracker used by Graphene and by the
//!   original Randomized Row-Swap work, kept entirely in SRAM inside the
//!   memory controller, and
//! * **Hydra**, a hybrid tracker that keeps small group counters and a row
//!   count cache on chip but spills exact per-row counters to a reserved
//!   region of DRAM, trading SRAM for extra memory traffic.
//!
//! Both implement the [`AggressorTracker`] trait; a mitigation is triggered
//! whenever a row's estimated activation count crosses the swap threshold
//! `TS`.
//!
//! ## Example
//!
//! ```
//! use srs_trackers::{AggressorTracker, MisraGriesTracker, MisraGriesConfig};
//!
//! let mut tracker = MisraGriesTracker::new(MisraGriesConfig::for_threshold(800, 1_360_000, 16));
//! let mut fired = false;
//! for _ in 0..800 {
//!     fired |= tracker.record_activation(0, 42).mitigate;
//! }
//! assert!(fired, "row crossing TS must trigger mitigation");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Trackers sit on the per-activation hot path: no panics on capacity or
// lookup surprises — every unwrap/expect needs a stated invariant.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod hydra;
pub mod misra_gries;
pub mod scan;
pub mod tracker;

pub use hydra::{HydraConfig, HydraTracker};
pub use misra_gries::{MisraGriesConfig, MisraGriesTracker};
pub use tracker::{AggressorTracker, TrackerDecision, TrackerKind};
