//! The Misra-Gries frequent-item tracker (as used by Graphene and RRS).
//!
//! Each bank owns a small table of `(row, counter)` pairs plus a spillover
//! counter. The table is sized so that any row receiving more than `TS`
//! activations within a tracking epoch is guaranteed to be present — the
//! classic Misra-Gries guarantee requires `entries ≥ ACT_max / TS`.
//!
//! The table is stored as flat slot arrays (rows and counters side by side)
//! with a small open-addressed index mapping row → slot, mirroring the
//! direct-indexed SRAM structure of the hardware: the per-activation lookup
//! is a couple of contiguous loads, the eviction scan sweeps a dense counter
//! array, an epoch reset is a memset of the index, and a snapshot of the
//! tracker is a plain memcpy of a few flat `Vec`s.

use serde::{Deserialize, Serialize};

use crate::scan;
use crate::tracker::{AggressorTracker, TrackerDecision};

/// Configuration of the Misra-Gries tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MisraGriesConfig {
    /// Swap threshold `TS`: a mitigation fires when a row's counter reaches it.
    pub swap_threshold: u64,
    /// Number of `(row, counter)` entries per bank.
    pub entries_per_bank: usize,
    /// Number of banks tracked.
    pub banks: usize,
    /// Bits per row-address tag (17 bits for 128K rows).
    pub row_tag_bits: u32,
    /// Bits per counter.
    pub counter_bits: u32,
}

impl MisraGriesConfig {
    /// Size the tracker for a given swap threshold and per-bank activation
    /// budget (`ACT_max`), following the Misra-Gries guarantee with the
    /// 2x over-provisioning used by Graphene/RRS.
    #[must_use]
    pub fn for_threshold(swap_threshold: u64, act_max_per_window: u64, banks: usize) -> Self {
        let needed = act_max_per_window.div_ceil(swap_threshold.max(1)) as usize;
        Self {
            swap_threshold,
            entries_per_bank: (2 * needed).max(4),
            banks: banks.max(1),
            row_tag_bits: 17,
            counter_bits: 13,
        }
    }
}

/// Fibonacci-hash a row tag into a table of `1 << bits` slots: one multiply,
/// top bits as the bucket — deterministic, seedless, and well-spread for the
/// sequential/strided row patterns DRAM traffic produces.
#[inline]
fn bucket_of(row: u64, bits: u32) -> usize {
    (row.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - bits)) as usize
}

/// One bank's tracking table: dense slot storage plus an open-addressed
/// row → slot index (linear probing, backward-shift deletion).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct BankTable {
    /// Row tag of each live slot (`0..len`).
    rows: Vec<u64>,
    /// Estimated counter of each live slot (`0..len`).
    counts: Vec<u64>,
    /// Open-addressed index: `slot + 1` keyed by row hash, 0 = empty. Always
    /// a power of two at least twice `capacity`, so probe chains stay short
    /// even with the table full.
    index_slots: Vec<u32>,
    /// Row tag of each occupied index bucket, mirrored beside the slot so a
    /// probe compares tags without a dependent load into the slot arrays —
    /// the per-activation lookup touches only bucket-indexed memory.
    index_rows: Vec<u64>,
    /// log2 of `index_slots.len()`.
    index_bits: u32,
    /// Live slots.
    len: usize,
    spillover: u64,
    /// Monotonic count of spillover increments: every activation the full
    /// table could not attribute to a dedicated slot. Unlike `spillover`
    /// itself this survives epoch resets — it is the bank's saturation
    /// counter, not part of any frequency estimate.
    saturations: u64,
    capacity: usize,
    /// A lower bound on the smallest counter in the table. Counters only
    /// grow, so the bound can run stale-low (costing a scan that finds
    /// nothing) but never stale-high; while it exceeds the spillover
    /// counter, the eviction scan provably cannot find a victim and is
    /// skipped — the common case for low-locality (GUPS-like) streams that
    /// miss in a full table on every activation.
    min_bound: u64,
    /// Where the next eviction scan starts. A replacement's counter starts
    /// one above the spillover level, so within one spillover level the
    /// remaining victims all sit at or past the previous one — the scan
    /// resumes there instead of re-walking the (already replaced) prefix,
    /// making sustained eviction churn cost a handful of lanes per miss
    /// instead of half the table. Mitigation resets can seat a victim
    /// behind the cursor, so a failed resumed scan retries the skipped
    /// prefix before concluding the table has no victim.
    scan_from: usize,
}

impl BankTable {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (2 * capacity).next_power_of_two().max(8);
        Self {
            rows: Vec::with_capacity(capacity),
            counts: Vec::with_capacity(capacity),
            index_slots: vec![0; slots],
            index_rows: vec![0; slots],
            index_bits: slots.trailing_zeros(),
            len: 0,
            spillover: 0,
            saturations: 0,
            capacity,
            min_bound: 0,
            scan_from: 0,
        }
    }

    /// The first slot at or below `bound`, preferring slots at or past the
    /// round-robin cursor and wrapping to the skipped prefix only when the
    /// resumed scan comes up empty.
    #[inline]
    fn find_victim(&self, bound: u64) -> Option<usize> {
        let start = if self.scan_from < self.len { self.scan_from } else { 0 };
        scan::first_at_or_below(&self.counts[start..self.len], bound)
            .map(|v| start + v)
            .or_else(|| scan::first_at_or_below(&self.counts[..start], bound))
    }

    /// The slot currently holding `row`, if any.
    #[inline]
    fn slot_of(&self, row: u64) -> Option<usize> {
        let mask = self.index_slots.len() - 1;
        let mut pos = bucket_of(row, self.index_bits);
        loop {
            let s = self.index_slots[pos];
            if s == 0 {
                return None;
            }
            if self.index_rows[pos] == row {
                return Some((s - 1) as usize);
            }
            pos = (pos + 1) & mask;
        }
    }

    /// Point the index at `slot` for its current row tag.
    fn index_insert(&mut self, slot: usize) {
        let mask = self.index_slots.len() - 1;
        let row = self.rows[slot];
        let mut pos = bucket_of(row, self.index_bits);
        while self.index_slots[pos] != 0 {
            pos = (pos + 1) & mask;
        }
        self.index_slots[pos] = (slot + 1) as u32;
        self.index_rows[pos] = row;
    }

    /// Remove `row` from the index using backward-shift deletion, keeping
    /// every remaining probe chain intact without tombstones.
    fn index_remove(&mut self, row: u64) {
        let mask = self.index_slots.len() - 1;
        let mut pos = bucket_of(row, self.index_bits);
        loop {
            let s = self.index_slots[pos];
            if s == 0 {
                return;
            }
            if self.index_rows[pos] == row {
                break;
            }
            pos = (pos + 1) & mask;
        }
        let mut hole = pos;
        let mut probe = (pos + 1) & mask;
        while self.index_slots[probe] != 0 {
            let home = bucket_of(self.index_rows[probe], self.index_bits);
            // The entry may move back into the hole only if its home bucket
            // does not lie strictly between the hole and its current slot
            // (cyclic comparison).
            let between = if hole <= probe {
                home > hole && home <= probe
            } else {
                home > hole || home <= probe
            };
            if !between {
                self.index_slots[hole] = self.index_slots[probe];
                self.index_rows[hole] = self.index_rows[probe];
                hole = probe;
            }
            probe = (probe + 1) & mask;
        }
        self.index_slots[hole] = 0;
    }

    /// Returns the row's new estimated count.
    fn observe(&mut self, row: u64) -> u64 {
        if let Some(slot) = self.slot_of(row) {
            self.counts[slot] += 1;
            return self.counts[slot];
        }
        if self.len < self.capacity {
            let start = self.spillover + 1;
            let slot = self.len;
            if slot == self.rows.len() {
                self.rows.push(row);
                self.counts.push(start);
            } else {
                self.rows[slot] = row;
                self.counts[slot] = start;
            }
            self.len += 1;
            self.index_insert(slot);
            self.min_bound = self.min_bound.min(start);
            return start;
        }
        // Replace an entry whose count equals the spillover counter, if any;
        // otherwise increment the spillover counter (all tracked rows keep
        // their lead over untracked ones). The bound check skips the scan
        // whenever it cannot succeed.
        if self.min_bound <= self.spillover {
            let spillover = self.spillover;
            if let Some(victim) = self.find_victim(spillover) {
                let old_row = self.rows[victim];
                self.index_remove(old_row);
                let start = self.spillover + 1;
                self.rows[victim] = row;
                self.counts[victim] = start;
                self.index_insert(victim);
                self.scan_from = victim + 1;
                return start;
            }
            // The scan proved every counter exceeds the spillover level;
            // remember the exact minimum so future misses skip the scan
            // until the spillover counter catches up.
            self.min_bound = scan::min_value(&self.counts[..self.len]).unwrap_or(u64::MAX);
        }
        self.spillover += 1;
        self.saturations += 1;
        self.spillover
    }

    fn reset_row(&mut self, row: u64) {
        // After a mitigation the row starts counting from the spillover
        // level again, mirroring Graphene's counter reset on a swap.
        if let Some(slot) = self.slot_of(row) {
            self.counts[slot] = self.spillover;
        } else if self.len < self.capacity {
            let slot = self.len;
            if slot == self.rows.len() {
                self.rows.push(row);
                self.counts.push(self.spillover);
            } else {
                self.rows[slot] = row;
                self.counts[slot] = self.spillover;
            }
            self.len += 1;
            self.index_insert(slot);
        } else {
            // Full table: the mitigated row earns a slot through the same
            // Misra-Gries eviction rule `observe` applies — replace an
            // entry at or below the spillover level, so the reset row's
            // counter subsequently tracks its *own* activations instead of
            // riding the shared spillover counter. If every tracked row
            // strictly exceeds the spillover level, each of them carries
            // more evidence than the freshly reset row and the row
            // (correctly, for a Misra-Gries summary) stays untracked at
            // the spillover estimate.
            let spillover = self.spillover;
            if let Some(victim) = self.find_victim(spillover) {
                let old_row = self.rows[victim];
                self.index_remove(old_row);
                self.rows[victim] = row;
                self.counts[victim] = spillover;
                self.index_insert(victim);
                self.scan_from = victim + 1;
            }
        }
        self.min_bound = self.min_bound.min(self.spillover);
    }

    fn estimate(&self, row: u64) -> u64 {
        self.slot_of(row).map_or(self.spillover, |slot| self.counts[slot])
    }

    fn clear(&mut self) {
        self.index_slots.fill(0);
        self.len = 0;
        self.spillover = 0;
        self.min_bound = 0;
        self.scan_from = 0;
    }
}

/// The Misra-Gries aggressor tracker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MisraGriesTracker {
    config: MisraGriesConfig,
    banks: Vec<BankTable>,
}

impl MisraGriesTracker {
    /// Create a tracker with empty per-bank tables.
    #[must_use]
    pub fn new(config: MisraGriesConfig) -> Self {
        let banks = (0..config.banks).map(|_| BankTable::new(config.entries_per_bank)).collect();
        Self { config, banks }
    }

    /// The tracker configuration.
    #[must_use]
    pub fn config(&self) -> &MisraGriesConfig {
        &self.config
    }

    /// Number of rows currently tracked in a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn tracked_rows(&self, bank: usize) -> usize {
        self.banks[bank].len
    }
}

impl AggressorTracker for MisraGriesTracker {
    fn record_activation(&mut self, bank: usize, row: u64) -> TrackerDecision {
        // In-range bank indices (the only case on the hot path) skip the
        // integer division entirely.
        let bank = if bank < self.banks.len() { bank } else { bank % self.banks.len() };
        let table = &mut self.banks[bank];
        let count = table.observe(row);
        if count >= self.config.swap_threshold {
            table.reset_row(row);
            TrackerDecision::mitigate_now()
        } else {
            TrackerDecision::none()
        }
    }

    fn estimated_count(&self, bank: usize, row: u64) -> u64 {
        let bank = bank % self.banks.len();
        self.banks[bank].estimate(row)
    }

    fn reset_epoch(&mut self) {
        for b in &mut self.banks {
            b.clear();
        }
    }

    fn swap_threshold(&self) -> u64 {
        self.config.swap_threshold
    }

    fn storage_bits(&self) -> u64 {
        let entry_bits = u64::from(self.config.row_tag_bits + self.config.counter_bits);
        self.config.banks as u64 * self.config.entries_per_bank as u64 * entry_bits
    }

    fn clone_box(&self) -> Box<dyn AggressorTracker + Send> {
        Box::new(self.clone())
    }

    fn may_emit_memory_traffic(&self) -> bool {
        // Misra-Gries lives entirely in SRAM: it never produces DRAM
        // traffic of its own, so its only feedback channel into the
        // simulation is the mitigation trigger itself.
        false
    }

    fn occupancy(&self) -> u64 {
        self.banks.iter().map(|b| b.len as u64).sum()
    }

    fn saturation_events(&self) -> u64 {
        self.banks.iter().map(|b| b.saturations).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(ts: u64) -> MisraGriesTracker {
        MisraGriesTracker::new(MisraGriesConfig::for_threshold(ts, 1_360_000, 2))
    }

    #[test]
    fn sizes_per_guarantee() {
        let c = MisraGriesConfig::for_threshold(800, 1_360_000, 16);
        assert!(c.entries_per_bank >= 1_360_000_usize.div_ceil(800));
        assert_eq!(c.banks, 16);
    }

    #[test]
    fn fires_exactly_at_threshold() {
        let mut t = tracker(100);
        for i in 0..99 {
            assert!(!t.record_activation(0, 7).mitigate, "fired early at {i}");
        }
        assert!(t.record_activation(0, 7).mitigate);
    }

    #[test]
    fn refires_after_ts_more_activations() {
        let mut t = tracker(100);
        let mut fires = 0;
        for _ in 0..300 {
            if t.record_activation(0, 7).mitigate {
                fires += 1;
            }
        }
        assert_eq!(fires, 3);
    }

    #[test]
    fn heavy_hitter_survives_background_noise() {
        let mut t = tracker(200);
        let mut fired = false;
        for i in 0..40_000u64 {
            // Background: a sweep over many distinct rows.
            t.record_activation(0, 1000 + i);
            // Aggressor row every 100th activation won't fire, but a denser
            // aggressor must.
            if i % 4 == 0 {
                fired |= t.record_activation(0, 3).mitigate;
            }
        }
        assert!(fired, "dense aggressor must be detected despite noise");
    }

    #[test]
    fn banks_are_independent() {
        let mut t = tracker(50);
        for _ in 0..49 {
            t.record_activation(0, 9);
        }
        // Bank 1 has seen nothing for row 9.
        assert_eq!(t.estimated_count(1, 9), 0);
        assert!(t.estimated_count(0, 9) >= 49);
    }

    #[test]
    fn reset_epoch_clears_counts() {
        let mut t = tracker(50);
        for _ in 0..30 {
            t.record_activation(0, 9);
        }
        t.reset_epoch();
        assert_eq!(t.estimated_count(0, 9), 0);
        assert_eq!(t.tracked_rows(0), 0);
    }

    #[test]
    fn storage_is_tens_of_kilobits_per_bank() {
        let t = tracker(800);
        let per_bank_bits = t.storage_bits() / 2;
        // ~2 * 1700 entries * 30 bits ≈ 100 kbit ≈ 12.5 KB per bank.
        assert!(per_bank_bits > 50_000 && per_bank_bits < 200_000, "bits = {per_bank_bits}");
    }

    #[test]
    fn never_underestimates_a_true_heavy_hitter() {
        // Misra-Gries guarantee: estimate >= true count - spillover, and any
        // row with > ACT/entries activations is tracked.
        let mut t = MisraGriesTracker::new(MisraGriesConfig {
            swap_threshold: 1_000_000, // never fire, we only check estimates
            entries_per_bank: 64,
            banks: 1,
            row_tag_bits: 17,
            counter_bits: 20,
        });
        for i in 0..10_000u64 {
            t.record_activation(0, i % 200); // uniform background
            t.record_activation(0, 7777); // heavy hitter, 1/2 of traffic
        }
        assert!(t.estimated_count(0, 7777) >= 5_000, "estimate too low");
    }

    #[test]
    fn eviction_churn_keeps_the_index_consistent() {
        // A table of 8 slots thrashed by hundreds of distinct rows: every
        // evicted row must become unfindable, every inserted row findable,
        // exercising backward-shift deletion across wrapped probe chains.
        let mut b = BankTable::new(8);
        for i in 0..2_000u64 {
            b.observe(i * 131);
            assert!(b.len <= 8);
        }
        // Every slot's row must be findable through the index and point back
        // at its own slot.
        for slot in 0..b.len {
            assert_eq!(b.slot_of(b.rows[slot]), Some(slot), "slot {slot} lost its index entry");
        }
        let live: std::collections::BTreeSet<u64> = b.rows[..b.len].iter().copied().collect();
        assert_eq!(live.len(), b.len, "duplicate rows in the slot array");
        // The index holds exactly `len` non-empty buckets, each mirroring
        // its slot's row tag.
        assert_eq!(b.index_slots.iter().filter(|&&s| s != 0).count(), b.len);
        for (pos, &s) in b.index_slots.iter().enumerate() {
            if s != 0 {
                assert_eq!(b.index_rows[pos], b.rows[(s - 1) as usize]);
            }
        }
    }

    #[test]
    fn reset_on_a_full_table_evicts_a_spillover_level_entry() {
        // Saturate a 4-slot table, then drive the spillover counter to the
        // threshold so an *untracked* row fires: the reset must seat the
        // fired row in a slot (evicting a spillover-level entry) so its
        // counter subsequently grows only with its own activations rather
        // than riding the shared spillover counter.
        let mut t = MisraGriesTracker::new(MisraGriesConfig {
            swap_threshold: 40,
            entries_per_bank: 4,
            banks: 1,
            row_tag_bits: 17,
            counter_bits: 13,
        });
        let mut fired_row = None;
        for i in 0..10_000u64 {
            let row = 100 + (i % 64);
            if t.record_activation(0, row).mitigate && !t.banks[0].counts[..4].contains(&0) {
                fired_row = Some(row);
                break;
            }
        }
        let row = fired_row.expect("a saturating sweep must eventually fire");
        assert!(
            t.banks[0].slot_of(row).is_some(),
            "the mitigated row must own a slot after its counter reset"
        );
        let slot = t.banks[0].slot_of(row).unwrap();
        let before = t.banks[0].counts[slot];
        let spill_before = t.banks[0].spillover;
        // Another row's miss moves spillover but not the reset row's count.
        t.record_activation(0, 9_999);
        assert_eq!(t.banks[0].counts[slot], before);
        assert!(t.banks[0].spillover >= spill_before);
    }

    #[test]
    fn table_saturation_is_counted_and_survives_epoch_resets() {
        // A 4-slot table swept by many distinct rows saturates: once every
        // slot holds a counter above the spillover level, further misses
        // fall back to the shared spillover counter — each such degraded
        // observation is a saturation event. The count is monotonic across
        // epochs even though the frequency state itself resets.
        let mut t = MisraGriesTracker::new(MisraGriesConfig {
            swap_threshold: 1_000_000, // never fire; we only exercise capacity
            entries_per_bank: 4,
            banks: 1,
            row_tag_bits: 17,
            counter_bits: 20,
        });
        // Pump four rows well above any spillover level, then miss with
        // fresh rows so no victim is ever at/below the spillover counter.
        for _ in 0..100 {
            for row in 0..4u64 {
                t.record_activation(0, row);
            }
        }
        for row in 100..150u64 {
            t.record_activation(0, row);
        }
        let after_first_epoch = t.saturation_events();
        assert!(after_first_epoch > 0, "full-table misses must count as saturation");
        t.reset_epoch();
        assert_eq!(
            t.saturation_events(),
            after_first_epoch,
            "saturation count must survive the epoch reset"
        );
        assert_eq!(t.estimated_count(0, 0), 0, "frequency state itself must reset");
    }

    #[test]
    fn snapshot_clone_is_independent() {
        let mut t = tracker(100);
        for _ in 0..50 {
            t.record_activation(0, 7);
        }
        let fork: Box<dyn AggressorTracker + Send> = t.clone_box();
        t.record_activation(0, 7);
        assert_eq!(fork.estimated_count(0, 7) + 1, t.estimated_count(0, 7));
        assert!(!t.may_emit_memory_traffic());
    }
}
