//! The Misra-Gries frequent-item tracker (as used by Graphene and RRS).
//!
//! Each bank owns a small table of `(row, counter)` pairs plus a spillover
//! counter. The table is sized so that any row receiving more than `TS`
//! activations within a tracking epoch is guaranteed to be present — the
//! classic Misra-Gries guarantee requires `entries ≥ ACT_max / TS`.

use fxhash::FxHashMap;
use serde::{Deserialize, Serialize};

use crate::tracker::{AggressorTracker, TrackerDecision};

/// Configuration of the Misra-Gries tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MisraGriesConfig {
    /// Swap threshold `TS`: a mitigation fires when a row's counter reaches it.
    pub swap_threshold: u64,
    /// Number of `(row, counter)` entries per bank.
    pub entries_per_bank: usize,
    /// Number of banks tracked.
    pub banks: usize,
    /// Bits per row-address tag (17 bits for 128K rows).
    pub row_tag_bits: u32,
    /// Bits per counter.
    pub counter_bits: u32,
}

impl MisraGriesConfig {
    /// Size the tracker for a given swap threshold and per-bank activation
    /// budget (`ACT_max`), following the Misra-Gries guarantee with the
    /// 2x over-provisioning used by Graphene/RRS.
    #[must_use]
    pub fn for_threshold(swap_threshold: u64, act_max_per_window: u64, banks: usize) -> Self {
        let needed = act_max_per_window.div_ceil(swap_threshold.max(1)) as usize;
        Self {
            swap_threshold,
            entries_per_bank: (2 * needed).max(4),
            banks: banks.max(1),
            row_tag_bits: 17,
            counter_bits: 13,
        }
    }
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct BankTable {
    entries: FxHashMap<u64, u64>,
    spillover: u64,
    capacity: usize,
    /// A lower bound on the smallest counter in `entries`. Counters only
    /// grow, so the bound can run stale-low (costing a scan that finds
    /// nothing) but never stale-high; while it exceeds the spillover
    /// counter, the eviction scan provably cannot find a victim and is
    /// skipped — the common case for low-locality (GUPS-like) streams that
    /// miss in a full table on every activation.
    min_bound: u64,
}

impl BankTable {
    fn new(capacity: usize) -> Self {
        // The table fills to exactly `capacity` live entries; reserving up
        // front keeps rehashing (and its per-activation amortized cost) off
        // the hot path.
        let entries = FxHashMap::with_capacity_and_hasher(capacity, Default::default());
        Self { entries, spillover: 0, capacity, min_bound: 0 }
    }

    /// Returns the row's new estimated count.
    fn observe(&mut self, row: u64) -> u64 {
        if let Some(count) = self.entries.get_mut(&row) {
            *count += 1;
            return *count;
        }
        if self.entries.len() < self.capacity {
            let start = self.spillover + 1;
            self.entries.insert(row, start);
            self.min_bound = self.min_bound.min(start);
            return start;
        }
        // Replace an entry whose count equals the spillover counter, if any;
        // otherwise increment the spillover counter (all tracked rows keep
        // their lead over untracked ones). The bound check skips the scan
        // whenever it cannot succeed.
        if self.min_bound <= self.spillover {
            if let Some((&victim, _)) = self.entries.iter().find(|(_, &c)| c <= self.spillover) {
                self.entries.remove(&victim);
                let start = self.spillover + 1;
                self.entries.insert(row, start);
                return start;
            }
            // The scan proved every counter exceeds the spillover level;
            // remember the exact minimum so future misses skip the scan
            // until the spillover counter catches up.
            self.min_bound = self.entries.values().copied().min().unwrap_or(u64::MAX);
        }
        self.spillover += 1;
        self.spillover
    }

    fn reset_row(&mut self, row: u64) {
        // After a mitigation the row starts counting from the spillover
        // level again, mirroring Graphene's counter reset on a swap.
        self.entries.insert(row, self.spillover);
        self.min_bound = self.min_bound.min(self.spillover);
    }
}

/// The Misra-Gries aggressor tracker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MisraGriesTracker {
    config: MisraGriesConfig,
    banks: Vec<BankTable>,
}

impl MisraGriesTracker {
    /// Create a tracker with empty per-bank tables.
    #[must_use]
    pub fn new(config: MisraGriesConfig) -> Self {
        let banks = (0..config.banks).map(|_| BankTable::new(config.entries_per_bank)).collect();
        Self { config, banks }
    }

    /// The tracker configuration.
    #[must_use]
    pub fn config(&self) -> &MisraGriesConfig {
        &self.config
    }

    /// Number of rows currently tracked in a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn tracked_rows(&self, bank: usize) -> usize {
        self.banks[bank].entries.len()
    }
}

impl AggressorTracker for MisraGriesTracker {
    fn record_activation(&mut self, bank: usize, row: u64) -> TrackerDecision {
        let bank = bank % self.banks.len();
        let count = self.banks[bank].observe(row);
        if count >= self.config.swap_threshold {
            self.banks[bank].reset_row(row);
            TrackerDecision::mitigate_now()
        } else {
            TrackerDecision::none()
        }
    }

    fn estimated_count(&self, bank: usize, row: u64) -> u64 {
        let bank = bank % self.banks.len();
        self.banks[bank].entries.get(&row).copied().unwrap_or(self.banks[bank].spillover)
    }

    fn reset_epoch(&mut self) {
        for b in &mut self.banks {
            b.entries.clear();
            b.spillover = 0;
            b.min_bound = 0;
        }
    }

    fn swap_threshold(&self) -> u64 {
        self.config.swap_threshold
    }

    fn storage_bits(&self) -> u64 {
        let entry_bits = u64::from(self.config.row_tag_bits + self.config.counter_bits);
        self.config.banks as u64 * self.config.entries_per_bank as u64 * entry_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(ts: u64) -> MisraGriesTracker {
        MisraGriesTracker::new(MisraGriesConfig::for_threshold(ts, 1_360_000, 2))
    }

    #[test]
    fn sizes_per_guarantee() {
        let c = MisraGriesConfig::for_threshold(800, 1_360_000, 16);
        assert!(c.entries_per_bank >= 1_360_000_usize.div_ceil(800));
        assert_eq!(c.banks, 16);
    }

    #[test]
    fn fires_exactly_at_threshold() {
        let mut t = tracker(100);
        for i in 0..99 {
            assert!(!t.record_activation(0, 7).mitigate, "fired early at {i}");
        }
        assert!(t.record_activation(0, 7).mitigate);
    }

    #[test]
    fn refires_after_ts_more_activations() {
        let mut t = tracker(100);
        let mut fires = 0;
        for _ in 0..300 {
            if t.record_activation(0, 7).mitigate {
                fires += 1;
            }
        }
        assert_eq!(fires, 3);
    }

    #[test]
    fn heavy_hitter_survives_background_noise() {
        let mut t = tracker(200);
        let mut fired = false;
        for i in 0..40_000u64 {
            // Background: a sweep over many distinct rows.
            t.record_activation(0, 1000 + i);
            // Aggressor row every 100th activation won't fire, but a denser
            // aggressor must.
            if i % 4 == 0 {
                fired |= t.record_activation(0, 3).mitigate;
            }
        }
        assert!(fired, "dense aggressor must be detected despite noise");
    }

    #[test]
    fn banks_are_independent() {
        let mut t = tracker(50);
        for _ in 0..49 {
            t.record_activation(0, 9);
        }
        // Bank 1 has seen nothing for row 9.
        assert_eq!(t.estimated_count(1, 9), 0);
        assert!(t.estimated_count(0, 9) >= 49);
    }

    #[test]
    fn reset_epoch_clears_counts() {
        let mut t = tracker(50);
        for _ in 0..30 {
            t.record_activation(0, 9);
        }
        t.reset_epoch();
        assert_eq!(t.estimated_count(0, 9), 0);
        assert_eq!(t.tracked_rows(0), 0);
    }

    #[test]
    fn storage_is_tens_of_kilobits_per_bank() {
        let t = tracker(800);
        let per_bank_bits = t.storage_bits() / 2;
        // ~2 * 1700 entries * 30 bits ≈ 100 kbit ≈ 12.5 KB per bank.
        assert!(per_bank_bits > 50_000 && per_bank_bits < 200_000, "bits = {per_bank_bits}");
    }

    #[test]
    fn never_underestimates_a_true_heavy_hitter() {
        // Misra-Gries guarantee: estimate >= true count - spillover, and any
        // row with > ACT/entries activations is tracked.
        let mut t = MisraGriesTracker::new(MisraGriesConfig {
            swap_threshold: 1_000_000, // never fire, we only check estimates
            entries_per_bank: 64,
            banks: 1,
            row_tag_bits: 17,
            counter_bits: 20,
        });
        for i in 0..10_000u64 {
            t.record_activation(0, i % 200); // uniform background
            t.record_activation(0, 7777); // heavy hitter, 1/2 of traffic
        }
        assert!(t.estimated_count(0, 7777) >= 5_000, "estimate too low");
    }
}
