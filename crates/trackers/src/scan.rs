//! Chunked, branchless scans over dense counter arrays.
//!
//! The Misra-Gries eviction path sweeps one flat `u64` counter array per
//! miss in a full table — on low-locality streams that is the tracker's
//! single hottest loop. A naive `iter().position(..)` compiles to one
//! compare-and-branch per element; the scans here process four lanes per
//! step with the per-lane comparisons reduced into a small bitmask (flag
//! materialization instead of a branch), so the only branch taken is one
//! per chunk and the loop auto-vectorizes on targets with SIMD compares.
//! Exact first-match semantics are preserved: the helpers return precisely
//! what the scalar scan would.

/// Index of the first element at or below `threshold`, or `None`.
///
/// Equivalent to `values.iter().position(|&v| v <= threshold)`.
#[must_use]
pub fn first_at_or_below(values: &[u64], threshold: u64) -> Option<usize> {
    let mut chunks = values.chunks_exact(4);
    let mut base = 0;
    for chunk in &mut chunks {
        // Branchless per-lane compares OR'd into one mask; the first set
        // bit (lowest lane) is the first match in scan order.
        let mask = u32::from(chunk[0] <= threshold)
            | u32::from(chunk[1] <= threshold) << 1
            | u32::from(chunk[2] <= threshold) << 2
            | u32::from(chunk[3] <= threshold) << 3;
        if mask != 0 {
            return Some(base + mask.trailing_zeros() as usize);
        }
        base += 4;
    }
    chunks.remainder().iter().position(|&v| v <= threshold).map(|tail| base + tail)
}

/// The minimum element, or `None` for an empty slice.
///
/// Four independent accumulators keep the lanes' reductions free of a
/// loop-carried compare-and-branch (each lane is a conditional move).
#[must_use]
pub fn min_value(values: &[u64]) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    let mut acc = [u64::MAX; 4];
    let mut chunks = values.chunks_exact(4);
    for chunk in &mut chunks {
        acc[0] = acc[0].min(chunk[0]);
        acc[1] = acc[1].min(chunk[1]);
        acc[2] = acc[2].min(chunk[2]);
        acc[3] = acc[3].min(chunk[3]);
    }
    for &v in chunks.remainder() {
        acc[0] = acc[0].min(v);
    }
    Some(acc[0].min(acc[1]).min(acc[2]).min(acc[3]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random u64 stream (splitmix64).
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn matches_scalar_scan_on_every_length_and_position() {
        // Every slice length through several chunk boundaries, with the
        // match planted at every position (and nowhere).
        for len in 0..24usize {
            let values: Vec<u64> = (0..len as u64).map(|i| 100 + i).collect();
            assert_eq!(first_at_or_below(&values, 10), None, "len {len}, no match");
            assert_eq!(min_value(&values), values.iter().copied().min(), "len {len}, min");
            for planted in 0..len {
                let mut v = values.clone();
                v[planted] = 5;
                assert_eq!(first_at_or_below(&v, 10), Some(planted), "len {len} pos {planted}");
            }
        }
    }

    #[test]
    fn first_match_wins_among_duplicates() {
        let values = [9, 3, 7, 2, 2, 8, 1, 1, 1];
        assert_eq!(first_at_or_below(&values, 2), Some(3));
        assert_eq!(first_at_or_below(&values, 3), Some(1));
        assert_eq!(min_value(&values), Some(1));
    }

    #[test]
    fn threshold_is_inclusive() {
        assert_eq!(first_at_or_below(&[5, 4, 3], 3), Some(2));
        assert_eq!(first_at_or_below(&[5, 4, 3], 2), None);
        assert_eq!(first_at_or_below(&[], 2), None);
        assert_eq!(min_value(&[]), None);
    }

    #[test]
    fn agrees_with_scalar_scan_on_random_data() {
        let mut state = 42u64;
        for round in 0..200 {
            let len = (mix(&mut state) % 70) as usize;
            let values: Vec<u64> = (0..len).map(|_| mix(&mut state) % 50).collect();
            let threshold = mix(&mut state) % 50;
            assert_eq!(
                first_at_or_below(&values, threshold),
                values.iter().position(|&v| v <= threshold),
                "round {round}: values {values:?} threshold {threshold}"
            );
            assert_eq!(min_value(&values), values.iter().copied().min(), "round {round}");
        }
    }
}
