//! The tracker abstraction shared by all aggressor-row trackers.

use serde::{Deserialize, Serialize};

/// What a tracker decided after observing one activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrackerDecision {
    /// The observed row crossed the swap threshold and the mitigation should
    /// act on it now. The tracker has already reset its own count for the
    /// row so that the next trigger requires another `TS` activations.
    pub mitigate: bool,
    /// Number of additional DRAM accesses the tracker itself generated while
    /// processing this activation (Hydra's memory-resident row count table).
    pub extra_memory_accesses: u64,
}

impl TrackerDecision {
    /// A decision that neither mitigates nor generates traffic.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A decision that triggers mitigation.
    #[must_use]
    pub fn mitigate_now() -> Self {
        Self { mitigate: true, extra_memory_accesses: 0 }
    }
}

/// Which tracker implementation to instantiate (used by experiment configs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TrackerKind {
    /// The Misra-Gries tracker used by Graphene and RRS.
    #[default]
    MisraGries,
    /// The Hydra hybrid SRAM/DRAM tracker.
    Hydra,
}

impl std::fmt::Display for TrackerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrackerKind::MisraGries => f.write_str("misra-gries"),
            TrackerKind::Hydra => f.write_str("hydra"),
        }
    }
}

/// An aggressor-row tracker.
///
/// Implementations observe every row activation in every bank and decide
/// when a row has crossed the swap threshold `TS`, at which point the
/// row-swap mitigation performs a swap. Trackers are reset at the start of
/// every tracking epoch (half a refresh window, following Graphene/Hydra).
pub trait AggressorTracker {
    /// Observe one activation of `row` in global bank `bank`.
    fn record_activation(&mut self, bank: usize, row: u64) -> TrackerDecision;

    /// The tracker's current activation estimate for a row.
    fn estimated_count(&self, bank: usize, row: u64) -> u64;

    /// Clear per-epoch state (start of a new tracking epoch).
    fn reset_epoch(&mut self);

    /// Swap threshold `TS` this tracker was configured with.
    fn swap_threshold(&self) -> u64;

    /// Total SRAM storage the tracker requires, in bits.
    fn storage_bits(&self) -> u64;

    /// Deep-copy this tracker behind a fresh box — the snapshot primitive
    /// the sharing-aware grid executor uses to fork a simulation.
    fn clone_box(&self) -> Box<dyn AggressorTracker + Send>;

    /// Whether [`AggressorTracker::record_activation`] can ever report
    /// `extra_memory_accesses > 0`. Purely-SRAM trackers (Misra-Gries)
    /// return `false`, which lets a prefix-sharing planner prove that a
    /// baseline cell with such a tracker never feeds anything back into the
    /// simulation.
    fn may_emit_memory_traffic(&self) -> bool {
        true
    }

    /// Number of rows the tracker currently holds state for, summed over
    /// all banks — a telemetry gauge (table pressure over time), not part
    /// of any mitigation decision. Trackers without a meaningful notion of
    /// occupancy report zero.
    fn occupancy(&self) -> u64 {
        0
    }

    /// Number of times the tracker hit a capacity limit and fell back to
    /// its degraded path (Misra-Gries spillover decrements, table
    /// evictions) — the tracker half of the saturation contract: capacity
    /// pressure is counted and surfaced, never a panic or a silent
    /// wraparound. Trackers without capacity limits report zero.
    fn saturation_events(&self) -> u64 {
        0
    }
}

impl Clone for Box<dyn AggressorTracker + Send> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_constructors() {
        assert!(!TrackerDecision::none().mitigate);
        assert!(TrackerDecision::mitigate_now().mitigate);
        assert_eq!(TrackerDecision::none().extra_memory_accesses, 0);
    }

    #[test]
    fn kind_display() {
        assert_eq!(TrackerKind::MisraGries.to_string(), "misra-gries");
        assert_eq!(TrackerKind::Hydra.to_string(), "hydra");
        assert_eq!(TrackerKind::default(), TrackerKind::MisraGries);
    }
}
