//! Row Hammer thresholds across DRAM generations (Table I of the paper).

use serde::{Deserialize, Serialize};

/// One row of Table I: a DRAM generation and its demonstrated Row Hammer
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdEntry {
    /// Human-readable DRAM generation label.
    pub generation: &'static str,
    /// The demonstrated Row Hammer threshold in activations.
    pub t_rh: u64,
    /// Year the measurement was reported.
    pub year: u32,
}

/// The demonstrated Row Hammer thresholds of Table I, oldest first.
pub const ROW_HAMMER_THRESHOLDS: &[ThresholdEntry] = &[
    ThresholdEntry { generation: "DDR3 (old)", t_rh: 139_000, year: 2014 },
    ThresholdEntry { generation: "DDR3 (new)", t_rh: 22_400, year: 2020 },
    ThresholdEntry { generation: "DDR4 (old)", t_rh: 17_500, year: 2020 },
    ThresholdEntry { generation: "DDR4 (new)", t_rh: 10_000, year: 2020 },
    ThresholdEntry { generation: "LPDDR4 (old)", t_rh: 16_800, year: 2020 },
    ThresholdEntry { generation: "LPDDR4 (new)", t_rh: 4_800, year: 2021 },
];

/// The lowest demonstrated threshold (the paper's default evaluation point
/// for security, 4.8K activations).
#[must_use]
pub fn lowest_demonstrated_threshold() -> u64 {
    ROW_HAMMER_THRESHOLDS.iter().map(|e| e.t_rh).min().unwrap_or(4_800)
}

/// The reduction factor of the threshold between the oldest and newest
/// generations in Table I (about 29x over 8 years).
#[must_use]
pub fn threshold_reduction_factor() -> f64 {
    let max = ROW_HAMMER_THRESHOLDS.iter().map(|e| e.t_rh).max().unwrap_or(1) as f64;
    let min = lowest_demonstrated_threshold() as f64;
    max / min
}

/// The thresholds the paper sweeps in its evaluation (Figures 14-16).
pub const EVALUATED_THRESHOLDS: &[u64] = &[512, 1_200, 2_400, 4_800];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_six_generations() {
        assert_eq!(ROW_HAMMER_THRESHOLDS.len(), 6);
    }

    #[test]
    fn lowest_is_4800() {
        assert_eq!(lowest_demonstrated_threshold(), 4_800);
    }

    #[test]
    fn reduction_factor_is_about_29x() {
        let f = threshold_reduction_factor();
        assert!(f > 28.0 && f < 30.0, "factor = {f}");
    }

    #[test]
    fn evaluated_thresholds_are_sorted() {
        let mut sorted = EVALUATED_THRESHOLDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted.as_slice(), EVALUATED_THRESHOLDS);
    }
}
