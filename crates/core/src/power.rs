//! First-order power model for the defense structures (Table V).
//!
//! The paper obtains SRAM power from CACTI 6.0 at 32 nm and DRAM power from
//! USIMM. Neither tool is available as a Rust crate, so this module applies
//! a first-order model: SRAM power scales with structure capacity (leakage)
//! plus access rate (dynamic energy per access), and the DRAM overhead is
//! the fraction of DRAM activity added by row-swap operations. The absolute
//! milliwatt numbers therefore differ from Table V, but the relative
//! comparison (Scale-SRS consumes less than RRS because its structures are
//! smaller and it swaps less) is preserved, which is what the table is used
//! for in the paper.

use serde::{Deserialize, Serialize};

use crate::config::MitigationConfig;
use crate::defense::DefenseKind;
use crate::storage::storage_for;

/// Technology constants of the first-order SRAM model (32 nm class).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramPowerModel {
    /// Leakage power per kilobyte of SRAM, in milliwatts.
    pub leakage_mw_per_kib: f64,
    /// Dynamic energy per access per kilobyte of the accessed structure, in
    /// picojoules.
    pub dynamic_pj_per_access_per_kib: f64,
}

impl Default for SramPowerModel {
    fn default() -> Self {
        Self { leakage_mw_per_kib: 1.6, dynamic_pj_per_access_per_kib: 0.9 }
    }
}

/// Power estimate for one channel's worth of defense structures.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerReport {
    /// SRAM power (leakage + dynamic) in milliwatts per channel.
    pub sram_mw: f64,
    /// Extra DRAM activity caused by row swaps, as a fraction of demand
    /// activity (`0.005` means 0.5% overhead, the RRS number in Table V).
    pub dram_overhead_fraction: f64,
}

/// Estimate the power of a defense.
///
/// * `accesses_per_second` — rate of structure look-ups (demand activations).
/// * `swap_fraction` — fraction of DRAM activity that is swap traffic
///   (taken from simulation statistics).
#[must_use]
pub fn power_for(
    kind: DefenseKind,
    config: &MitigationConfig,
    model: &SramPowerModel,
    accesses_per_second: f64,
    swap_fraction: f64,
) -> PowerReport {
    let banks_per_channel = (config.banks / 2).max(1) as f64;
    let per_bank = storage_for(kind, config);
    let kib = per_bank.total_kib() * banks_per_channel;
    let leakage = kib * model.leakage_mw_per_kib;
    let dynamic_mw =
        accesses_per_second * model.dynamic_pj_per_access_per_kib * per_bank.total_kib() * 1e-9;
    PowerReport { sram_mw: leakage + dynamic_mw, dram_overhead_fraction: swap_fraction }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_consumes_nothing() {
        let cfg = MitigationConfig::paper_default(4800, 6);
        let p = power_for(DefenseKind::Baseline, &cfg, &SramPowerModel::default(), 1e7, 0.0);
        assert_eq!(p.sram_mw, 0.0);
        assert_eq!(p.dram_overhead_fraction, 0.0);
    }

    #[test]
    fn scale_srs_uses_less_sram_power_than_rrs() {
        let model = SramPowerModel::default();
        let rrs = power_for(
            DefenseKind::Rrs { immediate_unswap: true },
            &MitigationConfig::paper_default(4800, 6),
            &model,
            1e7,
            0.005,
        );
        let scale = power_for(
            DefenseKind::ScaleSrs,
            &MitigationConfig::paper_default(4800, 3),
            &model,
            1e7,
            0.002,
        );
        assert!(scale.sram_mw < rrs.sram_mw, "scale {} !< rrs {}", scale.sram_mw, rrs.sram_mw);
        assert!(scale.dram_overhead_fraction < rrs.dram_overhead_fraction);
        // Table V reports hundreds of milliwatts per channel; the model
        // should land in the same order of magnitude.
        assert!(rrs.sram_mw > 100.0 && rrs.sram_mw < 5_000.0, "rrs sram = {}", rrs.sram_mw);
    }

    #[test]
    fn dynamic_power_grows_with_access_rate() {
        let model = SramPowerModel::default();
        let cfg = MitigationConfig::paper_default(4800, 6);
        let slow = power_for(DefenseKind::Srs, &cfg, &model, 1e6, 0.0);
        let fast = power_for(DefenseKind::Srs, &cfg, &model, 1e9, 0.0);
        assert!(fast.sram_mw > slow.sram_mw);
    }
}
