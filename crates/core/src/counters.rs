//! Per-row swap-tracking counters and the epoch register (Section IV-F).
//!
//! To future-proof SRS against unknown attack patterns, the paper reserves a
//! small region of DRAM (0.05% of capacity) for one 32-bit counter per row.
//! Each counter stores a 19-bit epoch-id and a 13-bit cumulative activation
//! count (demand activations at swap time plus any latent activations). The
//! memory controller keeps a 19-bit epoch register; when a counter's
//! epoch-id differs from the register the count is considered stale and is
//! reset. Reading and updating a counter happens on every swap and costs one
//! access to a dedicated counter row.

use serde::{Deserialize, Serialize};

use crate::open_map::OpenMap;

/// Width of the epoch-id field in each counter.
pub const EPOCH_ID_BITS: u32 = 19;
/// Width of the activation-count field in each counter.
pub const ACTIVATION_COUNT_BITS: u32 = 13;
/// Total width of one per-row counter.
pub const COUNTER_BITS: u32 = 32;

/// The swap-tracking counter state for one bank.
///
/// The hardware reserves one packed `(epoch_id, count)` word per row, whose
/// DRAM footprint [`SwapCounters::reserved_dram_bytes`] reports. The model
/// only materialises the words of rows that have actually swapped: a
/// compact row-keyed index over a dense word array, so banks that never
/// swap (all banks of a benign or baseline run) hold no storage and a
/// touched bank snapshots in kilobytes — the earlier direct-indexed array
/// zeroed a megabyte per bank on its first swap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapCounters {
    rows_per_bank: u64,
    row_size_bytes: u64,
    epoch_register: u64,
    /// Physical row → index into `words` for rows that have swapped.
    index: OpenMap,
    /// `(epoch_id + 1) << 32 | count` per touched row; 0 = stale.
    words: Vec<u64>,
    counter_row_accesses: u64,
}

/// Pack an `(epoch_id, count)` pair into one counter word.
#[inline]
fn pack(epoch_id: u64, count: u64) -> u64 {
    (epoch_id + 1) << 32 | count
}

impl SwapCounters {
    /// Create counters for a bank with `rows_per_bank` rows of
    /// `row_size_bytes` bytes each.
    #[must_use]
    pub fn new(rows_per_bank: u64, row_size_bytes: u64) -> Self {
        Self {
            rows_per_bank,
            row_size_bytes,
            epoch_register: 0,
            index: OpenMap::new(),
            words: Vec::new(),
            counter_row_accesses: 0,
        }
    }

    /// The value of the on-chip epoch register.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch_register
    }

    /// Advance to the next epoch. The hardware register is 19 bits wide;
    /// when it wraps, every counter row is scrubbed (the paper quotes a
    /// 41 µs scrub every 4.6 hours). Returns `true` when a wrap (full
    /// scrub) occurred.
    pub fn advance_epoch(&mut self) -> bool {
        self.epoch_register += 1;
        if self.epoch_register >= (1 << EPOCH_ID_BITS) {
            self.epoch_register = 0;
            // The scrub rewrites every counter row; epoch-id 0 becomes
            // current again, so stale words must not alias it.
            self.words.fill(0);
            true
        } else {
            false
        }
    }

    /// Record a swap of the physical chip location `row`, charging
    /// `activations` cumulative activations (the `TS` demand activations
    /// plus any latent ones). Returns the counter's new value for the
    /// current epoch.
    ///
    /// Each call models one read-modify-write of the counter row.
    pub fn record_swap(&mut self, row: u64, activations: u64) -> u64 {
        self.counter_row_accesses += 1;
        let idx = match self.index.get(row as u32) {
            Some(idx) => idx as usize,
            None => {
                self.index.insert(row as u32, self.words.len() as u32);
                self.words.push(0);
                self.words.len() - 1
            }
        };
        let max_count = (1u64 << ACTIVATION_COUNT_BITS) - 1;
        let slot = &mut self.words[idx];
        let count = if *slot >> 32 == self.epoch_register + 1 { *slot & 0xFFFF_FFFF } else { 0 };
        let count = (count + activations).min(max_count);
        *slot = pack(self.epoch_register, count);
        count
    }

    /// The counter value of `row` in the current epoch (0 if stale or never
    /// touched).
    #[must_use]
    pub fn count(&self, row: u64) -> u64 {
        match self.index.get(row as u32).map(|idx| self.words[idx as usize]) {
            Some(word) if word >> 32 == self.epoch_register + 1 => word & 0xFFFF_FFFF,
            _ => 0,
        }
    }

    /// Number of counter-row read-modify-writes performed.
    #[must_use]
    pub fn counter_row_accesses(&self) -> u64 {
        self.counter_row_accesses
    }

    /// DRAM bytes reserved for the counters of this bank (512 KB for a
    /// 128K-row bank, i.e. 0.05% of its capacity).
    #[must_use]
    pub fn reserved_dram_bytes(&self) -> u64 {
        self.rows_per_bank * u64::from(COUNTER_BITS) / 8
    }

    /// Number of dedicated 8 KB counter rows holding the reserved bytes.
    #[must_use]
    pub fn counter_rows(&self) -> u64 {
        self.reserved_dram_bytes().div_ceil(self.row_size_bytes)
    }

    /// The physical row index (beyond the normal row space) holding the
    /// counter for `row`; used so counter traffic targets dedicated rows.
    #[must_use]
    pub fn counter_row_of(&self, row: u64) -> u64 {
        let counters_per_row = self.row_size_bytes / (u64::from(COUNTER_BITS) / 8);
        self.rows_per_bank + row / counters_per_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> SwapCounters {
        SwapCounters::new(128 * 1024, 8 * 1024)
    }

    #[test]
    fn field_widths_sum_to_32() {
        assert_eq!(EPOCH_ID_BITS + ACTIVATION_COUNT_BITS, COUNTER_BITS);
    }

    #[test]
    fn reserved_space_matches_paper() {
        let c = counters();
        assert_eq!(c.reserved_dram_bytes(), 512 * 1024);
        assert_eq!(c.counter_rows(), 64);
        // 512 KB of a 1 GB bank = 0.05%.
        let bank_bytes = 128 * 1024 * 8 * 1024u64;
        let frac = c.reserved_dram_bytes() as f64 / bank_bytes as f64;
        assert!((frac - 0.000_5).abs() < 5e-5);
    }

    #[test]
    fn counts_accumulate_within_epoch() {
        let mut c = counters();
        assert_eq!(c.record_swap(7, 801), 801);
        assert_eq!(c.record_swap(7, 801), 1602);
        assert_eq!(c.count(7), 1602);
        assert_eq!(c.counter_row_accesses(), 2);
    }

    #[test]
    fn stale_epoch_resets_count() {
        let mut c = counters();
        c.record_swap(7, 800);
        c.advance_epoch();
        assert_eq!(c.count(7), 0);
        assert_eq!(c.record_swap(7, 400), 400);
    }

    #[test]
    fn count_saturates_at_13_bits() {
        let mut c = counters();
        c.record_swap(7, 8000);
        c.record_swap(7, 8000);
        assert_eq!(c.count(7), 8191);
    }

    #[test]
    fn epoch_register_wraps_and_scrubs() {
        let mut c = SwapCounters::new(1024, 8 * 1024);
        c.record_swap(3, 10);
        let mut wrapped = false;
        for _ in 0..(1 << EPOCH_ID_BITS) {
            wrapped |= c.advance_epoch();
        }
        assert!(wrapped);
        assert_eq!(c.count(3), 0);
        assert_eq!(c.epoch(), 0);
    }

    #[test]
    fn counter_rows_are_outside_normal_row_space() {
        let c = counters();
        assert!(c.counter_row_of(0) >= 128 * 1024);
        assert!(c.counter_row_of(128 * 1024 - 1) < 128 * 1024 + c.counter_rows());
    }
}
