//! # srs-core
//!
//! The row-swap Row Hammer mitigations of *"Scalable and Secure Row-Swap:
//! Efficient and Safe Row Hammer Mitigation in Memory Systems"* (HPCA 2023):
//!
//! * [`RandomizedRowSwap`] — the prior state of the art (RRS), including the
//!   unswap-swap operations whose latent activations the Juggernaut attack
//!   exploits, and the no-immediate-unswap variant of Figure 4;
//! * [`SecureRowSwap`] — SRS, the swap-only indirection with lazy place-back
//!   and per-row swap-tracking counters (Section IV);
//! * [`ScaleSrs`] — Scale-SRS, adding outlier detection and LLC pinning so a
//!   swap rate of 3 is safe (Section V);
//! * [`NoMitigation`] — the not-secure baseline all results are normalized
//!   against.
//!
//! All defenses implement the [`RowSwapDefense`] trait, which is the seam
//! between a defense and the memory system: the simulator feeds it tracker
//! triggers and clock ticks and receives [`MitigationAction`]s (row
//! movements with their latent activations, counter accesses, pin requests)
//! to charge against the DRAM timing model.
//!
//! ## Example
//!
//! ```
//! use srs_core::{MitigationConfig, RowSwapDefense, ScaleSrs};
//!
//! let config = MitigationConfig::paper_default(1200, 3);
//! let mut defense = ScaleSrs::new(config);
//! // The tracker says row 42 of bank 0 crossed TS activations:
//! let actions = defense.on_mitigation_trigger(0, 42, 0);
//! assert!(!actions.is_empty());
//! assert_ne!(defense.translate(0, 42), 42, "the row has been swapped away");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actions;
pub mod baseline;
pub mod config;
pub mod counters;
pub mod defense;
pub mod open_map;
pub mod power;
pub mod rit;
pub mod rrs;
pub mod scale_srs;
pub mod srs;
pub mod storage;
pub mod thresholds;

pub use actions::{MitigationAction, RowOpKind};
pub use baseline::NoMitigation;
pub use config::MitigationConfig;
pub use counters::SwapCounters;
pub use defense::{DefenseKind, RowSwapDefense};
pub use power::{power_for, PowerReport, SramPowerModel};
pub use rit::{BankRit, RitConfig, RowIndirectionTable, SwapRecord};
pub use rrs::RandomizedRowSwap;
pub use scale_srs::ScaleSrs;
pub use srs::SecureRowSwap;
pub use storage::{rrs_to_scale_srs_ratio, storage_for, StorageReport};

/// Instantiate a defense of the given kind.
///
/// The swap rate embedded in `config` should normally be the defense's
/// default ([`DefenseKind::default_swap_rate`]): 6 for RRS and SRS, 3 for
/// Scale-SRS.
///
/// # Examples
///
/// ```
/// use srs_core::{build_defense, DefenseKind, MitigationConfig};
///
/// let kind = DefenseKind::Srs;
/// let config = MitigationConfig::paper_default(4800, kind.default_swap_rate());
/// let defense = build_defense(kind, config);
/// assert_eq!(defense.name(), "srs");
/// ```
#[must_use]
pub fn build_defense(
    kind: DefenseKind,
    config: MitigationConfig,
) -> Box<dyn RowSwapDefense + Send> {
    match kind {
        DefenseKind::Baseline => Box::new(NoMitigation::new(config)),
        DefenseKind::Rrs { immediate_unswap } => {
            Box::new(RandomizedRowSwap::with_unswap_policy(config, immediate_unswap))
        }
        DefenseKind::Srs => Box::new(SecureRowSwap::new(config)),
        DefenseKind::ScaleSrs => Box::new(ScaleSrs::new(config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_kind() {
        let kinds = [
            DefenseKind::Baseline,
            DefenseKind::Rrs { immediate_unswap: true },
            DefenseKind::Rrs { immediate_unswap: false },
            DefenseKind::Srs,
            DefenseKind::ScaleSrs,
        ];
        for kind in kinds {
            let config = MitigationConfig::paper_default(2400, kind.default_swap_rate().max(1));
            let defense = build_defense(kind, config);
            assert_eq!(defense.kind(), kind);
        }
    }

    #[test]
    fn defenses_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<RandomizedRowSwap>();
        assert_send::<SecureRowSwap>();
        assert_send::<ScaleSrs>();
        assert_send::<NoMitigation>();
    }
}
