//! The not-secure baseline: no Row Hammer mitigation at all.

use crate::actions::MitigationAction;
use crate::config::MitigationConfig;
use crate::defense::{DefenseKind, RowSwapDefense};
use crate::storage::StorageReport;

/// A defense that does nothing. All performance results in the paper are
/// normalized against this baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct NoMitigation {
    config: MitigationConfig,
}

impl NoMitigation {
    /// Create a baseline "defense".
    #[must_use]
    pub fn new(config: MitigationConfig) -> Self {
        Self { config }
    }
}

impl RowSwapDefense for NoMitigation {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn kind(&self) -> DefenseKind {
        DefenseKind::Baseline
    }

    fn translate(&self, _bank: usize, row: u64) -> u64 {
        row
    }

    fn on_mitigation_trigger(
        &mut self,
        _bank: usize,
        _row: u64,
        _now_ns: u64,
    ) -> Vec<MitigationAction> {
        Vec::new()
    }

    fn on_tick(&mut self, _now_ns: u64) -> Vec<MitigationAction> {
        Vec::new()
    }

    fn on_new_window(&mut self, _now_ns: u64) -> Vec<MitigationAction> {
        Vec::new()
    }

    fn swap_threshold(&self) -> Option<u64> {
        None
    }

    fn storage_report(&self) -> StorageReport {
        StorageReport::default()
    }

    fn swaps_performed(&self) -> u64 {
        0
    }

    fn clone_box(&self) -> Box<dyn RowSwapDefense + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_inert() {
        let mut b = NoMitigation::new(MitigationConfig::paper_default(4800, 6));
        assert_eq!(b.translate(0, 123), 123);
        assert!(b.on_mitigation_trigger(0, 123, 0).is_empty());
        assert!(b.on_tick(0).is_empty());
        assert!(b.on_new_window(0).is_empty());
        assert_eq!(b.swap_threshold(), None);
        assert_eq!(b.swaps_performed(), 0);
        assert_eq!(b.storage_report().total_bits(), 0);
        assert_eq!(b.kind(), DefenseKind::Baseline);
        assert_eq!(b.name(), "baseline");
    }
}
