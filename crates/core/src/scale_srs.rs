//! Scalable and Secure Row-Swap (Scale-SRS), the paper's headline
//! contribution (Section V).
//!
//! Scale-SRS is SRS with two additions that together make a swap rate of 3
//! safe (halving the swap traffic of RRS/SRS and shrinking the RIT):
//!
//! 1. **Outlier detection** — the per-row swap-tracking counters already
//!    maintained by SRS are compared against `outlier_swap_count x TS`
//!    (3 x TS by default); a location crossing it is an outlier that the
//!    random-guess attack has landed on repeatedly.
//! 2. **LLC pinning** — outlier rows are pinned in the last-level cache for
//!    the rest of the refresh window through the pin-buffer, so they stop
//!    producing DRAM activations entirely.

use fxhash::FxHashSet;

use crate::actions::MitigationAction;
use crate::config::MitigationConfig;
use crate::defense::{DefenseKind, RowSwapDefense};
use crate::srs::{SecureRowSwap, SrsStats};
use crate::storage::{storage_for, StorageReport};

/// The Scalable and Secure Row-Swap defense.
#[derive(Debug, Clone)]
pub struct ScaleSrs {
    inner: SecureRowSwap,
    pinned: FxHashSet<(usize, u64)>,
    pins_requested: u64,
}

impl ScaleSrs {
    /// Create a Scale-SRS instance. The configuration's swap rate should
    /// normally be 3 (use [`MitigationConfig::paper_default`]`(t_rh, 3)`).
    #[must_use]
    pub fn new(config: MitigationConfig) -> Self {
        Self { inner: SecureRowSwap::new(config), pinned: FxHashSet::default(), pins_requested: 0 }
    }

    /// The statistics of the underlying SRS machinery.
    #[must_use]
    pub fn stats(&self) -> &SrsStats {
        self.inner.stats()
    }

    /// The defense configuration.
    #[must_use]
    pub fn config(&self) -> &MitigationConfig {
        self.inner.config()
    }

    /// Rows currently pinned in the LLC (bank, logical row).
    #[must_use]
    pub fn pinned_rows(&self) -> &FxHashSet<(usize, u64)> {
        &self.pinned
    }

    /// Total pin requests issued since construction.
    #[must_use]
    pub fn pins_requested(&self) -> u64 {
        self.pins_requested
    }
}

impl RowSwapDefense for ScaleSrs {
    fn name(&self) -> &'static str {
        "scale-srs"
    }

    fn kind(&self) -> DefenseKind {
        DefenseKind::ScaleSrs
    }

    fn translate(&self, bank: usize, row: u64) -> u64 {
        self.inner.translate(bank, row)
    }

    fn occupant(&self, bank: usize, location: u64) -> u64 {
        self.inner.occupant(bank, location)
    }

    fn on_mitigation_trigger(
        &mut self,
        bank: usize,
        row: u64,
        now_ns: u64,
    ) -> Vec<MitigationAction> {
        if self.pinned.contains(&(bank, row)) {
            // A pinned row no longer reaches DRAM; any residual trigger
            // (e.g. racing with the pin installation) needs no further work.
            return Vec::new();
        }
        let (mut actions, detected) = self.inner.swap_only_trigger(bank, row, now_ns);
        if detected && self.pinned.insert((bank, row)) {
            self.pins_requested += 1;
            actions.push(MitigationAction::PinRow { bank, row });
        }
        actions
    }

    fn on_tick(&mut self, now_ns: u64) -> Vec<MitigationAction> {
        self.inner.tick_placeback(now_ns)
    }

    fn next_action_ns(&self) -> Option<u64> {
        self.inner.next_action_ns()
    }

    fn on_new_window(&mut self, now_ns: u64) -> Vec<MitigationAction> {
        // Pins only last for the refresh interval in which they were made.
        self.pinned.clear();
        self.inner.start_new_window(now_ns);
        Vec::new()
    }

    fn swap_threshold(&self) -> Option<u64> {
        Some(self.inner.config().swap_threshold())
    }

    fn storage_report(&self) -> StorageReport {
        storage_for(DefenseKind::ScaleSrs, self.inner.config())
    }

    fn swaps_performed(&self) -> u64 {
        self.inner.swaps_performed()
    }

    fn live_swapped_rows(&self) -> u64 {
        self.inner.live_swapped_rows()
    }

    fn saturation_events(&self) -> u64 {
        self.inner.saturation_events()
    }

    fn clone_box(&self) -> Box<dyn RowSwapDefense + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::RowOpKind;

    fn scale_srs(t_rh: u64) -> ScaleSrs {
        ScaleSrs::new(MitigationConfig::paper_default(t_rh, 3))
    }

    #[test]
    fn uses_swap_rate_three_by_default() {
        let d = scale_srs(1200);
        assert_eq!(d.swap_threshold(), Some(400));
    }

    #[test]
    fn outlier_row_is_pinned_after_three_swaps() {
        let mut d = scale_srs(4800);
        let mut pin_seen = false;
        for i in 0..3 {
            let actions = d.on_mitigation_trigger(0, 9, i);
            pin_seen |=
                actions.iter().any(|a| matches!(a, MitigationAction::PinRow { bank: 0, row: 9 }));
        }
        assert!(pin_seen, "third swap of the same row must request a pin");
        assert_eq!(d.pins_requested(), 1);
        assert!(d.pinned_rows().contains(&(0, 9)));
    }

    #[test]
    fn pinned_row_generates_no_further_actions() {
        let mut d = scale_srs(4800);
        for i in 0..3 {
            d.on_mitigation_trigger(0, 9, i);
        }
        let swaps_before = d.swaps_performed();
        let actions = d.on_mitigation_trigger(0, 9, 100);
        assert!(actions.is_empty());
        assert_eq!(d.swaps_performed(), swaps_before);
    }

    #[test]
    fn pin_is_released_at_the_next_window() {
        let mut d = scale_srs(4800);
        for i in 0..3 {
            d.on_mitigation_trigger(0, 9, i);
        }
        assert!(!d.pinned_rows().is_empty());
        d.on_new_window(64_000_000);
        assert!(d.pinned_rows().is_empty());
        // The row can be mitigated normally again in the new window.
        let actions = d.on_mitigation_trigger(0, 9, 64_100_000);
        assert!(actions
            .iter()
            .any(|a| matches!(a, MitigationAction::RowOperation { kind: RowOpKind::Swap, .. })));
    }

    #[test]
    fn benign_rows_are_never_pinned() {
        let mut d = scale_srs(1200);
        // Many different rows each trigger once or twice: no outliers.
        for row in 0..200u64 {
            d.on_mitigation_trigger((row % 4) as usize, row, row);
            if row % 2 == 0 {
                d.on_mitigation_trigger((row % 4) as usize, row, row + 1);
            }
        }
        assert_eq!(d.pins_requested(), 0);
    }

    #[test]
    fn storage_includes_pin_buffer_and_is_smaller_than_rrs() {
        let d = scale_srs(1200);
        let report = d.storage_report();
        assert!(report.pin_buffer_bits > 0);
        let rrs = crate::storage::storage_for(
            DefenseKind::Rrs { immediate_unswap: true },
            &MitigationConfig::paper_default(1200, 6),
        );
        assert!(report.total_bits() * 2 < rrs.total_bits());
    }

    #[test]
    fn place_back_still_works_through_the_wrapper() {
        let mut d = scale_srs(4800);
        for i in 0..5 {
            d.on_mitigation_trigger(0, 50 + i, 0);
        }
        d.on_new_window(64_000_000);
        let mut now = 64_000_000;
        let mut place_backs = 0;
        for _ in 0..200 {
            now += 1_000_000;
            place_backs += d
                .on_tick(now)
                .iter()
                .filter(|a| {
                    matches!(a, MitigationAction::RowOperation { kind: RowOpKind::PlaceBack, .. })
                })
                .count();
        }
        assert!(place_backs >= 5);
    }
}
