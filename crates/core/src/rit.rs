//! The Row Indirection Table (RIT).
//!
//! The RIT records which DRAM chip location ("physical row") currently holds
//! the data of each row address issued by the system ("logical row"), and
//! the reverse. RRS stores the mappings as *tuple pairs* so that a pair can
//! be unswapped immediately; SRS splits the table into a *real* part
//! (logical → physical) and a *mirrored* part (physical → logical) so that
//! rows can keep swapping forward without ever being unswapped within the
//! epoch (Section IV-C of the paper).
//!
//! Both organisations need the same two look-up directions, so a single
//! [`BankRit`] provides them; the defenses differ in how they use it and in
//! how its storage is accounted (see [`crate::storage`]).
//!
//! The hardware RIT is built as a Collision Avoidance Table (CAT) — an
//! over-provisioned set-associative structure that is never filled beyond a
//! safe load factor so conflict-based attacks cannot force evictions. This
//! model abstracts the CAT's internal hashing and keeps only its two
//! architecturally visible properties: a bounded entry count and the
//! guarantee that an insertion below capacity always succeeds.
//!
//! Storage model: the geometry is known at construction time, so both
//! look-up directions are flat direct-indexed arrays (`location + 1` by
//! logical row and `row + 1` by location, 0 meaning identity) plus a
//! compact list of the live mappings for iteration. The per-access
//! `translate` is a single bounds-checked load, and the arrays are only
//! allocated on the first recorded swap — a bank that never swaps (every
//! bank of a baseline or not-yet-triggered run) costs nothing to hold,
//! clone or snapshot.

use serde::{Deserialize, Serialize};

/// Capacity and sizing parameters of a per-bank RIT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RitConfig {
    /// Maximum number of live (non-identity) mappings per bank.
    pub capacity: usize,
    /// Bits per row address stored in an entry.
    pub row_bits: u32,
    /// CAT over-provisioning factor applied when reporting storage (the
    /// physical table has more slots than `capacity` live mappings).
    pub overprovision: f64,
    /// Rows per bank — the index space of the direct-indexed tables.
    pub rows_per_bank: u64,
}

impl RitConfig {
    /// Size the RIT for a bank that can experience at most
    /// `max_swaps_per_window` swaps per refresh window.
    ///
    /// Mappings from the previous epoch are evicted lazily, so in the worst
    /// case the table holds the live mappings of two consecutive epochs.
    #[must_use]
    pub fn for_swaps(max_swaps_per_window: u64, rows_per_bank: u64) -> Self {
        let capacity = (2 * max_swaps_per_window).max(8) as usize;
        let row_bits = 64 - rows_per_bank.next_power_of_two().leading_zeros() - 1;
        Self { capacity, row_bits: row_bits.max(1), overprovision: 1.5, rows_per_bank }
    }

    /// SRAM bits needed for one bank's RIT when storing both mapping
    /// directions (RRS tuple pairs, or SRS real + mirrored halves).
    #[must_use]
    pub fn storage_bits_dual(&self) -> u64 {
        let entry_bits = u64::from(2 * self.row_bits + 2); // two rows + valid + lock/epoch bit
        (self.capacity as f64 * self.overprovision).ceil() as u64 * 2 * entry_bits
    }

    /// SRAM bits for the compact single-table variant discussed in the
    /// paper's Discussion §4 (a direction bit per entry instead of a
    /// mirrored half).
    #[must_use]
    pub fn storage_bits_compact(&self) -> u64 {
        self.storage_bits_dual() / 2 + (self.capacity as f64 * self.overprovision).ceil() as u64
    }
}

/// A record of one swap performed through the RIT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapRecord {
    /// The logical row that triggered the swap.
    pub row: u64,
    /// The physical location the row's data moved *from*.
    pub from_location: u64,
    /// The physical location the row's data moved *to*.
    pub to_location: u64,
    /// The logical row whose data previously occupied `to_location` and has
    /// been displaced to `from_location`.
    pub displaced_row: u64,
}

/// The per-bank Row Indirection Table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BankRit {
    /// `location + 1` indexed by logical row; 0 = identity. Allocated on
    /// the first recorded swap.
    forward: Vec<u32>,
    /// `row + 1` indexed by location; 0 = identity.
    reverse: Vec<u32>,
    /// `epoch + 1` of each live mapping, indexed by logical row; 0 = none.
    epoch_of: Vec<u32>,
    /// `position + 1` of each live row in `live`; 0 = absent.
    live_pos: Vec<u32>,
    /// The live (remapped) logical rows, unordered.
    live: Vec<u32>,
    rows: u64,
    capacity: usize,
}

impl BankRit {
    /// Create an empty table with the given live-mapping capacity over a
    /// bank of `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` does not fit the table's 32-bit row encoding.
    #[must_use]
    pub fn new(capacity: usize, rows: u64) -> Self {
        assert!(rows < u64::from(u32::MAX), "rows_per_bank exceeds the RIT's row encoding");
        Self {
            forward: Vec::new(),
            reverse: Vec::new(),
            epoch_of: Vec::new(),
            live_pos: Vec::new(),
            live: Vec::new(),
            rows,
            capacity,
        }
    }

    /// Allocate the direct-indexed tables on the first recorded mapping.
    fn ensure_tables(&mut self) {
        if self.forward.is_empty() {
            let n = self.rows as usize;
            self.forward = vec![0; n];
            self.reverse = vec![0; n];
            self.epoch_of = vec![0; n];
            self.live_pos = vec![0; n];
        }
    }

    /// Where the data of logical `row` currently lives.
    #[inline]
    #[must_use]
    pub fn translate(&self, row: u64) -> u64 {
        match self.forward.get(row as usize) {
            Some(&mapped) if mapped != 0 => u64::from(mapped - 1),
            _ => row,
        }
    }

    /// Which logical row's data currently lives at physical `location`.
    #[inline]
    #[must_use]
    pub fn occupant(&self, location: u64) -> u64 {
        match self.reverse.get(location as usize) {
            Some(&mapped) if mapped != 0 => u64::from(mapped - 1),
            _ => location,
        }
    }

    /// Whether logical `row` is currently remapped away from its home.
    #[inline]
    #[must_use]
    pub fn is_remapped(&self, row: u64) -> bool {
        self.forward.get(row as usize).is_some_and(|&mapped| mapped != 0)
    }

    /// Number of live (non-identity) mappings.
    #[must_use]
    pub fn live_entries(&self) -> usize {
        self.live.len()
    }

    /// Maximum number of live mappings.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a new swap could still be recorded (two mappings may be
    /// created per swap).
    #[must_use]
    pub fn has_room(&self) -> bool {
        self.live_entries() + 2 <= self.capacity
    }

    /// Logical rows whose mapping was created in an epoch before
    /// `current_epoch` (candidates for lazy place-back).
    #[must_use]
    pub fn stale_rows(&self, current_epoch: u64) -> Vec<u64> {
        let mut rows: Vec<u64> = self
            .live
            .iter()
            .filter(|&&r| u64::from(self.epoch_of[r as usize]) < current_epoch + 1)
            .map(|&r| u64::from(r))
            .collect();
        rows.sort_unstable();
        rows
    }

    /// All currently remapped logical rows.
    #[must_use]
    pub fn remapped_rows(&self) -> Vec<u64> {
        let mut rows: Vec<u64> = self.live.iter().map(|&r| u64::from(r)).collect();
        rows.sort_unstable();
        rows
    }

    fn live_insert(&mut self, row: usize) {
        if self.live_pos[row] == 0 {
            self.live.push(row as u32);
            self.live_pos[row] = self.live.len() as u32;
        }
    }

    fn live_remove(&mut self, row: usize) {
        let pos = self.live_pos[row];
        if pos == 0 {
            return;
        }
        let idx = (pos - 1) as usize;
        let last = self.live.pop().expect("live list non-empty");
        if idx < self.live.len() {
            self.live[idx] = last;
            self.live_pos[last as usize] = pos;
        }
        self.live_pos[row] = 0;
    }

    fn set_mapping(&mut self, row: u64, location: u64, epoch: u64) {
        self.ensure_tables();
        let (r, l) = (row as usize, location as usize);
        if row == location {
            self.forward[r] = 0;
            self.reverse[l] = 0;
            self.epoch_of[r] = 0;
            self.live_remove(r);
        } else {
            self.live_insert(r);
            self.forward[r] = location as u32 + 1;
            self.reverse[l] = row as u32 + 1;
            // Window counts stay far below 2^32 over any simulated run; the
            // saturation only defends the cast.
            self.epoch_of[r] = u32::try_from(epoch + 1).unwrap_or(u32::MAX);
        }
    }

    /// Swap the data of logical `row` with whatever currently occupies
    /// physical `target_location`.
    ///
    /// Returns `None` (and changes nothing) if the swap would be a no-op
    /// (the row already lives there) or if the table has no room left.
    pub fn swap_to(&mut self, row: u64, target_location: u64, epoch: u64) -> Option<SwapRecord> {
        let from = self.translate(row);
        if from == target_location {
            return None;
        }
        let displaced = self.occupant(target_location);
        if !(self.has_room() || self.is_remapped(row) || self.is_remapped(displaced)) {
            return None;
        }
        self.set_mapping(row, target_location, epoch);
        self.set_mapping(displaced, from, epoch);
        Some(SwapRecord {
            row,
            from_location: from,
            to_location: target_location,
            displaced_row: displaced,
        })
    }

    /// Unswap logical `row`, restoring it (and whatever occupies its home)
    /// to identity mappings. Used by RRS for immediate unswaps and by the
    /// SRS place-back engine.
    ///
    /// Returns `None` if the row was not remapped.
    pub fn unswap(&mut self, row: u64, epoch: u64) -> Option<SwapRecord> {
        if !self.is_remapped(row) {
            return None;
        }
        let from = self.translate(row);
        let occupant_of_home = self.occupant(row);
        // Move `row` home and move the occupant of its home to the location
        // `row` vacated (daisy-chain step of the place-back procedure).
        self.set_mapping(row, row, epoch);
        self.set_mapping(occupant_of_home, from, epoch);
        Some(SwapRecord {
            row,
            from_location: from,
            to_location: row,
            displaced_row: occupant_of_home,
        })
    }

    /// Remove every mapping (end-of-simulation or bulk unswap accounting).
    pub fn clear(&mut self) {
        // Undo through the live list rather than re-zeroing the full
        // arrays: only the touched slots need clearing.
        while let Some(&row) = self.live.last() {
            let r = row as usize;
            let location = (self.forward[r] - 1) as usize;
            self.forward[r] = 0;
            self.reverse[location] = 0;
            self.epoch_of[r] = 0;
            self.live_remove(r);
        }
    }

    /// Check the internal bijection invariant; used by tests.
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        let reverse_live = self.reverse.iter().filter(|&&m| m != 0).count();
        if reverse_live != self.live.len() {
            return false;
        }
        self.live.iter().all(|&r| {
            let row = u64::from(r);
            let mapped = self.forward[r as usize];
            mapped != 0
                && self.occupant(u64::from(mapped - 1)) == row
                && self.epoch_of[r as usize] != 0
                && self.live_pos[r as usize] != 0
        })
    }
}

/// All per-bank RITs of a defense.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowIndirectionTable {
    config: RitConfig,
    banks: Vec<BankRit>,
}

impl RowIndirectionTable {
    /// Create one empty RIT per bank.
    #[must_use]
    pub fn new(config: RitConfig, banks: usize) -> Self {
        Self {
            banks: (0..banks)
                .map(|_| BankRit::new(config.capacity, config.rows_per_bank))
                .collect(),
            config,
        }
    }

    /// The sizing configuration.
    #[must_use]
    pub fn config(&self) -> &RitConfig {
        &self.config
    }

    /// Access one bank's table.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank(&self, bank: usize) -> &BankRit {
        &self.banks[bank]
    }

    /// Mutable access to one bank's table.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank_mut(&mut self, bank: usize) -> &mut BankRit {
        &mut self.banks[bank]
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Total live mappings across all banks.
    #[must_use]
    pub fn total_live_entries(&self) -> usize {
        self.banks.iter().map(BankRit::live_entries).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rit() -> BankRit {
        BankRit::new(64, 1024)
    }

    #[test]
    fn identity_by_default() {
        let r = rit();
        assert_eq!(r.translate(5), 5);
        assert_eq!(r.occupant(5), 5);
        assert!(!r.is_remapped(5));
        assert_eq!(r.live_entries(), 0);
    }

    #[test]
    fn swap_moves_both_rows() {
        let mut r = rit();
        let rec = r.swap_to(10, 99, 0).unwrap();
        assert_eq!(rec.from_location, 10);
        assert_eq!(rec.to_location, 99);
        assert_eq!(rec.displaced_row, 99);
        assert_eq!(r.translate(10), 99);
        assert_eq!(r.translate(99), 10);
        assert_eq!(r.occupant(99), 10);
        assert_eq!(r.occupant(10), 99);
        assert!(r.invariants_hold());
        assert_eq!(r.live_entries(), 2);
    }

    #[test]
    fn swap_to_own_location_is_noop() {
        let mut r = rit();
        assert!(r.swap_to(7, 7, 0).is_none());
        assert_eq!(r.live_entries(), 0);
    }

    #[test]
    fn chained_swaps_track_locations() {
        let mut r = rit();
        // A -> location of B, then A (now at B's home) -> location of C.
        r.swap_to(1, 2, 0).unwrap();
        let rec = r.swap_to(1, 3, 0).unwrap();
        assert_eq!(rec.from_location, 2);
        assert_eq!(rec.to_location, 3);
        assert_eq!(rec.displaced_row, 3);
        // Row 1's data is at location 3; row 3's data is at location 2 (where
        // row 1 used to be); row 2's data is at row 1's home.
        assert_eq!(r.translate(1), 3);
        assert_eq!(r.translate(3), 2);
        assert_eq!(r.translate(2), 1);
        assert!(r.invariants_hold());
    }

    #[test]
    fn unswap_restores_pair() {
        let mut r = rit();
        r.swap_to(1, 2, 0).unwrap();
        let rec = r.unswap(1, 0).unwrap();
        assert_eq!(rec.to_location, 1);
        assert_eq!(r.translate(1), 1);
        assert_eq!(r.translate(2), 2);
        assert_eq!(r.live_entries(), 0);
        assert!(r.invariants_hold());
    }

    #[test]
    fn unswap_of_chain_homes_one_row_per_step() {
        let mut r = rit();
        r.swap_to(1, 2, 0).unwrap();
        r.swap_to(1, 3, 0).unwrap();
        // Home row 1; rows 2 and 3 may still be displaced among themselves.
        r.unswap(1, 1).unwrap();
        assert_eq!(r.translate(1), 1);
        assert!(r.invariants_hold());
        // Homing the remaining stale rows one by one empties the table.
        for row in r.remapped_rows() {
            r.unswap(row, 1);
        }
        assert_eq!(r.live_entries(), 0);
    }

    #[test]
    fn unswap_of_identity_row_is_none() {
        let mut r = rit();
        assert!(r.unswap(42, 0).is_none());
    }

    #[test]
    fn capacity_blocks_new_pairs_but_not_existing_rows() {
        let mut r = BankRit::new(4, 1024);
        assert!(r.swap_to(1, 100, 0).is_some());
        assert!(r.swap_to(2, 200, 0).is_some());
        // Table full (4 live entries): a brand-new pair is rejected...
        assert!(r.swap_to(3, 300, 0).is_none());
        // ...but a row that is already remapped may keep swapping.
        assert!(r.swap_to(1, 200, 0).is_some());
        assert!(r.invariants_hold());
    }

    #[test]
    fn stale_rows_are_reported_per_epoch() {
        let mut r = rit();
        r.swap_to(1, 10, 0).unwrap();
        r.swap_to(2, 20, 1).unwrap();
        let stale = r.stale_rows(1);
        assert!(stale.contains(&1));
        assert!(stale.contains(&10));
        assert!(!stale.contains(&2));
    }

    #[test]
    fn clear_restores_identity_everywhere() {
        let mut r = rit();
        r.swap_to(1, 10, 0).unwrap();
        r.swap_to(2, 20, 0).unwrap();
        r.clear();
        assert_eq!(r.live_entries(), 0);
        for row in [1, 2, 10, 20] {
            assert_eq!(r.translate(row), row);
            assert_eq!(r.occupant(row), row);
        }
        assert!(r.invariants_hold());
    }

    #[test]
    fn rit_config_sizes() {
        let c = RitConfig::for_swaps(1700, 128 * 1024);
        assert_eq!(c.capacity, 3400);
        assert_eq!(c.row_bits, 17);
        assert_eq!(c.rows_per_bank, 128 * 1024);
        assert!(c.storage_bits_dual() > c.storage_bits_compact());
        // Dual storage at TS=800 lands in the tens of kilobytes per bank,
        // the order of magnitude of Table IV.
        let bytes = c.storage_bits_dual() / 8;
        assert!(bytes > 20_000 && bytes < 80_000, "bytes = {bytes}");
    }

    #[test]
    fn multi_bank_table_is_independent() {
        let mut t = RowIndirectionTable::new(RitConfig::for_swaps(16, 1024), 4);
        t.bank_mut(0).swap_to(1, 2, 0).unwrap();
        assert_eq!(t.bank(0).translate(1), 2);
        assert_eq!(t.bank(1).translate(1), 1);
        assert_eq!(t.total_live_entries(), 2);
        assert_eq!(t.banks(), 4);
    }
}
