//! The Row Indirection Table (RIT).
//!
//! The RIT records which DRAM chip location ("physical row") currently holds
//! the data of each row address issued by the system ("logical row"), and
//! the reverse. RRS stores the mappings as *tuple pairs* so that a pair can
//! be unswapped immediately; SRS splits the table into a *real* part
//! (logical → physical) and a *mirrored* part (physical → logical) so that
//! rows can keep swapping forward without ever being unswapped within the
//! epoch (Section IV-C of the paper).
//!
//! Both organisations need the same two look-up directions, so a single
//! [`BankRit`] provides them; the defenses differ in how they use it and in
//! how its storage is accounted (see [`crate::storage`]).
//!
//! The hardware RIT is built as a Collision Avoidance Table (CAT) — an
//! over-provisioned set-associative structure that is never filled beyond a
//! safe load factor so conflict-based attacks cannot force evictions. This
//! model abstracts the CAT's internal hashing and keeps only its two
//! architecturally visible properties: a bounded entry count and the
//! guarantee that an insertion below capacity always succeeds.
//!
//! Storage model: live mappings sit in dense parallel arrays (row,
//! location, epoch — the latter two doubling as the iteration surface for
//! the place-back scan), and both look-up directions are compact
//! open-addressed indexes over those arrays ([`OpenMap`]). The index
//! space is `rows_per_bank` but only `capacity` entries are ever live, so
//! the kilobyte-sized tables stay L1-resident, a bank that never swaps
//! costs nothing to hold, and cloning a touched bank copies kilobytes —
//! the earlier direct-indexed `rows_per_bank`-sized arrays zeroed ~2 MB
//! per bank on its first swap, which dominated the defense wall time of
//! the saturated quickstart cells.

use serde::{Deserialize, Serialize};

use crate::open_map::OpenMap;

/// Capacity and sizing parameters of a per-bank RIT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RitConfig {
    /// Maximum number of live (non-identity) mappings per bank.
    pub capacity: usize,
    /// Bits per row address stored in an entry.
    pub row_bits: u32,
    /// CAT over-provisioning factor applied when reporting storage (the
    /// physical table has more slots than `capacity` live mappings).
    pub overprovision: f64,
    /// Rows per bank — the index space of the direct-indexed tables.
    pub rows_per_bank: u64,
}

impl RitConfig {
    /// Size the RIT for a bank that can experience at most
    /// `max_swaps_per_window` swaps per refresh window.
    ///
    /// Mappings from the previous epoch are evicted lazily, so in the worst
    /// case the table holds the live mappings of two consecutive epochs.
    #[must_use]
    pub fn for_swaps(max_swaps_per_window: u64, rows_per_bank: u64) -> Self {
        let capacity = (2 * max_swaps_per_window).max(8) as usize;
        let row_bits = 64 - rows_per_bank.next_power_of_two().leading_zeros() - 1;
        Self { capacity, row_bits: row_bits.max(1), overprovision: 1.5, rows_per_bank }
    }

    /// SRAM bits needed for one bank's RIT when storing both mapping
    /// directions (RRS tuple pairs, or SRS real + mirrored halves).
    #[must_use]
    pub fn storage_bits_dual(&self) -> u64 {
        let entry_bits = u64::from(2 * self.row_bits + 2); // two rows + valid + lock/epoch bit
        (self.capacity as f64 * self.overprovision).ceil() as u64 * 2 * entry_bits
    }

    /// SRAM bits for the compact single-table variant discussed in the
    /// paper's Discussion §4 (a direction bit per entry instead of a
    /// mirrored half).
    #[must_use]
    pub fn storage_bits_compact(&self) -> u64 {
        self.storage_bits_dual() / 2 + (self.capacity as f64 * self.overprovision).ceil() as u64
    }
}

/// A record of one swap performed through the RIT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapRecord {
    /// The logical row that triggered the swap.
    pub row: u64,
    /// The physical location the row's data moved *from*.
    pub from_location: u64,
    /// The physical location the row's data moved *to*.
    pub to_location: u64,
    /// The logical row whose data previously occupied `to_location` and has
    /// been displaced to `from_location`.
    pub displaced_row: u64,
}

/// The per-bank Row Indirection Table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BankRit {
    /// Logical row → index into the dense live arrays.
    fwd: OpenMap,
    /// Physical location → index into the dense live arrays.
    rev: OpenMap,
    /// The live (remapped) logical rows, unordered.
    live: Vec<u32>,
    /// Where each live row's data currently lives, parallel to `live`.
    live_locs: Vec<u32>,
    /// `epoch + 1` of each live mapping, parallel to `live`, so the
    /// stale-row walk scans one dense array.
    live_epochs: Vec<u32>,
    rows: u64,
    capacity: usize,
}

impl BankRit {
    /// Create an empty table with the given live-mapping capacity over a
    /// bank of `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` does not fit the table's 32-bit row encoding.
    #[must_use]
    pub fn new(capacity: usize, rows: u64) -> Self {
        assert!(rows < u64::from(u32::MAX), "rows_per_bank exceeds the RIT's row encoding");
        Self {
            fwd: OpenMap::new(),
            rev: OpenMap::new(),
            live: Vec::new(),
            live_locs: Vec::new(),
            live_epochs: Vec::new(),
            rows,
            capacity,
        }
    }

    /// Where the data of logical `row` currently lives.
    #[inline]
    #[must_use]
    pub fn translate(&self, row: u64) -> u64 {
        if row >= self.rows {
            return row;
        }
        match self.fwd.get(row as u32) {
            Some(idx) => u64::from(self.live_locs[idx as usize]),
            None => row,
        }
    }

    /// Which logical row's data currently lives at physical `location`.
    #[inline]
    #[must_use]
    pub fn occupant(&self, location: u64) -> u64 {
        if location >= self.rows {
            return location;
        }
        match self.rev.get(location as u32) {
            Some(idx) => u64::from(self.live[idx as usize]),
            None => location,
        }
    }

    /// Whether logical `row` is currently remapped away from its home.
    #[inline]
    #[must_use]
    pub fn is_remapped(&self, row: u64) -> bool {
        row < self.rows && self.fwd.get(row as u32).is_some()
    }

    /// Number of live (non-identity) mappings.
    #[must_use]
    pub fn live_entries(&self) -> usize {
        self.live.len()
    }

    /// Maximum number of live mappings.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a new swap could still be recorded (two mappings may be
    /// created per swap).
    #[must_use]
    pub fn has_room(&self) -> bool {
        self.live_entries() + 2 <= self.capacity
    }

    /// Logical rows whose mapping was created in an epoch before
    /// `current_epoch` (candidates for lazy place-back).
    ///
    /// The defense polls this on a timer for every bank, usually finding
    /// nothing; the walk therefore runs over the dense `live_epochs` mirror
    /// in chunks of eight branchlessly-compared lanes, touching the `live`
    /// row list only for the (rare) stale hits.
    #[must_use]
    pub fn stale_rows(&self, current_epoch: u64) -> Vec<u64> {
        // `live_epochs` stores `epoch + 1` exactly as `epoch_of` does, so
        // the stale predicate keeps the original encoding and comparison.
        let cutoff = current_epoch + 1;
        let mut rows: Vec<u64> = Vec::new();
        let mut chunks = self.live_epochs.chunks_exact(8);
        let mut base = 0;
        for chunk in &mut chunks {
            let mut mask = 0u32;
            for (lane, &epoch) in chunk.iter().enumerate() {
                mask |= u32::from(u64::from(epoch) < cutoff) << lane;
            }
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                rows.push(u64::from(self.live[base + lane]));
            }
            base += 8;
        }
        for (tail, &epoch) in chunks.remainder().iter().enumerate() {
            if u64::from(epoch) < cutoff {
                rows.push(u64::from(self.live[base + tail]));
            }
        }
        rows.sort_unstable();
        rows
    }

    /// All currently remapped logical rows.
    #[must_use]
    pub fn remapped_rows(&self) -> Vec<u64> {
        let mut rows: Vec<u64> = self.live.iter().map(|&r| u64::from(r)).collect();
        rows.sort_unstable();
        rows
    }

    /// Remove dense entry `idx`, patching the indexes of the entry swapped
    /// into its place. The reverse index is only patched when it still
    /// points at the moved entry: between the two [`Self::set_mapping`]
    /// calls of a swap, a location's reverse entry may already have been
    /// taken over by the other half of the pair.
    fn live_swap_remove(&mut self, idx: usize) {
        let last = self.live.len() - 1;
        self.live.swap_remove(idx);
        self.live_locs.swap_remove(idx);
        self.live_epochs.swap_remove(idx);
        if idx < last {
            self.fwd.insert(self.live[idx], idx as u32);
            let moved_loc = self.live_locs[idx];
            if self.rev.get(moved_loc) == Some(last as u32) {
                self.rev.insert(moved_loc, idx as u32);
            }
        }
    }

    fn set_mapping(&mut self, row: u64, location: u64, epoch: u64) {
        let key_row = row as u32;
        if row == location {
            // Restore identity: drop the row's mapping and, when it still
            // points here, the reverse entry of the location it vacates.
            if let Some(idx) = self.fwd.remove(key_row) {
                let loc = self.live_locs[idx as usize];
                if self.rev.get(loc) == Some(idx) {
                    self.rev.remove(loc);
                }
                self.live_swap_remove(idx as usize);
            }
        } else {
            // Window counts stay far below 2^32 over any simulated run; the
            // saturation only defends the cast.
            let encoded = u32::try_from(epoch + 1).unwrap_or(u32::MAX);
            let key_loc = location as u32;
            if let Some(idx) = self.fwd.get(key_row) {
                let i = idx as usize;
                let old_loc = self.live_locs[i];
                if old_loc != key_loc {
                    if self.rev.get(old_loc) == Some(idx) {
                        self.rev.remove(old_loc);
                    }
                    self.live_locs[i] = key_loc;
                    self.rev.insert(key_loc, idx);
                }
                self.live_epochs[i] = encoded;
            } else {
                let idx = self.live.len() as u32;
                self.live.push(key_row);
                self.live_locs.push(key_loc);
                self.live_epochs.push(encoded);
                self.fwd.insert(key_row, idx);
                self.rev.insert(key_loc, idx);
            }
        }
    }

    /// Swap the data of logical `row` with whatever currently occupies
    /// physical `target_location`.
    ///
    /// Returns `None` (and changes nothing) if the swap would be a no-op
    /// (the row already lives there) or if the table has no room left.
    pub fn swap_to(&mut self, row: u64, target_location: u64, epoch: u64) -> Option<SwapRecord> {
        let from = self.translate(row);
        if from == target_location {
            return None;
        }
        let displaced = self.occupant(target_location);
        if !(self.has_room() || self.is_remapped(row) || self.is_remapped(displaced)) {
            return None;
        }
        self.set_mapping(row, target_location, epoch);
        self.set_mapping(displaced, from, epoch);
        Some(SwapRecord {
            row,
            from_location: from,
            to_location: target_location,
            displaced_row: displaced,
        })
    }

    /// Unswap logical `row`, restoring it (and whatever occupies its home)
    /// to identity mappings. Used by RRS for immediate unswaps and by the
    /// SRS place-back engine.
    ///
    /// Returns `None` if the row was not remapped.
    pub fn unswap(&mut self, row: u64, epoch: u64) -> Option<SwapRecord> {
        if !self.is_remapped(row) {
            return None;
        }
        let from = self.translate(row);
        let occupant_of_home = self.occupant(row);
        // Move `row` home and move the occupant of its home to the location
        // `row` vacated (daisy-chain step of the place-back procedure).
        self.set_mapping(row, row, epoch);
        self.set_mapping(occupant_of_home, from, epoch);
        Some(SwapRecord {
            row,
            from_location: from,
            to_location: row,
            displaced_row: occupant_of_home,
        })
    }

    /// Remove every mapping (end-of-simulation or bulk unswap accounting).
    pub fn clear(&mut self) {
        self.fwd.clear();
        self.rev.clear();
        self.live.clear();
        self.live_locs.clear();
        self.live_epochs.clear();
    }

    /// Check the internal bijection invariant; used by tests.
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        if self.live_locs.len() != self.live.len()
            || self.live_epochs.len() != self.live.len()
            || self.fwd.len() != self.live.len()
            || self.rev.len() != self.live.len()
        {
            return false;
        }
        self.live.iter().enumerate().all(|(pos, &r)| {
            self.live_locs[pos] != r
                && self.live_epochs[pos] != 0
                && self.fwd.get(r) == Some(pos as u32)
                && self.rev.get(self.live_locs[pos]) == Some(pos as u32)
        })
    }
}

/// All per-bank RITs of a defense.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowIndirectionTable {
    config: RitConfig,
    banks: Vec<BankRit>,
}

impl RowIndirectionTable {
    /// Create one empty RIT per bank.
    #[must_use]
    pub fn new(config: RitConfig, banks: usize) -> Self {
        Self {
            banks: (0..banks)
                .map(|_| BankRit::new(config.capacity, config.rows_per_bank))
                .collect(),
            config,
        }
    }

    /// The sizing configuration.
    #[must_use]
    pub fn config(&self) -> &RitConfig {
        &self.config
    }

    /// Access one bank's table.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank(&self, bank: usize) -> &BankRit {
        &self.banks[bank]
    }

    /// Mutable access to one bank's table.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank_mut(&mut self, bank: usize) -> &mut BankRit {
        &mut self.banks[bank]
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Total live mappings across all banks.
    #[must_use]
    pub fn total_live_entries(&self) -> usize {
        self.banks.iter().map(BankRit::live_entries).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rit() -> BankRit {
        BankRit::new(64, 1024)
    }

    #[test]
    fn identity_by_default() {
        let r = rit();
        assert_eq!(r.translate(5), 5);
        assert_eq!(r.occupant(5), 5);
        assert!(!r.is_remapped(5));
        assert_eq!(r.live_entries(), 0);
    }

    #[test]
    fn swap_moves_both_rows() {
        let mut r = rit();
        let rec = r.swap_to(10, 99, 0).unwrap();
        assert_eq!(rec.from_location, 10);
        assert_eq!(rec.to_location, 99);
        assert_eq!(rec.displaced_row, 99);
        assert_eq!(r.translate(10), 99);
        assert_eq!(r.translate(99), 10);
        assert_eq!(r.occupant(99), 10);
        assert_eq!(r.occupant(10), 99);
        assert!(r.invariants_hold());
        assert_eq!(r.live_entries(), 2);
    }

    #[test]
    fn swap_to_own_location_is_noop() {
        let mut r = rit();
        assert!(r.swap_to(7, 7, 0).is_none());
        assert_eq!(r.live_entries(), 0);
    }

    #[test]
    fn chained_swaps_track_locations() {
        let mut r = rit();
        // A -> location of B, then A (now at B's home) -> location of C.
        r.swap_to(1, 2, 0).unwrap();
        let rec = r.swap_to(1, 3, 0).unwrap();
        assert_eq!(rec.from_location, 2);
        assert_eq!(rec.to_location, 3);
        assert_eq!(rec.displaced_row, 3);
        // Row 1's data is at location 3; row 3's data is at location 2 (where
        // row 1 used to be); row 2's data is at row 1's home.
        assert_eq!(r.translate(1), 3);
        assert_eq!(r.translate(3), 2);
        assert_eq!(r.translate(2), 1);
        assert!(r.invariants_hold());
    }

    #[test]
    fn unswap_restores_pair() {
        let mut r = rit();
        r.swap_to(1, 2, 0).unwrap();
        let rec = r.unswap(1, 0).unwrap();
        assert_eq!(rec.to_location, 1);
        assert_eq!(r.translate(1), 1);
        assert_eq!(r.translate(2), 2);
        assert_eq!(r.live_entries(), 0);
        assert!(r.invariants_hold());
    }

    #[test]
    fn unswap_of_chain_homes_one_row_per_step() {
        let mut r = rit();
        r.swap_to(1, 2, 0).unwrap();
        r.swap_to(1, 3, 0).unwrap();
        // Home row 1; rows 2 and 3 may still be displaced among themselves.
        r.unswap(1, 1).unwrap();
        assert_eq!(r.translate(1), 1);
        assert!(r.invariants_hold());
        // Homing the remaining stale rows one by one empties the table.
        for row in r.remapped_rows() {
            r.unswap(row, 1);
        }
        assert_eq!(r.live_entries(), 0);
    }

    #[test]
    fn unswap_of_identity_row_is_none() {
        let mut r = rit();
        assert!(r.unswap(42, 0).is_none());
    }

    #[test]
    fn capacity_blocks_new_pairs_but_not_existing_rows() {
        let mut r = BankRit::new(4, 1024);
        assert!(r.swap_to(1, 100, 0).is_some());
        assert!(r.swap_to(2, 200, 0).is_some());
        // Table full (4 live entries): a brand-new pair is rejected...
        assert!(r.swap_to(3, 300, 0).is_none());
        // ...but a row that is already remapped may keep swapping.
        assert!(r.swap_to(1, 200, 0).is_some());
        assert!(r.invariants_hold());
    }

    #[test]
    fn stale_rows_are_reported_per_epoch() {
        let mut r = rit();
        r.swap_to(1, 10, 0).unwrap();
        r.swap_to(2, 20, 1).unwrap();
        let stale = r.stale_rows(1);
        assert!(stale.contains(&1));
        assert!(stale.contains(&10));
        assert!(!stale.contains(&2));
    }

    #[test]
    fn stale_scan_matches_gather_on_wide_tables() {
        // Enough live mappings to cover several 8-lane chunks plus a tail,
        // across two epochs, with churn (unswaps) so the live list and its
        // epoch mirror go through swap-remove compaction.
        let mut r = BankRit::new(128, 4096);
        for i in 0..12u64 {
            r.swap_to(i, 1000 + i, 0).unwrap();
        }
        for i in 12..21u64 {
            r.swap_to(i, 1000 + i, 3).unwrap();
        }
        r.unswap(4, 3).unwrap();
        r.unswap(15, 3).unwrap();
        assert!(r.invariants_hold());
        // Reference: the direct gather through the forward index.
        let mut expected: Vec<u64> = r
            .remapped_rows()
            .into_iter()
            .filter(|&row| {
                let idx = r.fwd.get(row as u32).expect("remapped row is indexed");
                u64::from(r.live_epochs[idx as usize]) < 3 + 1
            })
            .collect();
        expected.sort_unstable();
        assert_eq!(r.stale_rows(3), expected);
        assert!(!expected.is_empty(), "epoch-0 mappings must be stale at epoch 3");
        // Every mapping is stale once the epoch advances past both batches.
        assert_eq!(r.stale_rows(10), r.remapped_rows());
    }

    #[test]
    fn clear_restores_identity_everywhere() {
        let mut r = rit();
        r.swap_to(1, 10, 0).unwrap();
        r.swap_to(2, 20, 0).unwrap();
        r.clear();
        assert_eq!(r.live_entries(), 0);
        for row in [1, 2, 10, 20] {
            assert_eq!(r.translate(row), row);
            assert_eq!(r.occupant(row), row);
        }
        assert!(r.invariants_hold());
    }

    #[test]
    fn rit_config_sizes() {
        let c = RitConfig::for_swaps(1700, 128 * 1024);
        assert_eq!(c.capacity, 3400);
        assert_eq!(c.row_bits, 17);
        assert_eq!(c.rows_per_bank, 128 * 1024);
        assert!(c.storage_bits_dual() > c.storage_bits_compact());
        // Dual storage at TS=800 lands in the tens of kilobytes per bank,
        // the order of magnitude of Table IV.
        let bytes = c.storage_bits_dual() / 8;
        assert!(bytes > 20_000 && bytes < 80_000, "bytes = {bytes}");
    }

    #[test]
    fn multi_bank_table_is_independent() {
        let mut t = RowIndirectionTable::new(RitConfig::for_swaps(16, 1024), 4);
        t.bank_mut(0).swap_to(1, 2, 0).unwrap();
        assert_eq!(t.bank(0).translate(1), 2);
        assert_eq!(t.bank(1).translate(1), 1);
        assert_eq!(t.total_live_entries(), 2);
        assert_eq!(t.banks(), 4);
    }
}
