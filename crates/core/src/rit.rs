//! The Row Indirection Table (RIT).
//!
//! The RIT records which DRAM chip location ("physical row") currently holds
//! the data of each row address issued by the system ("logical row"), and
//! the reverse. RRS stores the mappings as *tuple pairs* so that a pair can
//! be unswapped immediately; SRS splits the table into a *real* part
//! (logical → physical) and a *mirrored* part (physical → logical) so that
//! rows can keep swapping forward without ever being unswapped within the
//! epoch (Section IV-C of the paper).
//!
//! Both organisations need the same two look-up directions, so a single
//! [`BankRit`] provides them; the defenses differ in how they use it and in
//! how its storage is accounted (see [`crate::storage`]).
//!
//! The hardware RIT is built as a Collision Avoidance Table (CAT) — an
//! over-provisioned set-associative structure that is never filled beyond a
//! safe load factor so conflict-based attacks cannot force evictions. This
//! model abstracts the CAT's internal hashing and keeps only its two
//! architecturally visible properties: a bounded entry count and the
//! guarantee that an insertion below capacity always succeeds.

use fxhash::FxHashMap;

use serde::{Deserialize, Serialize};

/// Capacity and sizing parameters of a per-bank RIT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RitConfig {
    /// Maximum number of live (non-identity) mappings per bank.
    pub capacity: usize,
    /// Bits per row address stored in an entry.
    pub row_bits: u32,
    /// CAT over-provisioning factor applied when reporting storage (the
    /// physical table has more slots than `capacity` live mappings).
    pub overprovision: f64,
}

impl RitConfig {
    /// Size the RIT for a bank that can experience at most
    /// `max_swaps_per_window` swaps per refresh window.
    ///
    /// Mappings from the previous epoch are evicted lazily, so in the worst
    /// case the table holds the live mappings of two consecutive epochs.
    #[must_use]
    pub fn for_swaps(max_swaps_per_window: u64, rows_per_bank: u64) -> Self {
        let capacity = (2 * max_swaps_per_window).max(8) as usize;
        let row_bits = 64 - rows_per_bank.next_power_of_two().leading_zeros() - 1;
        Self { capacity, row_bits: row_bits.max(1), overprovision: 1.5 }
    }

    /// SRAM bits needed for one bank's RIT when storing both mapping
    /// directions (RRS tuple pairs, or SRS real + mirrored halves).
    #[must_use]
    pub fn storage_bits_dual(&self) -> u64 {
        let entry_bits = u64::from(2 * self.row_bits + 2); // two rows + valid + lock/epoch bit
        (self.capacity as f64 * self.overprovision).ceil() as u64 * 2 * entry_bits
    }

    /// SRAM bits for the compact single-table variant discussed in the
    /// paper's Discussion §4 (a direction bit per entry instead of a
    /// mirrored half).
    #[must_use]
    pub fn storage_bits_compact(&self) -> u64 {
        self.storage_bits_dual() / 2 + (self.capacity as f64 * self.overprovision).ceil() as u64
    }
}

/// A record of one swap performed through the RIT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapRecord {
    /// The logical row that triggered the swap.
    pub row: u64,
    /// The physical location the row's data moved *from*.
    pub from_location: u64,
    /// The physical location the row's data moved *to*.
    pub to_location: u64,
    /// The logical row whose data previously occupied `to_location` and has
    /// been displaced to `from_location`.
    pub displaced_row: u64,
}

/// The per-bank Row Indirection Table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BankRit {
    forward: FxHashMap<u64, u64>,
    reverse: FxHashMap<u64, u64>,
    epoch_of: FxHashMap<u64, u64>,
    capacity: usize,
}

impl BankRit {
    /// Create an empty table with the given live-mapping capacity.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            forward: FxHashMap::default(),
            reverse: FxHashMap::default(),
            epoch_of: FxHashMap::default(),
            capacity,
        }
    }

    /// Where the data of logical `row` currently lives.
    #[must_use]
    pub fn translate(&self, row: u64) -> u64 {
        self.forward.get(&row).copied().unwrap_or(row)
    }

    /// Which logical row's data currently lives at physical `location`.
    #[must_use]
    pub fn occupant(&self, location: u64) -> u64 {
        self.reverse.get(&location).copied().unwrap_or(location)
    }

    /// Whether logical `row` is currently remapped away from its home.
    #[must_use]
    pub fn is_remapped(&self, row: u64) -> bool {
        self.forward.contains_key(&row)
    }

    /// Number of live (non-identity) mappings.
    #[must_use]
    pub fn live_entries(&self) -> usize {
        self.forward.len()
    }

    /// Maximum number of live mappings.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a new swap could still be recorded (two mappings may be
    /// created per swap).
    #[must_use]
    pub fn has_room(&self) -> bool {
        self.live_entries() + 2 <= self.capacity
    }

    /// Logical rows whose mapping was created in an epoch before
    /// `current_epoch` (candidates for lazy place-back).
    #[must_use]
    pub fn stale_rows(&self, current_epoch: u64) -> Vec<u64> {
        let mut rows: Vec<u64> = self
            .epoch_of
            .iter()
            .filter(|(_, &e)| e < current_epoch)
            .map(|(&r, _)| r)
            .filter(|r| self.forward.contains_key(r))
            .collect();
        rows.sort_unstable();
        rows
    }

    /// All currently remapped logical rows.
    #[must_use]
    pub fn remapped_rows(&self) -> Vec<u64> {
        let mut rows: Vec<u64> = self.forward.keys().copied().collect();
        rows.sort_unstable();
        rows
    }

    fn set_mapping(&mut self, row: u64, location: u64, epoch: u64) {
        if row == location {
            self.forward.remove(&row);
            self.reverse.remove(&location);
            self.epoch_of.remove(&row);
        } else {
            self.forward.insert(row, location);
            self.reverse.insert(location, row);
            self.epoch_of.insert(row, epoch);
        }
    }

    /// Swap the data of logical `row` with whatever currently occupies
    /// physical `target_location`.
    ///
    /// Returns `None` (and changes nothing) if the swap would be a no-op
    /// (the row already lives there) or if the table has no room left.
    pub fn swap_to(&mut self, row: u64, target_location: u64, epoch: u64) -> Option<SwapRecord> {
        let from = self.translate(row);
        if from == target_location {
            return None;
        }
        let displaced = self.occupant(target_location);
        if !(self.has_room() || self.is_remapped(row) || self.is_remapped(displaced)) {
            return None;
        }
        self.set_mapping(row, target_location, epoch);
        self.set_mapping(displaced, from, epoch);
        Some(SwapRecord {
            row,
            from_location: from,
            to_location: target_location,
            displaced_row: displaced,
        })
    }

    /// Unswap logical `row`, restoring it (and whatever occupies its home)
    /// to identity mappings. Used by RRS for immediate unswaps and by the
    /// SRS place-back engine.
    ///
    /// Returns `None` if the row was not remapped.
    pub fn unswap(&mut self, row: u64, epoch: u64) -> Option<SwapRecord> {
        if !self.is_remapped(row) {
            return None;
        }
        let from = self.translate(row);
        let occupant_of_home = self.occupant(row);
        // Move `row` home and move the occupant of its home to the location
        // `row` vacated (daisy-chain step of the place-back procedure).
        self.set_mapping(row, row, epoch);
        self.set_mapping(occupant_of_home, from, epoch);
        Some(SwapRecord {
            row,
            from_location: from,
            to_location: row,
            displaced_row: occupant_of_home,
        })
    }

    /// Remove every mapping (end-of-simulation or bulk unswap accounting).
    pub fn clear(&mut self) {
        self.forward.clear();
        self.reverse.clear();
        self.epoch_of.clear();
    }

    /// Check the internal bijection invariant; used by tests.
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        if self.forward.len() != self.reverse.len() {
            return false;
        }
        self.forward.iter().all(|(&row, &loc)| self.reverse.get(&loc) == Some(&row))
            && self.reverse.iter().all(|(&loc, &row)| self.forward.get(&row) == Some(&loc))
    }
}

/// All per-bank RITs of a defense.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowIndirectionTable {
    config: RitConfig,
    banks: Vec<BankRit>,
}

impl RowIndirectionTable {
    /// Create one empty RIT per bank.
    #[must_use]
    pub fn new(config: RitConfig, banks: usize) -> Self {
        Self { banks: (0..banks).map(|_| BankRit::new(config.capacity)).collect(), config }
    }

    /// The sizing configuration.
    #[must_use]
    pub fn config(&self) -> &RitConfig {
        &self.config
    }

    /// Access one bank's table.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank(&self, bank: usize) -> &BankRit {
        &self.banks[bank]
    }

    /// Mutable access to one bank's table.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank_mut(&mut self, bank: usize) -> &mut BankRit {
        &mut self.banks[bank]
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Total live mappings across all banks.
    #[must_use]
    pub fn total_live_entries(&self) -> usize {
        self.banks.iter().map(BankRit::live_entries).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rit() -> BankRit {
        BankRit::new(64)
    }

    #[test]
    fn identity_by_default() {
        let r = rit();
        assert_eq!(r.translate(5), 5);
        assert_eq!(r.occupant(5), 5);
        assert!(!r.is_remapped(5));
        assert_eq!(r.live_entries(), 0);
    }

    #[test]
    fn swap_moves_both_rows() {
        let mut r = rit();
        let rec = r.swap_to(10, 99, 0).unwrap();
        assert_eq!(rec.from_location, 10);
        assert_eq!(rec.to_location, 99);
        assert_eq!(rec.displaced_row, 99);
        assert_eq!(r.translate(10), 99);
        assert_eq!(r.translate(99), 10);
        assert_eq!(r.occupant(99), 10);
        assert_eq!(r.occupant(10), 99);
        assert!(r.invariants_hold());
        assert_eq!(r.live_entries(), 2);
    }

    #[test]
    fn swap_to_own_location_is_noop() {
        let mut r = rit();
        assert!(r.swap_to(7, 7, 0).is_none());
        assert_eq!(r.live_entries(), 0);
    }

    #[test]
    fn chained_swaps_track_locations() {
        let mut r = rit();
        // A -> location of B, then A (now at B's home) -> location of C.
        r.swap_to(1, 2, 0).unwrap();
        let rec = r.swap_to(1, 3, 0).unwrap();
        assert_eq!(rec.from_location, 2);
        assert_eq!(rec.to_location, 3);
        assert_eq!(rec.displaced_row, 3);
        // Row 1's data is at location 3; row 3's data is at location 2 (where
        // row 1 used to be); row 2's data is at row 1's home.
        assert_eq!(r.translate(1), 3);
        assert_eq!(r.translate(3), 2);
        assert_eq!(r.translate(2), 1);
        assert!(r.invariants_hold());
    }

    #[test]
    fn unswap_restores_pair() {
        let mut r = rit();
        r.swap_to(1, 2, 0).unwrap();
        let rec = r.unswap(1, 0).unwrap();
        assert_eq!(rec.to_location, 1);
        assert_eq!(r.translate(1), 1);
        assert_eq!(r.translate(2), 2);
        assert_eq!(r.live_entries(), 0);
        assert!(r.invariants_hold());
    }

    #[test]
    fn unswap_of_chain_homes_one_row_per_step() {
        let mut r = rit();
        r.swap_to(1, 2, 0).unwrap();
        r.swap_to(1, 3, 0).unwrap();
        // Home row 1; rows 2 and 3 may still be displaced among themselves.
        r.unswap(1, 1).unwrap();
        assert_eq!(r.translate(1), 1);
        assert!(r.invariants_hold());
        // Homing the remaining stale rows one by one empties the table.
        for row in r.remapped_rows() {
            r.unswap(row, 1);
        }
        assert_eq!(r.live_entries(), 0);
    }

    #[test]
    fn unswap_of_identity_row_is_none() {
        let mut r = rit();
        assert!(r.unswap(42, 0).is_none());
    }

    #[test]
    fn capacity_blocks_new_pairs_but_not_existing_rows() {
        let mut r = BankRit::new(4);
        assert!(r.swap_to(1, 100, 0).is_some());
        assert!(r.swap_to(2, 200, 0).is_some());
        // Table full (4 live entries): a brand-new pair is rejected...
        assert!(r.swap_to(3, 300, 0).is_none());
        // ...but a row that is already remapped may keep swapping.
        assert!(r.swap_to(1, 200, 0).is_some());
        assert!(r.invariants_hold());
    }

    #[test]
    fn stale_rows_are_reported_per_epoch() {
        let mut r = rit();
        r.swap_to(1, 10, 0).unwrap();
        r.swap_to(2, 20, 1).unwrap();
        let stale = r.stale_rows(1);
        assert!(stale.contains(&1));
        assert!(stale.contains(&10));
        assert!(!stale.contains(&2));
    }

    #[test]
    fn rit_config_sizes() {
        let c = RitConfig::for_swaps(1700, 128 * 1024);
        assert_eq!(c.capacity, 3400);
        assert_eq!(c.row_bits, 17);
        assert!(c.storage_bits_dual() > c.storage_bits_compact());
        // Dual storage at TS=800 lands in the tens of kilobytes per bank,
        // the order of magnitude of Table IV.
        let bytes = c.storage_bits_dual() / 8;
        assert!(bytes > 20_000 && bytes < 80_000, "bytes = {bytes}");
    }

    #[test]
    fn multi_bank_table_is_independent() {
        let mut t = RowIndirectionTable::new(RitConfig::for_swaps(16, 1024), 4);
        t.bank_mut(0).swap_to(1, 2, 0).unwrap();
        assert_eq!(t.bank(0).translate(1), 2);
        assert_eq!(t.bank(1).translate(1), 1);
        assert_eq!(t.total_live_entries(), 2);
        assert_eq!(t.banks(), 4);
    }
}
