//! Secure Row-Swap (SRS), the paper's first contribution (Section IV).
//!
//! SRS keeps the randomized-swap idea of RRS but removes the unswap-swap
//! operation — the source of the latent activations exploited by the
//! Juggernaut attack. A row that keeps getting hammered simply swaps
//! *onward* to a fresh random location; stale mappings are put back to their
//! original locations lazily, spread over the next refresh window through a
//! per-bank place-back buffer. Every swap also updates a per-row
//! swap-tracking counter held in reserved DRAM, which provides attack
//! detection against future unknown attack patterns.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::actions::{MitigationAction, RowOpKind};
use crate::config::MitigationConfig;
use crate::counters::SwapCounters;
use crate::defense::{DefenseKind, RowSwapDefense};
use crate::rit::{RitConfig, RowIndirectionTable};
use crate::storage::{storage_for, StorageReport};

/// Statistics kept by an SRS instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SrsStats {
    /// Swap operations performed.
    pub swaps: u64,
    /// Lazy place-back operations performed.
    pub place_backs: u64,
    /// Counter-row read-modify-writes performed.
    pub counter_accesses: u64,
    /// Triggers skipped because the RIT had no room.
    pub skipped: u64,
    /// Rows flagged by the swap-count attack detector.
    pub detections: u64,
}

/// The Secure Row-Swap defense.
#[derive(Debug, Clone)]
pub struct SecureRowSwap {
    config: MitigationConfig,
    rit: RowIndirectionTable,
    counters: Vec<SwapCounters>,
    placeback_queue: Vec<VecDeque<u64>>,
    /// Cached total length of `placeback_queue` (read every simulator tick
    /// through [`RowSwapDefense::next_action_ns`]).
    placeback_pending: usize,
    next_placeback_ns: u64,
    placeback_interval_ns: u64,
    rng: StdRng,
    epoch: u64,
    stats: SrsStats,
}

impl SecureRowSwap {
    /// Create an SRS instance.
    #[must_use]
    pub fn new(config: MitigationConfig) -> Self {
        let rit_config = RitConfig::for_swaps(config.max_swaps_per_window(), config.rows_per_bank);
        let row_bytes = 8 * 1024;
        Self {
            rit: RowIndirectionTable::new(rit_config, config.banks),
            counters: (0..config.banks)
                .map(|_| SwapCounters::new(config.rows_per_bank, row_bytes))
                .collect(),
            placeback_queue: vec![VecDeque::new(); config.banks],
            placeback_pending: 0,
            next_placeback_ns: 0,
            placeback_interval_ns: config.refresh_window_ns,
            rng: StdRng::seed_from_u64(config.rng_seed ^ 0x5125),
            epoch: 0,
            stats: SrsStats::default(),
            config,
        }
    }

    /// Per-instance statistics.
    #[must_use]
    pub fn stats(&self) -> &SrsStats {
        &self.stats
    }

    /// The defense configuration.
    #[must_use]
    pub fn config(&self) -> &MitigationConfig {
        &self.config
    }

    /// The current swap-count of the chip location that is the home of
    /// logical `row` (used by Scale-SRS's outlier detector and by tests).
    #[must_use]
    pub fn swap_count(&self, bank: usize, row: u64) -> u64 {
        self.counters[bank].count(row)
    }

    /// The attack-detection threshold in cumulative activations: a location
    /// swapped `outlier_swap_count` times within an epoch is suspicious.
    #[must_use]
    pub fn detection_threshold(&self) -> u64 {
        self.config.outlier_swap_count * self.config.swap_threshold()
    }

    fn random_location(&mut self, avoid: u64) -> u64 {
        loop {
            let candidate = self.rng.random_range(0..self.config.rows_per_bank);
            if candidate != avoid {
                return candidate;
            }
        }
    }

    /// Perform the swap-only mitigation for `row`, returning the actions and
    /// whether the swap-tracking counter crossed the detection threshold.
    pub(crate) fn swap_only_trigger(
        &mut self,
        bank: usize,
        row: u64,
        _now_ns: u64,
    ) -> (Vec<MitigationAction>, bool) {
        let mut actions = Vec::new();
        let current_location = self.rit.bank(bank).translate(row);
        let target = self.random_location(current_location);
        let Some(rec) = self.rit.bank_mut(bank).swap_to(row, target, self.epoch) else {
            self.stats.skipped += 1;
            return (actions, false);
        };
        self.stats.swaps += 1;
        actions.push(MitigationAction::RowOperation {
            bank,
            kind: RowOpKind::Swap,
            duration_ns: self.config.swap_latency_ns,
            activations: vec![rec.from_location, rec.to_location],
        });

        // Update the per-row swap-tracking counter: TS demand activations
        // plus the single latent activation of the swap are charged to the
        // home chip location of the row being mitigated.
        let latent_at_home = if rec.from_location == row { 1 } else { 0 };
        let new_count =
            self.counters[bank].record_swap(row, self.config.swap_threshold() + latent_at_home);
        self.stats.counter_accesses += 1;
        actions.push(MitigationAction::RowOperation {
            bank,
            kind: RowOpKind::CounterAccess,
            duration_ns: self.config.counter_access_latency_ns,
            activations: vec![self.counters[bank].counter_row_of(row)],
        });
        let detected = new_count >= self.detection_threshold();
        if detected {
            self.stats.detections += 1;
        }
        (actions, detected)
    }

    fn placeback_step(&mut self) -> Option<MitigationAction> {
        for bank in 0..self.placeback_queue.len() {
            while let Some(row) = self.placeback_queue[bank].pop_front() {
                self.placeback_pending -= 1;
                if let Some(rec) = self.rit.bank_mut(bank).unswap(row, self.epoch) {
                    self.stats.place_backs += 1;
                    return Some(MitigationAction::RowOperation {
                        bank,
                        kind: RowOpKind::PlaceBack,
                        duration_ns: self.config.placeback_latency_ns,
                        activations: vec![rec.from_location, rec.row],
                    });
                }
            }
        }
        None
    }

    pub(crate) fn tick_placeback(&mut self, now_ns: u64) -> Vec<MitigationAction> {
        let mut actions = Vec::new();
        while now_ns >= self.next_placeback_ns {
            match self.placeback_step() {
                Some(action) => actions.push(action),
                None => {
                    // Nothing left to place back in this window.
                    self.next_placeback_ns = now_ns + self.placeback_interval_ns;
                    break;
                }
            }
            self.next_placeback_ns += self.placeback_interval_ns;
        }
        actions
    }

    pub(crate) fn start_new_window(&mut self, now_ns: u64) {
        self.epoch += 1;
        for counters in &mut self.counters {
            counters.advance_epoch();
        }
        let mut total_stale = 0usize;
        for bank in 0..self.rit.banks() {
            let stale = self.rit.bank(bank).stale_rows(self.epoch);
            total_stale += stale.len();
            self.placeback_queue[bank] = stale.into();
        }
        self.placeback_pending = total_stale;
        // Spread the evictions evenly across the window (Section IV-D).
        self.placeback_interval_ns =
            self.config.refresh_window_ns / (total_stale.max(1) as u64 + 1);
        self.next_placeback_ns = now_ns + self.placeback_interval_ns;
    }

    /// Number of mappings waiting to be placed back.
    #[must_use]
    pub fn pending_place_backs(&self) -> usize {
        debug_assert_eq!(
            self.placeback_pending,
            self.placeback_queue.iter().map(VecDeque::len).sum::<usize>()
        );
        self.placeback_pending
    }
}

impl RowSwapDefense for SecureRowSwap {
    fn name(&self) -> &'static str {
        "srs"
    }

    fn kind(&self) -> DefenseKind {
        DefenseKind::Srs
    }

    fn translate(&self, bank: usize, row: u64) -> u64 {
        self.rit.bank(bank).translate(row)
    }

    fn occupant(&self, bank: usize, location: u64) -> u64 {
        self.rit.bank(bank).occupant(location)
    }

    fn on_mitigation_trigger(
        &mut self,
        bank: usize,
        row: u64,
        now_ns: u64,
    ) -> Vec<MitigationAction> {
        self.swap_only_trigger(bank, row, now_ns).0
    }

    fn on_tick(&mut self, now_ns: u64) -> Vec<MitigationAction> {
        self.tick_placeback(now_ns)
    }

    fn next_action_ns(&self) -> Option<u64> {
        // With an empty queue the deadline only reschedules itself relative
        // to the caller's clock, which is unobservable: the queue can only
        // refill at a window boundary, and that resets the deadline anyway.
        (self.pending_place_backs() > 0).then_some(self.next_placeback_ns)
    }

    fn on_new_window(&mut self, now_ns: u64) -> Vec<MitigationAction> {
        self.start_new_window(now_ns);
        Vec::new()
    }

    fn swap_threshold(&self) -> Option<u64> {
        Some(self.config.swap_threshold())
    }

    fn storage_report(&self) -> StorageReport {
        storage_for(DefenseKind::Srs, &self.config)
    }

    fn swaps_performed(&self) -> u64 {
        self.stats.swaps
    }

    fn live_swapped_rows(&self) -> u64 {
        (0..self.rit.banks()).map(|b| self.rit.bank(b).live_entries() as u64).sum()
    }

    fn saturation_events(&self) -> u64 {
        self.stats.skipped
    }

    fn clone_box(&self) -> Box<dyn RowSwapDefense + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srs() -> SecureRowSwap {
        SecureRowSwap::new(MitigationConfig::paper_default(4800, 6))
    }

    #[test]
    fn repeated_triggers_never_touch_the_home_location_again() {
        let mut d = srs();
        let home = 1000u64;
        // First trigger: the home location is read once (one latent ACT).
        let first = d.on_mitigation_trigger(0, home, 0);
        let home_acts_first: usize = first
            .iter()
            .filter_map(|a| match a {
                MitigationAction::RowOperation { kind: RowOpKind::Swap, activations, .. } => {
                    Some(activations.iter().filter(|&&r| r == home).count())
                }
                _ => None,
            })
            .sum();
        assert_eq!(home_acts_first, 1);

        // Every subsequent trigger swaps onward without ever activating the
        // home location — this is what defeats Juggernaut.
        for i in 1..50u64 {
            let actions = d.on_mitigation_trigger(0, home, i * 1_000_000);
            for a in &actions {
                if let MitigationAction::RowOperation {
                    kind: RowOpKind::Swap, activations, ..
                } = a
                {
                    assert!(
                        !activations.contains(&home),
                        "swap #{i} must not activate the aggressor's home"
                    );
                }
            }
        }
        assert_eq!(d.stats().swaps, 50);
    }

    #[test]
    fn counter_accumulates_and_detects_after_three_swaps() {
        let mut d = srs();
        let mut detected = false;
        for i in 0..3 {
            let (_, det) = d.swap_only_trigger(0, 7, i);
            detected = det;
        }
        // 3 swaps x (800 + latent) >= 3 x 800.
        assert!(detected, "third swap must cross the detection threshold");
        assert!(d.swap_count(0, 7) >= d.detection_threshold());
        assert_eq!(d.stats().counter_accesses, 3);
    }

    #[test]
    fn every_swap_emits_a_counter_access_on_a_counter_row() {
        let mut d = srs();
        let actions = d.on_mitigation_trigger(0, 42, 0);
        let counter_ops: Vec<_> = actions
            .iter()
            .filter(|a| {
                matches!(a, MitigationAction::RowOperation { kind: RowOpKind::CounterAccess, .. })
            })
            .collect();
        assert_eq!(counter_ops.len(), 1);
        if let MitigationAction::RowOperation { activations, .. } = counter_ops[0] {
            assert!(
                activations[0] >= d.config().rows_per_bank,
                "counter rows live outside the data rows"
            );
        }
    }

    #[test]
    fn place_back_drains_stale_mappings_over_the_next_window() {
        let mut d = srs();
        for i in 0..10 {
            d.on_mitigation_trigger(0, 100 + i, 0);
        }
        d.on_new_window(64_000_000);
        assert!(d.pending_place_backs() > 0);
        let mut place_backs = 0;
        let mut now = 64_000_000;
        while d.pending_place_backs() > 0 && now < 300_000_000 {
            now += 1_000_000;
            place_backs += d
                .on_tick(now)
                .iter()
                .filter(|a| {
                    matches!(a, MitigationAction::RowOperation { kind: RowOpKind::PlaceBack, .. })
                })
                .count();
        }
        assert!(place_backs > 0);
        assert_eq!(d.pending_place_backs(), 0);
        // All ten rows from the stale epoch have gone home.
        for i in 0..10 {
            assert_eq!(d.translate(0, 100 + i), 100 + i);
        }
    }

    #[test]
    fn new_window_resets_counters() {
        let mut d = srs();
        d.on_mitigation_trigger(0, 5, 0);
        assert!(d.swap_count(0, 5) > 0);
        d.on_new_window(64_000_000);
        assert_eq!(d.swap_count(0, 5), 0);
    }

    #[test]
    fn translation_stays_consistent_under_churn() {
        let mut d = srs();
        for i in 0..500u64 {
            d.on_mitigation_trigger((i % 8) as usize, (i * 37) % 2048, i * 10_000);
            if i % 100 == 99 {
                d.on_new_window(i * 10_000);
            }
        }
        for bank in 0..8 {
            assert!(d.rit.bank(bank).invariants_hold());
        }
    }

    #[test]
    fn rit_saturation_skips_the_swap_and_is_counted() {
        // Shrink the activation budget so the RIT floor capacity (8 live
        // mappings = 4 swapped pairs) is reachable with a handful of
        // triggers on distinct rows.
        let mut config = MitigationConfig::paper_default(4800, 6);
        config.act_max_per_window = 4;
        let mut d = SecureRowSwap::new(config);
        assert_eq!(d.saturation_events(), 0);
        for row in 0..8u64 {
            // Never panics; at capacity the trigger degrades to a no-op.
            let _ = d.on_mitigation_trigger(0, 100 + row, row * 1_000);
        }
        assert!(d.stats().skipped > 0, "a full RIT must skip, not panic");
        assert_eq!(d.saturation_events(), d.stats().skipped);
        assert_eq!(d.stats().swaps + d.stats().skipped, 8, "every trigger is accounted");
        assert!(d.rit.bank(0).invariants_hold());
        // Already-remapped rows may keep swapping even at capacity.
        let before = d.stats().swaps;
        d.on_mitigation_trigger(0, 100, 9_000);
        assert_eq!(d.stats().swaps, before + 1);
    }

    #[test]
    fn storage_includes_place_back_buffer_and_epoch_register() {
        let report = srs().storage_report();
        assert!(report.place_back_buffer_bits > 0);
        assert_eq!(report.epoch_register_bits, 19);
    }
}
