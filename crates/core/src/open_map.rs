//! A compact open-addressed `u32 → u32` map for sparse per-bank state.
//!
//! The RIT and the swap-tracking counters index by row number, but only
//! ever hold a few hundred live entries (bounded by the RIT capacity and
//! the distinct rows swapped in a run). Direct-indexed `rows_per_bank`-sized
//! arrays made every touched bank allocate and zero megabytes on its first
//! swap — measurably the single largest defense-side cost on the saturated
//! quickstart cells — while this table stays a few kilobytes, small enough
//! to live in L1 and to make bank snapshots cheap.

use serde::{Deserialize, Serialize};

/// Open-addressed map with Fibonacci hashing, linear probing and
/// backward-shift deletion (no tombstones). Keys are stored `+ 1` so a
/// zero slot means empty; the table keeps load factor at or below 1/2.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpenMap {
    /// `key + 1` per slot; 0 = empty. Length is a power of two (or zero
    /// before the first insert).
    keys: Vec<u32>,
    vals: Vec<u32>,
    len: usize,
}

impl OpenMap {
    /// An empty map; slots are allocated on the first insert.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The home slot of `key` in the current table.
    #[inline]
    fn bucket(&self, key: u32) -> usize {
        // Fibonacci hashing: take the high bits of the golden-ratio
        // product, which spread the near-consecutive row numbers banks
        // produce far better than the low bits would.
        let h = key.wrapping_add(1).wrapping_mul(0x9E37_79B9);
        let bits = self.keys.len().trailing_zeros();
        (h >> (32 - bits)) as usize & (self.keys.len() - 1)
    }

    /// The value stored under `key`, if any.
    #[inline]
    #[must_use]
    pub fn get(&self, key: u32) -> Option<u32> {
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut slot = self.bucket(key);
        loop {
            let k = self.keys[slot];
            if k == 0 {
                return None;
            }
            if k == key + 1 {
                return Some(self.vals[slot]);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Insert `key → val`, overwriting any existing value.
    pub fn insert(&mut self, key: u32, val: u32) {
        if self.len * 2 >= self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut slot = self.bucket(key);
        loop {
            let k = self.keys[slot];
            if k == 0 {
                self.keys[slot] = key + 1;
                self.vals[slot] = val;
                self.len += 1;
                return;
            }
            if k == key + 1 {
                self.vals[slot] = val;
                return;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove(&mut self, key: u32) -> Option<u32> {
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut slot = self.bucket(key);
        loop {
            let k = self.keys[slot];
            if k == 0 {
                return None;
            }
            if k == key + 1 {
                break;
            }
            slot = (slot + 1) & mask;
        }
        let val = self.vals[slot];
        // Backward-shift deletion: pull later cluster members over the hole
        // when their home slot lies at or before it, keeping probe chains
        // gap-free without tombstones.
        let mut hole = slot;
        let mut probe = (slot + 1) & mask;
        while self.keys[probe] != 0 {
            let home = self.bucket(self.keys[probe] - 1);
            if (probe.wrapping_sub(home) & mask) >= (probe.wrapping_sub(hole) & mask) {
                self.keys[hole] = self.keys[probe];
                self.vals[hole] = self.vals[probe];
                hole = probe;
            }
            probe = (probe + 1) & mask;
        }
        self.keys[hole] = 0;
        self.len -= 1;
        Some(val)
    }

    /// Drop every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.keys.fill(0);
        self.len = 0;
    }

    /// Double the table (16 slots initially) and rehash.
    fn grow(&mut self) {
        let new_slots = (self.keys.len() * 2).max(16);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_slots]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_slots]);
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != 0 {
                self.insert(k - 1, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut m = OpenMap::new();
        assert!(m.is_empty());
        m.insert(7, 100);
        m.insert(7, 200);
        assert_eq!(m.get(7), Some(200));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(8), None);
    }

    #[test]
    fn grows_past_initial_slots() {
        let mut m = OpenMap::new();
        for k in 0..1_000 {
            m.insert(k, k * 2);
        }
        assert_eq!(m.len(), 1_000);
        for k in 0..1_000 {
            assert_eq!(m.get(k), Some(k * 2));
        }
    }

    #[test]
    fn remove_with_backward_shift_keeps_chains_reachable() {
        let mut m = OpenMap::new();
        // Colliding-ish dense keys force clusters; removing from the middle
        // must keep every other key findable.
        for k in 0..64 {
            m.insert(k * 16, k);
        }
        for k in (0..64).step_by(2) {
            assert_eq!(m.remove(k * 16), Some(k));
        }
        assert_eq!(m.len(), 32);
        for k in 0..64 {
            let expected = if k % 2 == 0 { None } else { Some(k) };
            assert_eq!(m.get(k * 16), expected, "key {k}");
        }
        assert_eq!(m.remove(5), None);
    }

    #[test]
    fn clear_keeps_working() {
        let mut m = OpenMap::new();
        m.insert(1, 1);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(1), None);
        m.insert(1, 2);
        assert_eq!(m.get(1), Some(2));
    }
}
