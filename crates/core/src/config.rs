//! Configuration shared by all row-swap defenses.

use serde::{Deserialize, Serialize};
use srs_dram::DramConfig;

/// Configuration of a row-swap defense instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigationConfig {
    /// The Row Hammer threshold `TRH` being defended against.
    pub t_rh: u64,
    /// The swap rate `TRH / TS`; a swap fires every `TS = TRH / swap_rate`
    /// activations of a row.
    pub swap_rate: u64,
    /// Number of global banks in the system.
    pub banks: usize,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Maximum activations a bank can perform in one refresh window
    /// (`ACT_max`), which sizes the Row Indirection Table.
    pub act_max_per_window: u64,
    /// Length of a refresh window in nanoseconds (64 ms for DDR4).
    pub refresh_window_ns: u64,
    /// Latency of a swap operation, `tswap`.
    pub swap_latency_ns: u64,
    /// Latency of an unswap-swap operation, `treswap`.
    pub reswap_latency_ns: u64,
    /// Latency of one lazy place-back step.
    pub placeback_latency_ns: u64,
    /// Latency of a read-modify-write of a swap-tracking counter row.
    pub counter_access_latency_ns: u64,
    /// Deterministic seed for the random swap-partner selection.
    pub rng_seed: u64,
    /// Number of swaps of a single location within an epoch at which
    /// Scale-SRS declares an outlier and pins the row in the LLC.
    pub outlier_swap_count: u64,
}

impl MitigationConfig {
    /// Build a configuration for a given `TRH` and swap rate on top of a
    /// DRAM configuration (Table III by default).
    #[must_use]
    pub fn for_system(dram: &DramConfig, t_rh: u64, swap_rate: u64) -> Self {
        Self {
            t_rh,
            swap_rate: swap_rate.max(1),
            banks: dram.total_banks(),
            rows_per_bank: dram.rows_per_bank,
            act_max_per_window: dram.max_activations_per_window(),
            refresh_window_ns: dram.refresh_window_ns,
            swap_latency_ns: dram.swap_latency_ns(),
            reswap_latency_ns: dram.reswap_latency_ns(),
            placeback_latency_ns: dram.swap_latency_ns(),
            counter_access_latency_ns: dram.timing.t_rc + dram.timing.t_cas,
            rng_seed: 0x5c5c_5c5c,
            outlier_swap_count: 3,
        }
    }

    /// The paper's default configuration for a given `TRH` and swap rate.
    #[must_use]
    pub fn paper_default(t_rh: u64, swap_rate: u64) -> Self {
        Self::for_system(&DramConfig::default(), t_rh, swap_rate)
    }

    /// The swap threshold `TS = TRH / swap_rate`.
    #[must_use]
    pub fn swap_threshold(&self) -> u64 {
        (self.t_rh / self.swap_rate.max(1)).max(1)
    }

    /// Maximum number of swaps a single bank can trigger in one refresh
    /// window (`ACT_max / TS`), which bounds the number of live RIT entries.
    #[must_use]
    pub fn max_swaps_per_window(&self) -> u64 {
        self.act_max_per_window / self.swap_threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_thresholds() {
        let c = MitigationConfig::paper_default(4800, 6);
        assert_eq!(c.swap_threshold(), 800);
        assert_eq!(c.banks, 32);
        assert_eq!(c.rows_per_bank, 128 * 1024);
        // Roughly 1700 swaps per bank per window at TS = 800.
        assert!(c.max_swaps_per_window() > 1_500 && c.max_swaps_per_window() < 1_800);
    }

    #[test]
    fn scale_srs_uses_larger_ts() {
        let rrs = MitigationConfig::paper_default(1200, 6);
        let scale = MitigationConfig::paper_default(1200, 3);
        assert_eq!(rrs.swap_threshold(), 200);
        assert_eq!(scale.swap_threshold(), 400);
        assert!(scale.max_swaps_per_window() < rrs.max_swaps_per_window());
    }

    #[test]
    fn zero_swap_rate_is_clamped() {
        let c = MitigationConfig::paper_default(4800, 0);
        assert_eq!(c.swap_rate, 1);
        assert_eq!(c.swap_threshold(), 4800);
    }
}
