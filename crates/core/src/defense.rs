//! The defense abstraction: what a row-swap Row Hammer mitigation looks like
//! to the memory system.

use serde::{Deserialize, Serialize};

use crate::actions::MitigationAction;
use crate::storage::StorageReport;

/// Which defense to instantiate (used by experiment configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefenseKind {
    /// No Row Hammer mitigation at all (the paper's not-secure baseline).
    Baseline,
    /// Randomized Row-Swap (RRS), the prior state of the art.
    Rrs {
        /// Whether swapped pairs are unswapped immediately before a re-swap
        /// (the design point RRS ships with; turning it off reproduces the
        /// "No Unswap" curves of Figure 4).
        immediate_unswap: bool,
    },
    /// Secure Row-Swap: swap-only indirection, no unswap-swap latent
    /// activations, lazy place-back, swap-count attack detection.
    Srs,
    /// Scalable and Secure Row-Swap: SRS plus outlier detection and LLC
    /// pinning, enabling a swap rate of 3.
    ScaleSrs,
}

impl std::fmt::Display for DefenseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DefenseKind::Baseline => f.write_str("baseline"),
            DefenseKind::Rrs { immediate_unswap: true } => f.write_str("rrs"),
            DefenseKind::Rrs { immediate_unswap: false } => f.write_str("rrs-no-unswap"),
            DefenseKind::Srs => f.write_str("srs"),
            DefenseKind::ScaleSrs => f.write_str("scale-srs"),
        }
    }
}

impl DefenseKind {
    /// The swap rate (`TRH / TS`) the paper uses for this defense.
    ///
    /// RRS and SRS use a swap rate of 6; Scale-SRS can securely use 3; the
    /// baseline never swaps.
    #[must_use]
    pub fn default_swap_rate(&self) -> u64 {
        match self {
            DefenseKind::Baseline => 0,
            DefenseKind::Rrs { .. } | DefenseKind::Srs => 6,
            DefenseKind::ScaleSrs => 3,
        }
    }
}

/// A row-swap defense as seen by the memory controller and the simulator.
///
/// All row indices are *row addresses as issued by the system* ("logical"
/// rows); the defense owns the indirection that decides which DRAM chip
/// location ("physical" row) currently stores each logical row.
pub trait RowSwapDefense {
    /// A short, stable name for reports.
    fn name(&self) -> &'static str;

    /// The kind of this defense.
    fn kind(&self) -> DefenseKind;

    /// Where the data of logical `row` currently lives in bank `bank`.
    fn translate(&self, bank: usize, row: u64) -> u64;

    /// The inverse of [`RowSwapDefense::translate`]: which logical row's
    /// data currently lives at physical `location` in `bank`. For defenses
    /// without an indirection table the mapping is the identity.
    ///
    /// The fault-injection layer uses this at flip time: a disturbance
    /// damages a physical location, but the damage belongs to (and travels
    /// with) the logical row stored there.
    fn occupant(&self, _bank: usize, location: u64) -> u64 {
        location
    }

    /// Called when the aggressor tracker reports that logical `row` in
    /// `bank` crossed the swap threshold. Returns the mitigation actions
    /// (row movements, counter accesses, pin requests) the memory system
    /// must perform.
    fn on_mitigation_trigger(
        &mut self,
        bank: usize,
        row: u64,
        now_ns: u64,
    ) -> Vec<MitigationAction>;

    /// Called periodically (at least once per ~100 µs of simulated time) so
    /// the defense can schedule lazy work such as SRS place-back operations.
    fn on_tick(&mut self, now_ns: u64) -> Vec<MitigationAction>;

    /// The next time at which [`RowSwapDefense::on_tick`] has scheduled
    /// work to emit, or `None` if the defense is idle until the next
    /// mitigation trigger or window boundary.
    ///
    /// Event-driven simulators use this to skip straight to the defense's
    /// next deadline instead of polling `on_tick` every few nanoseconds; a
    /// defense with timed lazy work (SRS place-back) must report it here or
    /// a time-skipping caller may run the work late.
    fn next_action_ns(&self) -> Option<u64> {
        None
    }

    /// Called at every refresh-window (64 ms) boundary.
    fn on_new_window(&mut self, now_ns: u64) -> Vec<MitigationAction>;

    /// The swap threshold `TS` in activations, or `None` for the baseline.
    fn swap_threshold(&self) -> Option<u64>;

    /// Per-bank SRAM storage required by the defense's structures.
    fn storage_report(&self) -> StorageReport;

    /// Total number of swap operations performed so far (all banks).
    fn swaps_performed(&self) -> u64;

    /// Number of unswap-swap operations performed so far (all banks).
    ///
    /// Only RRS with immediate unswaps performs them; they are the source
    /// of the latent activations the Juggernaut attack harvests, so the
    /// security-metrics layer reports them per run. Defenses without
    /// unswap-swaps (the default) report zero.
    fn unswap_swaps_performed(&self) -> u64 {
        0
    }

    /// Number of logical rows currently living somewhere other than their
    /// home physical row, summed over all banks — a telemetry gauge (RIT
    /// pressure over time), not part of any mitigation decision. Defenses
    /// without an indirection table report zero.
    fn live_swapped_rows(&self) -> u64 {
        0
    }

    /// Number of mitigation requests this defense has had to decline
    /// because a capacity limit was reached (RIT live-list full, swap-pool
    /// exhausted) — the defense's *saturation contract*: at capacity it
    /// degrades to skipping the swap, counts the event here, and the run
    /// continues. Saturation is surfaced through telemetry and the
    /// `SecurityReport` so adversarial resource exhaustion is observable,
    /// never a panic or silent wraparound. Defenses without capacity
    /// limits report zero.
    fn saturation_events(&self) -> u64 {
        0
    }

    /// Deep-copy this defense behind a fresh box — the snapshot primitive
    /// the sharing-aware grid executor uses to fork a simulation (RIT
    /// contents, swap counters, place-back queues, RNG state and all).
    fn clone_box(&self) -> Box<dyn RowSwapDefense + Send>;
}

impl Clone for Box<dyn RowSwapDefense + Send> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display_and_swap_rates() {
        assert_eq!(DefenseKind::Baseline.to_string(), "baseline");
        assert_eq!(DefenseKind::Rrs { immediate_unswap: true }.to_string(), "rrs");
        assert_eq!(DefenseKind::Rrs { immediate_unswap: false }.to_string(), "rrs-no-unswap");
        assert_eq!(DefenseKind::ScaleSrs.to_string(), "scale-srs");
        assert_eq!(DefenseKind::Baseline.default_swap_rate(), 0);
        assert_eq!(DefenseKind::Srs.default_swap_rate(), 6);
        assert_eq!(DefenseKind::ScaleSrs.default_swap_rate(), 3);
    }
}
