//! Randomized Row-Swap (RRS), the prior state-of-the-art defense the paper
//! attacks and improves upon.
//!
//! RRS swaps an aggressor row with a randomly chosen row every `TS`
//! activations. If the same row keeps getting activated it is first
//! *unswapped* back to its original location and then swapped to a fresh
//! random partner — and each such unswap-swap issues extra ("latent")
//! activations at the aggressor's original chip location, which is exactly
//! what the Juggernaut attack exploits (Section II-F and III).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::actions::{MitigationAction, RowOpKind};
use crate::config::MitigationConfig;
use crate::defense::{DefenseKind, RowSwapDefense};
use crate::rit::{RitConfig, RowIndirectionTable};
use crate::storage::{storage_for, StorageReport};

/// Statistics kept by an RRS instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RrsStats {
    /// Initial swaps performed.
    pub swaps: u64,
    /// Unswap-swap operations performed.
    pub unswap_swaps: u64,
    /// Mitigation triggers that could not be served because the RIT was full.
    pub skipped: u64,
    /// Rows bulk-unswapped at window boundaries (no-unswap variant only).
    pub bulk_unswapped: u64,
}

/// The Randomized Row-Swap defense.
#[derive(Debug, Clone)]
pub struct RandomizedRowSwap {
    config: MitigationConfig,
    immediate_unswap: bool,
    rit: RowIndirectionTable,
    rng: StdRng,
    epoch: u64,
    stats: RrsStats,
}

impl RandomizedRowSwap {
    /// Create an RRS instance with immediate unswaps (the paper's default).
    #[must_use]
    pub fn new(config: MitigationConfig) -> Self {
        Self::with_unswap_policy(config, true)
    }

    /// Create an RRS instance, choosing whether re-swapped rows are first
    /// unswapped (Figure 4 compares both policies).
    #[must_use]
    pub fn with_unswap_policy(config: MitigationConfig, immediate_unswap: bool) -> Self {
        let rit_config = RitConfig::for_swaps(config.max_swaps_per_window(), config.rows_per_bank);
        Self {
            rit: RowIndirectionTable::new(rit_config, config.banks),
            rng: StdRng::seed_from_u64(config.rng_seed),
            epoch: 0,
            stats: RrsStats::default(),
            immediate_unswap,
            config,
        }
    }

    /// Per-instance statistics.
    #[must_use]
    pub fn stats(&self) -> &RrsStats {
        &self.stats
    }

    /// The defense configuration.
    #[must_use]
    pub fn config(&self) -> &MitigationConfig {
        &self.config
    }

    fn random_location(&mut self, avoid: u64) -> u64 {
        loop {
            let candidate = self.rng.random_range(0..self.config.rows_per_bank);
            if candidate != avoid {
                return candidate;
            }
        }
    }

    fn make_room(&mut self, bank: usize, now_ns: u64, actions: &mut Vec<MitigationAction>) {
        // RRS evicts (unswaps) tuples of the previous epoch to create space
        // for new ones.
        if self.rit.bank(bank).has_room() {
            return;
        }
        let stale = self.rit.bank(bank).stale_rows(self.epoch);
        for row in stale {
            if self.rit.bank(bank).has_room() {
                break;
            }
            if let Some(rec) = self.rit.bank_mut(bank).unswap(row, self.epoch) {
                actions.push(MitigationAction::RowOperation {
                    bank,
                    kind: RowOpKind::PlaceBack,
                    duration_ns: self.config.placeback_latency_ns,
                    activations: vec![rec.from_location, rec.row],
                });
            }
        }
        let _ = now_ns;
    }
}

impl RowSwapDefense for RandomizedRowSwap {
    fn name(&self) -> &'static str {
        if self.immediate_unswap {
            "rrs"
        } else {
            "rrs-no-unswap"
        }
    }

    fn kind(&self) -> DefenseKind {
        DefenseKind::Rrs { immediate_unswap: self.immediate_unswap }
    }

    fn translate(&self, bank: usize, row: u64) -> u64 {
        self.rit.bank(bank).translate(row)
    }

    fn occupant(&self, bank: usize, location: u64) -> u64 {
        self.rit.bank(bank).occupant(location)
    }

    fn on_mitigation_trigger(
        &mut self,
        bank: usize,
        row: u64,
        now_ns: u64,
    ) -> Vec<MitigationAction> {
        let mut actions = Vec::new();
        self.make_room(bank, now_ns, &mut actions);
        let already_swapped = self.rit.bank(bank).is_remapped(row);
        let current_location = self.rit.bank(bank).translate(row);
        let target = self.random_location(current_location);

        if already_swapped && self.immediate_unswap {
            // Unswap back home, then swap to a fresh random location. The
            // original chip location of `row` (its home) is activated twice:
            // once to write the row back and once to read it out again for
            // the new swap — the latent activations of Figure 3.
            let home = row;
            let unswap_rec = self.rit.bank_mut(bank).unswap(row, self.epoch);
            let swap_rec = self.rit.bank_mut(bank).swap_to(row, target, self.epoch);
            if unswap_rec.is_none() && swap_rec.is_none() {
                self.stats.skipped += 1;
                return actions;
            }
            let mut activations = Vec::new();
            if let Some(rec) = unswap_rec {
                activations.push(rec.from_location);
                activations.push(home);
            }
            if let Some(rec) = swap_rec {
                activations.push(home);
                activations.push(rec.to_location);
            }
            self.stats.unswap_swaps += 1;
            actions.push(MitigationAction::RowOperation {
                bank,
                kind: RowOpKind::UnswapSwap,
                duration_ns: self.config.reswap_latency_ns,
                activations,
            });
        } else {
            match self.rit.bank_mut(bank).swap_to(row, target, self.epoch) {
                Some(rec) => {
                    self.stats.swaps += 1;
                    actions.push(MitigationAction::RowOperation {
                        bank,
                        kind: RowOpKind::Swap,
                        duration_ns: self.config.swap_latency_ns,
                        activations: vec![rec.from_location, rec.to_location],
                    });
                }
                None => self.stats.skipped += 1,
            }
        }
        actions
    }

    fn on_tick(&mut self, _now_ns: u64) -> Vec<MitigationAction> {
        Vec::new()
    }

    fn on_new_window(&mut self, _now_ns: u64) -> Vec<MitigationAction> {
        self.epoch += 1;
        if self.immediate_unswap {
            return Vec::new();
        }
        // Without immediate unswaps every displaced row must be put back at
        // the end of the refresh interval, producing the latency spike the
        // paper describes (Section II-F, performance implication 2).
        let mut actions = Vec::new();
        for bank in 0..self.rit.banks() {
            let rows = self.rit.bank(bank).remapped_rows();
            for row in rows {
                if let Some(rec) = self.rit.bank_mut(bank).unswap(row, self.epoch) {
                    self.stats.bulk_unswapped += 1;
                    actions.push(MitigationAction::RowOperation {
                        bank,
                        kind: RowOpKind::BulkUnswap,
                        duration_ns: self.config.placeback_latency_ns,
                        activations: vec![rec.from_location, rec.row],
                    });
                }
            }
        }
        actions
    }

    fn swap_threshold(&self) -> Option<u64> {
        Some(self.config.swap_threshold())
    }

    fn storage_report(&self) -> StorageReport {
        storage_for(self.kind(), &self.config)
    }

    fn swaps_performed(&self) -> u64 {
        self.stats.swaps + self.stats.unswap_swaps
    }

    fn unswap_swaps_performed(&self) -> u64 {
        self.stats.unswap_swaps
    }

    fn live_swapped_rows(&self) -> u64 {
        (0..self.rit.banks()).map(|b| self.rit.bank(b).live_entries() as u64).sum()
    }

    fn saturation_events(&self) -> u64 {
        self.stats.skipped
    }

    fn clone_box(&self) -> Box<dyn RowSwapDefense + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rrs() -> RandomizedRowSwap {
        RandomizedRowSwap::new(MitigationConfig::paper_default(4800, 6))
    }

    #[test]
    fn first_trigger_swaps_the_row_away() {
        let mut d = rrs();
        let actions = d.on_mitigation_trigger(0, 1000, 0);
        assert_eq!(actions.len(), 1);
        assert_ne!(d.translate(0, 1000), 1000);
        assert_eq!(d.stats().swaps, 1);
        match &actions[0] {
            MitigationAction::RowOperation { kind, activations, .. } => {
                assert_eq!(*kind, RowOpKind::Swap);
                // One latent activation at the original location, one at the
                // random partner.
                assert!(activations.contains(&1000));
                assert_eq!(activations.len(), 2);
            }
            MitigationAction::PinRow { .. } => panic!("RRS never pins rows"),
        }
    }

    #[test]
    fn second_trigger_is_an_unswap_swap_with_two_latent_home_activations() {
        let mut d = rrs();
        d.on_mitigation_trigger(0, 1000, 0);
        let actions = d.on_mitigation_trigger(0, 1000, 1_000_000);
        assert_eq!(d.stats().unswap_swaps, 1);
        match &actions[0] {
            MitigationAction::RowOperation { kind, activations, duration_ns, .. } => {
                assert_eq!(*kind, RowOpKind::UnswapSwap);
                let home_acts = activations.iter().filter(|&&r| r == 1000).count();
                assert_eq!(home_acts, 2, "unswap-swap must hit the home location twice");
                assert_eq!(*duration_ns, d.config().reswap_latency_ns);
            }
            MitigationAction::PinRow { .. } => panic!("RRS never pins rows"),
        }
        // The row is again remapped somewhere away from home.
        assert_ne!(d.translate(0, 1000), 1000);
    }

    #[test]
    fn no_unswap_variant_accumulates_and_spikes_at_window_end() {
        let mut d =
            RandomizedRowSwap::with_unswap_policy(MitigationConfig::paper_default(4800, 6), false);
        for i in 0..5 {
            d.on_mitigation_trigger(0, 1000 + i, 0);
        }
        assert_eq!(d.stats().swaps, 5);
        let spike = d.on_new_window(64_000_000);
        assert!(spike.len() >= 5, "bulk unswap must touch every displaced row");
        assert!(spike.iter().all(|a| matches!(
            a,
            MitigationAction::RowOperation { kind: RowOpKind::BulkUnswap, .. }
        )));
        // Everything is home again.
        for i in 0..5 {
            assert_eq!(d.translate(0, 1000 + i), 1000 + i);
        }
    }

    #[test]
    fn translation_is_consistent_after_many_triggers() {
        let mut d = rrs();
        for i in 0..200u64 {
            d.on_mitigation_trigger((i % 4) as usize, i * 7 % 1024, i * 1000);
        }
        for bank in 0..4 {
            assert!(d.rit.bank(bank).invariants_hold());
        }
    }

    #[test]
    fn occupant_inverts_translate_under_churn() {
        let mut d = rrs();
        for i in 0..50u64 {
            d.on_mitigation_trigger(0, i * 13 % 512, i * 1000);
        }
        for row in 0..512u64 {
            let location = d.translate(0, row);
            assert_eq!(d.occupant(0, location), row, "occupant must invert translate");
        }
    }

    #[test]
    fn rit_saturation_skips_gracefully_and_is_counted() {
        // A tiny activation budget gives the RIT its floor capacity of 8
        // live mappings; with no stale epoch to evict, distinct-row
        // triggers beyond 4 swapped pairs must skip, not panic or wrap.
        let mut config = MitigationConfig::paper_default(4800, 6);
        config.act_max_per_window = 4;
        let mut d = RandomizedRowSwap::new(config);
        for row in 0..10u64 {
            let _ = d.on_mitigation_trigger(0, 100 + row, row * 1_000);
        }
        assert!(d.stats().skipped > 0);
        assert_eq!(d.saturation_events(), d.stats().skipped);
        assert!(d.rit.bank(0).invariants_hold());
    }

    #[test]
    fn swap_rate_6_reports_ts_800() {
        assert_eq!(rrs().swap_threshold(), Some(800));
    }

    #[test]
    fn deterministic_given_same_seed() {
        let mut a = rrs();
        let mut b = rrs();
        a.on_mitigation_trigger(0, 5, 0);
        b.on_mitigation_trigger(0, 5, 0);
        assert_eq!(a.translate(0, 5), b.translate(0, 5));
    }

    #[test]
    fn storage_report_is_nonzero() {
        assert!(rrs().storage_report().total_bits() > 0);
    }
}
