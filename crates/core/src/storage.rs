//! On-chip (SRAM) storage accounting, reproducing Table IV of the paper.

use serde::{Deserialize, Serialize};

use crate::config::MitigationConfig;
use crate::defense::DefenseKind;
use crate::rit::RitConfig;

/// SRAM storage required by one bank's worth of defense structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StorageReport {
    /// Row Indirection Table bits.
    pub rit_bits: u64,
    /// Swap-buffer bits (one row's worth of staging storage).
    pub swap_buffer_bits: u64,
    /// Place-back buffer bits (SRS and Scale-SRS only).
    pub place_back_buffer_bits: u64,
    /// Epoch-register bits (SRS and Scale-SRS only).
    pub epoch_register_bits: u64,
    /// Pin-buffer bits (Scale-SRS only; shared across banks but reported
    /// per bank for comparability with Table IV).
    pub pin_buffer_bits: u64,
}

impl StorageReport {
    /// Total bits per bank.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.rit_bits
            + self.swap_buffer_bits
            + self.place_back_buffer_bits
            + self.epoch_register_bits
            + self.pin_buffer_bits
    }

    /// Total kilobytes per bank.
    #[must_use]
    pub fn total_kib(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }
}

/// Reference design points copied from Table IV of the paper, in bytes per
/// bank, used to report paper-vs-model deltas in the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperStoragePoint {
    /// The Row Hammer threshold of the design point.
    pub t_rh: u64,
    /// RRS total storage per bank, in bytes.
    pub rrs_total_bytes: u64,
    /// Scale-SRS total storage per bank, in bytes.
    pub scale_srs_total_bytes: u64,
}

/// The three design points of Table IV.
pub const PAPER_STORAGE_POINTS: &[PaperStoragePoint] = &[
    PaperStoragePoint { t_rh: 4_800, rrs_total_bytes: 36 * 1024, scale_srs_total_bytes: 19_149 },
    PaperStoragePoint { t_rh: 2_400, rrs_total_bytes: 131 * 1024, scale_srs_total_bytes: 45_466 },
    PaperStoragePoint { t_rh: 1_200, rrs_total_bytes: 251 * 1024, scale_srs_total_bytes: 78_746 },
];

/// Compute the analytic per-bank storage of a defense at a design point.
///
/// The model uses first-order structure sizes: the RIT holds two epochs of
/// live mappings (sized from `ACT_max / TS`) as a CAT, the swap and
/// place-back buffers each hold one 8 KB DRAM row, the epoch register is 19
/// bits and the pin-buffer holds 66 entries of 35 bits. RRS over-provisions
/// its RIT more aggressively because the tuple-pair organisation must absorb
/// the worst-case unswap-swap churn; SRS's swap-only table tolerates a
/// higher load factor, which is where most of the paper's 3.3x storage
/// saving comes from (the rest comes from Scale-SRS's lower swap rate).
#[must_use]
pub fn storage_for(kind: DefenseKind, config: &MitigationConfig) -> StorageReport {
    let row_bytes: u64 = 8 * 1024;
    let swap_buffer_bits = row_bytes * 8 / 8; // 1 KB staging buffer, as in RRS
    match kind {
        DefenseKind::Baseline => StorageReport::default(),
        DefenseKind::Rrs { .. } => {
            let mut rit = RitConfig::for_swaps(config.max_swaps_per_window(), config.rows_per_bank);
            rit.overprovision = 3.0;
            StorageReport {
                rit_bits: rit.storage_bits_dual(),
                swap_buffer_bits,
                ..StorageReport::default()
            }
        }
        DefenseKind::Srs | DefenseKind::ScaleSrs => {
            let mut rit = RitConfig::for_swaps(config.max_swaps_per_window(), config.rows_per_bank);
            rit.overprovision = 1.5;
            let pin_buffer_bits = if kind == DefenseKind::ScaleSrs { 66 * 35 } else { 0 };
            StorageReport {
                rit_bits: rit.storage_bits_dual(),
                swap_buffer_bits,
                place_back_buffer_bits: row_bytes * 8,
                epoch_register_bits: 19,
                pin_buffer_bits,
            }
        }
    }
}

/// The storage ratio RRS / Scale-SRS at a given threshold, using each
/// defense's default swap rate (6 for RRS, 3 for Scale-SRS).
#[must_use]
pub fn rrs_to_scale_srs_ratio(t_rh: u64) -> f64 {
    let rrs_cfg = MitigationConfig::paper_default(t_rh, 6);
    let scale_cfg = MitigationConfig::paper_default(t_rh, 3);
    let rrs =
        storage_for(DefenseKind::Rrs { immediate_unswap: true }, &rrs_cfg).total_bits() as f64;
    let scale = storage_for(DefenseKind::ScaleSrs, &scale_cfg).total_bits() as f64;
    rrs / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_needs_no_storage() {
        let cfg = MitigationConfig::paper_default(4800, 6);
        assert_eq!(storage_for(DefenseKind::Baseline, &cfg).total_bits(), 0);
    }

    #[test]
    fn rrs_storage_grows_as_trh_drops() {
        let hi = storage_for(
            DefenseKind::Rrs { immediate_unswap: true },
            &MitigationConfig::paper_default(4800, 6),
        );
        let lo = storage_for(
            DefenseKind::Rrs { immediate_unswap: true },
            &MitigationConfig::paper_default(1200, 6),
        );
        assert!(lo.total_bits() > 3 * hi.total_bits());
    }

    #[test]
    fn scale_srs_uses_substantially_less_storage_than_rrs() {
        for &t_rh in &[4800u64, 2400, 1200] {
            let ratio = rrs_to_scale_srs_ratio(t_rh);
            assert!(ratio > 2.0, "ratio at TRH {t_rh} = {ratio}");
        }
        // The paper's headline number: 3.3x at TRH = 1200 (within ~40%).
        let r1200 = rrs_to_scale_srs_ratio(1200);
        assert!(r1200 > 2.3 && r1200 < 4.5, "ratio = {r1200}");
    }

    #[test]
    fn srs_has_place_back_and_epoch_register() {
        let cfg = MitigationConfig::paper_default(2400, 6);
        let s = storage_for(DefenseKind::Srs, &cfg);
        assert_eq!(s.epoch_register_bits, 19);
        assert_eq!(s.place_back_buffer_bits, 8 * 1024 * 8);
        assert_eq!(s.pin_buffer_bits, 0);
        let scale = storage_for(DefenseKind::ScaleSrs, &MitigationConfig::paper_default(2400, 3));
        assert_eq!(scale.pin_buffer_bits, 66 * 35);
    }

    #[test]
    fn rrs_total_within_2x_of_paper_points() {
        for point in PAPER_STORAGE_POINTS {
            let cfg = MitigationConfig::paper_default(point.t_rh, 6);
            let model =
                storage_for(DefenseKind::Rrs { immediate_unswap: true }, &cfg).total_bits() / 8;
            let paper = point.rrs_total_bytes;
            let ratio = model as f64 / paper as f64;
            assert!(
                ratio > 0.3 && ratio < 3.0,
                "TRH {}: model {model} vs paper {paper}",
                point.t_rh
            );
        }
    }

    #[test]
    fn report_total_kib() {
        let r = StorageReport { rit_bits: 8 * 1024 * 8, ..StorageReport::default() };
        assert!((r.total_kib() - 8.0).abs() < 1e-9);
    }
}
