//! Actions a defense asks the memory system to perform.

use serde::{Deserialize, Serialize};

/// The kind of row-movement operation, mirroring the paper's terminology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOpKind {
    /// An initial swap of two rows (RRS, SRS, Scale-SRS).
    Swap,
    /// An unswap of an existing pair immediately followed by a swap with a
    /// fresh partner (RRS only — the source of Juggernaut's latent
    /// activations).
    UnswapSwap,
    /// A lazy place-back of a stale mapping (SRS, Scale-SRS).
    PlaceBack,
    /// A read-modify-write of a per-row swap-tracking counter row.
    CounterAccess,
    /// The bulk unswap of every remaining mapping at the end of a refresh
    /// window (the "No Unswap" RRS variant of Figure 4).
    BulkUnswap,
}

impl std::fmt::Display for RowOpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RowOpKind::Swap => "swap",
            RowOpKind::UnswapSwap => "unswap-swap",
            RowOpKind::PlaceBack => "place-back",
            RowOpKind::CounterAccess => "counter-access",
            RowOpKind::BulkUnswap => "bulk-unswap",
        };
        f.write_str(s)
    }
}

/// One action requested by a defense.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MitigationAction {
    /// Occupy `bank` for `duration_ns` performing a row movement, activating
    /// the listed physical rows (the *latent activations* of the paper).
    RowOperation {
        /// Global bank index.
        bank: usize,
        /// The kind of operation (for statistics).
        kind: RowOpKind,
        /// Bank-occupancy time of the operation.
        duration_ns: u64,
        /// Physical chip rows activated while performing it.
        activations: Vec<u64>,
    },
    /// Pin the DRAM row currently holding logical `row` of `bank` into the
    /// LLC for the remainder of the refresh window (Scale-SRS outliers).
    PinRow {
        /// Global bank index.
        bank: usize,
        /// Logical row to pin (the simulator converts it to a physical
        /// address through the defense's own translation).
        row: u64,
    },
}

impl MitigationAction {
    /// The bank this action applies to.
    #[must_use]
    pub fn bank(&self) -> usize {
        match self {
            MitigationAction::RowOperation { bank, .. } | MitigationAction::PinRow { bank, .. } => {
                *bank
            }
        }
    }

    /// Total latent activations carried by this action.
    #[must_use]
    pub fn activation_count(&self) -> usize {
        match self {
            MitigationAction::RowOperation { activations, .. } => activations.len(),
            MitigationAction::PinRow { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_op_kind_display() {
        assert_eq!(RowOpKind::UnswapSwap.to_string(), "unswap-swap");
        assert_eq!(RowOpKind::BulkUnswap.to_string(), "bulk-unswap");
    }

    #[test]
    fn action_accessors() {
        let op = MitigationAction::RowOperation {
            bank: 3,
            kind: RowOpKind::Swap,
            duration_ns: 2_700,
            activations: vec![1, 2],
        };
        assert_eq!(op.bank(), 3);
        assert_eq!(op.activation_count(), 2);
        let pin = MitigationAction::PinRow { bank: 1, row: 9 };
        assert_eq!(pin.bank(), 1);
        assert_eq!(pin.activation_count(), 0);
    }
}
