//! Shared helpers for the per-figure/per-table benchmark harness.
//!
//! Each `[[bench]]` target of this crate regenerates one table or figure of
//! the paper and prints it as an ASCII table. By default the performance
//! figures run in *quick mode* (scaled-down instruction counts, a
//! representative subset of workloads, a shortened refresh window); set
//! `SRS_BENCH_FULL=1` to sweep every workload at full length — roughly the
//! cost the paper quotes for its own artifact (hours of CPU time).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use srs_core::DefenseKind;
use srs_sim::spec::Preset;
use srs_sim::Experiment;
use srs_workloads::{all_workloads, NamedWorkload};

/// Whether the harness should run the full (slow) configuration.
#[must_use]
pub fn full_mode() -> bool {
    std::env::var("SRS_BENCH_FULL")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}

/// Number of worker threads for simulation sweeps (the experiment engine's
/// default budget; one policy, defined in `srs_sim`).
#[must_use]
pub fn worker_threads() -> usize {
    srs_sim::default_threads()
}

/// The workloads a performance figure sweeps: every workload in full mode, a
/// representative subset (the hot-row workloads the paper details plus a few
/// streaming/light ones) in quick mode.
#[must_use]
pub fn figure_workloads() -> Vec<NamedWorkload> {
    let all = all_workloads();
    if full_mode() {
        return all;
    }
    let keep = [
        "gups",
        "gcc",
        "hmmer",
        "bzip2",
        "zeusmp",
        "astar",
        "sphinx3",
        "xz_17",
        "libquantum",
        "mcf",
        "blackscholes",
        "mix2",
    ];
    all.into_iter().filter(|w| keep.contains(&w.name)).collect()
}

/// The configuration preset a performance figure uses: the paper's
/// full-size Table III configuration in full mode, the scaled-down quick
/// configuration otherwise.
#[must_use]
pub fn figure_preset() -> Preset {
    if full_mode() {
        Preset::Paper
    } else {
        Preset::ScaledForSpeed
    }
}

/// The scenario grid a performance figure sweeps: the given defenses and
/// thresholds over [`figure_workloads`], with the mode-appropriate
/// [`figure_preset`] (the engine's default worker-thread budget applies).
/// Figures add further axes (e.g. a tracker) with the [`Experiment`]
/// builder methods.
#[must_use]
pub fn figure_experiment(defenses: Vec<DefenseKind>, thresholds: Vec<u64>) -> Experiment {
    Experiment::new()
        .with_defenses(defenses)
        .with_thresholds(thresholds)
        .with_workloads(figure_workloads())
        .with_preset(figure_preset())
}

/// Print a table with a title, header row and data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Format a time-to-break in days the way the figures label it.
#[must_use]
pub fn format_days(days: f64) -> String {
    if !days.is_finite() {
        ">10^6".to_string()
    } else if days >= 365.0 {
        format!("{:.1}y", days / 365.0)
    } else if days >= 1.0 {
        format!("{days:.1}d")
    } else if days * 24.0 >= 1.0 {
        format!("{:.1}h", days * 24.0)
    } else {
        format!("{:.1}s", days * 86_400.0)
    }
}

/// Format a normalized-performance value.
#[must_use]
pub fn format_norm(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_workloads_are_a_subset() {
        let quick = figure_workloads();
        assert!(!quick.is_empty());
        assert!(quick.len() <= all_workloads().len());
    }

    #[test]
    fn format_days_covers_ranges() {
        assert_eq!(format_days(f64::INFINITY), ">10^6");
        assert!(format_days(730.0).ends_with('y'));
        assert!(format_days(5.0).ends_with('d'));
        assert!(format_days(0.2).ends_with('h'));
        assert!(format_days(0.0001).ends_with('s'));
    }

    #[test]
    fn figure_preset_defaults_to_quick_mode() {
        // CI and tests run without SRS_BENCH_FULL, so the grid builder must
        // produce the scaled-down configuration there.
        if !full_mode() {
            assert_eq!(figure_preset(), Preset::ScaledForSpeed);
        }
        let experiment = figure_experiment(vec![DefenseKind::Srs], vec![1200]);
        assert_eq!(experiment.scenarios()[0].t_rh, 1200);
    }
}
