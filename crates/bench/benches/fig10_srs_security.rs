//! Figure 10 — time-to-break SRS and RRS with Juggernaut as the swap rate
//! varies from 6 to 10.

use srs_attack::juggernaut;
use srs_bench::{format_days, print_table};

fn main() {
    let mut rows = Vec::new();
    for swap_rate in 6u64..=10 {
        let mut row = vec![swap_rate.to_string()];
        for &t_rh in &[4800u64, 2400, 1200] {
            row.push(format_days(juggernaut::time_to_break_srs_days(t_rh, swap_rate)));
        }
        for &t_rh in &[4800u64, 2400, 1200] {
            row.push(format_days(juggernaut::time_to_break_rrs_days(t_rh, swap_rate)));
        }
        rows.push(row);
    }
    print_table(
        "Figure 10: time-to-break with Juggernaut vs swap rate",
        &["rate", "SRS@4800", "SRS@2400", "SRS@1200", "RRS@4800", "RRS@2400", "RRS@1200"],
        &rows,
    );
}
