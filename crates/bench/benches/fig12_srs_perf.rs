//! Figure 12 — normalized performance of SRS and RRS across TRH values.

use srs_bench::{figure_experiment, format_norm, print_table};
use srs_core::DefenseKind;
use srs_sim::{results_for, suite_averages};

fn main() {
    let defenses =
        [("RRS", DefenseKind::Rrs { immediate_unswap: true }), ("SRS", DefenseKind::Srs)];
    let thresholds = [1200u64, 2400, 4800];
    let results =
        figure_experiment(defenses.iter().map(|&(_, kind)| kind).collect(), thresholds.to_vec())
            .run();

    let mut rows = Vec::new();
    for (label, kind) in defenses {
        for &t_rh in &thresholds {
            let group = results_for(&results, kind, t_rh);
            for suite in suite_averages(group.iter().copied()) {
                rows.push(vec![
                    format!("{label} (TRH={t_rh})"),
                    suite.label,
                    format_norm(suite.mean),
                ]);
            }
        }
    }
    print_table(
        "Figure 12: normalized performance of SRS vs RRS",
        &["configuration", "suite", "normalized IPC"],
        &rows,
    );
}
