//! Figure 12 — normalized performance of SRS and RRS across TRH values.

use srs_bench::{figure_config, figure_workloads, format_norm, print_table, worker_threads};
use srs_core::DefenseKind;
use srs_sim::{run_parallel, suite_averages};

fn main() {
    let workloads = figure_workloads();
    let mut rows = Vec::new();
    for (label, kind) in [("RRS", DefenseKind::Rrs { immediate_unswap: true }), ("SRS", DefenseKind::Srs)] {
        for &t_rh in &[1200u64, 2400, 4800] {
            let config = figure_config(kind, t_rh);
            let jobs = workloads.iter().map(|w| (config.clone(), w.clone())).collect();
            let results = run_parallel(jobs, worker_threads());
            for (suite, value) in suite_averages(&results) {
                rows.push(vec![format!("{label} (TRH={t_rh})"), suite, format_norm(value)]);
            }
        }
    }
    print_table(
        "Figure 12: normalized performance of SRS vs RRS",
        &["configuration", "suite", "normalized IPC"],
        &rows,
    );
}
