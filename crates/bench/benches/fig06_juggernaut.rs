//! Figure 6 — time-to-break RRS with the Juggernaut attack as the number of
//! attack rounds varies (analytical model and Monte-Carlo validation).

use srs_attack::{juggernaut, montecarlo, AttackParams};
use srs_bench::{format_days, print_table};

fn main() {
    let rounds: Vec<u64> = (0..=1400).step_by(100).collect();
    let mut rows = Vec::new();
    for &n in &rounds {
        let mut row = vec![n.to_string()];
        for &t_rh in &[4800u64, 2400, 1200] {
            let params = AttackParams::rrs(t_rh, 6);
            match juggernaut::evaluate(&params, n) {
                Some(o) => row.push(format_days(o.expected_time_days())),
                None => row.push("-".to_string()),
            }
        }
        // Monte-Carlo validation point for TRH = 4800.
        let params = AttackParams::rrs(4800, 6);
        match montecarlo::simulate(&params, n, 2_000_000, 0xF16) {
            Some(mc) if mc.expected_time_seconds.is_finite() => {
                row.push(format_days(mc.expected_time_days()));
            }
            _ => row.push("-".to_string()),
        }
        rows.push(row);
    }
    print_table(
        "Figure 6: time-to-break RRS with Juggernaut vs attack rounds (swap rate 6)",
        &["rounds", "TRH=4800", "TRH=2400", "TRH=1200", "MC @4800"],
        &rows,
    );
    let best = juggernaut::best_attack(&AttackParams::rrs(4800, 6)).expect("feasible");
    println!(
        "\nBest attack at TRH=4800: {} rounds, {} required guesses, time {}",
        best.attack_rounds,
        best.required_guesses,
        format_days(best.expected_time_days())
    );
}
