//! Figure 4 — RRS with and without immediate unswap operations, normalized
//! to the unprotected baseline.

use srs_bench::{figure_experiment, format_norm, print_table};
use srs_core::DefenseKind;
use srs_sim::{mean_normalized, results_for, suite_averages};

fn main() {
    let thresholds = [1200u64, 2400, 4800];
    let variants = [("Unswap", true), ("No Unswap", false)]
        .map(|(label, immediate)| (label, DefenseKind::Rrs { immediate_unswap: immediate }));

    // One scenario grid covering both RRS variants and every threshold.
    let results =
        figure_experiment(variants.iter().map(|&(_, kind)| kind).collect(), thresholds.to_vec())
            .run();

    let mut rows = Vec::new();
    for (label, kind) in variants {
        for &t_rh in &thresholds {
            let group = results_for(&results, kind, t_rh);
            let mut row = vec![
                format!("{label} (TRH={t_rh})"),
                format_norm(mean_normalized(group.iter().copied())),
            ];
            row.push(
                suite_averages(group.iter().copied())
                    .iter()
                    .map(|suite| format!("{}={}", suite.label, format_norm(suite.mean)))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
            rows.push(row);
        }
    }
    print_table(
        "Figure 4: RRS with vs without immediate unswap (normalized performance)",
        &["configuration", "ALL mean", "per-suite"],
        &rows,
    );
}
