//! Figure 4 — RRS with and without immediate unswap operations, normalized
//! to the unprotected baseline.

use srs_bench::{figure_config, figure_workloads, format_norm, print_table, worker_threads};
use srs_core::DefenseKind;
use srs_sim::{mean_normalized, run_parallel, suite_averages};

fn main() {
    let workloads = figure_workloads();
    let mut rows = Vec::new();
    for (label, immediate) in [("Unswap", true), ("No Unswap", false)] {
        for &t_rh in &[1200u64, 2400, 4800] {
            let config = figure_config(DefenseKind::Rrs { immediate_unswap: immediate }, t_rh);
            let jobs = workloads.iter().map(|w| (config.clone(), w.clone())).collect();
            let results = run_parallel(jobs, worker_threads());
            let mut row = vec![format!("{label} (TRH={t_rh})"), format_norm(mean_normalized(&results))];
            let per_suite = suite_averages(&results);
            row.push(
                per_suite
                    .iter()
                    .map(|(s, v)| format!("{s}={}", format_norm(*v)))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
            rows.push(row);
        }
    }
    print_table(
        "Figure 4: RRS with vs without immediate unswap (normalized performance)",
        &["configuration", "ALL mean", "per-suite"],
        &rows,
    );
}
