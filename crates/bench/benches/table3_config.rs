//! Table III — the baseline system configuration.

use srs_bench::print_table;
use srs_core::DefenseKind;
use srs_sim::SystemConfig;

fn main() {
    let c = SystemConfig::paper_default(DefenseKind::ScaleSrs, 1200);
    let rows = vec![
        vec!["Cores (OoO)".to_string(), c.cores.to_string()],
        vec!["Processor clock speed".to_string(), format!("{} GHz", c.core.clock_ghz)],
        vec!["ROB size".to_string(), c.core.rob_size.to_string()],
        vec![
            "Fetch and Retire width".to_string(),
            format!("{} / {}", c.core.fetch_width, c.core.retire_width),
        ],
        vec!["Memory size".to_string(), format!("{} GB DDR4", c.dram.capacity_bytes() >> 30)],
        vec![
            "tRCD-tRP-tCAS".to_string(),
            format!("{}-{}-{} ns", c.dram.timing.t_rcd, c.dram.timing.t_rp, c.dram.timing.t_cas),
        ],
        vec![
            "tRC, tRFC, tREFI".to_string(),
            format!(
                "{} ns, {} ns, {} ns",
                c.dram.timing.t_rc, c.dram.timing.t_rfc, c.dram.timing.t_refi
            ),
        ],
        vec![
            "Banks x Ranks x Channels".to_string(),
            format!(
                "{} x {} x {}",
                c.dram.banks_per_rank, c.dram.ranks_per_channel, c.dram.channels
            ),
        ],
        vec!["Rows per bank".to_string(), format!("{}K", c.dram.rows_per_bank / 1024)],
        vec!["Size of row".to_string(), format!("{} KB", c.dram.row_size_bytes / 1024)],
        vec![
            "ACT_max per 64ms window".to_string(),
            format!("{:.2} M", c.dram.max_activations_per_window() as f64 / 1e6),
        ],
    ];
    print_table("Table III: baseline system configuration", &["parameter", "value"], &rows);
}
