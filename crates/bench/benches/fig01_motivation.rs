//! Figure 1 — motivation: (a) time-to-break RRS with the untargeted
//! (birthday) attack as the swap rate and TRH vary; (b) normalized
//! performance of RRS as TRH varies.

use srs_attack::birthday;
use srs_bench::{figure_experiment, format_days, format_norm, print_table};
use srs_core::DefenseKind;
use srs_sim::{mean_normalized, results_for};

fn main() {
    // (a) Security: untargeted attack time-to-break.
    let mut rows = Vec::new();
    for &t_rh in &[1200u64, 2400, 4800, 9600] {
        let mut row = vec![format!("TRH={t_rh}")];
        for swap_rate in [4u64, 5, 6, 7, 8] {
            row.push(format_days(birthday::time_to_break_days(t_rh, swap_rate)));
        }
        rows.push(row);
    }
    print_table(
        "Figure 1a: time-to-break RRS, untargeted (birthday) attack",
        &["", "rate=4", "rate=5", "rate=6", "rate=7", "rate=8"],
        &rows,
    );

    // (b) Performance: RRS normalized to the unprotected baseline, one
    // scenario grid over the threshold axis.
    let rrs = DefenseKind::Rrs { immediate_unswap: true };
    let thresholds = [4800u64, 2400, 1200];
    let results = figure_experiment(vec![rrs], thresholds.to_vec()).run();
    let rows: Vec<Vec<String>> = thresholds
        .iter()
        .map(|&t_rh| {
            let group = results_for(&results, rrs, t_rh);
            vec![format!("TRH={t_rh}"), format_norm(mean_normalized(group.iter().copied()))]
        })
        .collect();
    print_table("Figure 1b: RRS normalized performance vs TRH", &["", "normalized IPC"], &rows);
}
