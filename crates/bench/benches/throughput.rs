//! Simulator throughput benchmark: simulated-ns/sec and scenario-grid
//! runs/sec on a fixed quickstart-scale grid, for both the event-driven
//! time-skip engine (`System::run`) and the fixed-step reference engine
//! (`System::run_fixed_step`) — plus the sharing-aware grid executor
//! against the from-scratch plan on a defense-comparison grid.
//!
//! Every perf-focused change should leave a data point here: the harness
//! writes `BENCH_throughput.json` at the workspace root with the measured
//! numbers, so the repository carries a recorded trajectory of engine
//! throughput over time (see `EXPERIMENTS.md`).
//!
//! Modes:
//! * default — 5 measurement repetitions of the full grid (best-of taken);
//! * `SRS_BENCH_SMOKE=1` — one repetition of a reduced grid, for CI. The
//!   smoke run also *asserts* that the shared plan is no slower than the
//!   unshared plan (with slack for CI timing noise), so a regression in
//!   the prefix-sharing executor fails the pipeline rather than silently
//!   landing.

use std::time::Instant;

use srs_core::DefenseKind;
use srs_sim::json::{obj, Json, ToJson};
use srs_sim::spec::ConfigPatch;
use srs_sim::telemetry::TelemetryConfig;
use srs_sim::{AttributionReport, Experiment, SimResult, System, SystemConfig};
use srs_workloads::{
    all_workloads, hammer_trace, AccessPattern, NamedWorkload, Trace, WorkloadSpec,
};

/// One cell of the throughput grid.
struct Cell {
    label: String,
    config: SystemConfig,
    trace: Trace,
}

/// The quickstart-scale configuration (mirrors `examples/quickstart.rs`).
fn quick_config(defense: DefenseKind, t_rh: u64) -> SystemConfig {
    let mut config = SystemConfig::scaled_for_speed(defense, t_rh);
    config.cores = 2;
    config.core.target_instructions = 20_000;
    config.trace_records_per_core = 6_000;
    config.dram.refresh_window_ns = 1_000_000;
    config.max_sim_ns = 10_000_000;
    config
}

/// A compute-bound, low-MPKI workload (the paper's evaluation spans
/// benchmarks like povray/gamess with MPKI well below 1, which the
/// synthetic suite's profiles do not reach). These runs have long stretches
/// with no memory event — the time-skip engine's best case.
fn compute_trace(records: usize) -> Trace {
    WorkloadSpec {
        name: "compute".to_string(),
        footprint_bytes: 1 << 26,
        base_addr: 0,
        read_fraction: 0.8,
        mean_gap: 2_000,
        pattern: AccessPattern::HotRows { hot_rows: 8, hot_fraction: 0.3 },
    }
    .generate(records, 17)
}

/// The fixed quickstart grid: the quickstart example's defense x workload
/// cells, plus the attack scenario the quickstart demonstrates, plus a
/// compute-bound cell — benign-dense, hammering and compute-bound runs in
/// one sweep.
fn grid(smoke: bool) -> Vec<Cell> {
    let workloads: Vec<_> =
        all_workloads().into_iter().filter(|w| w.name == "gups" || w.name == "gcc").collect();
    let defenses: &[DefenseKind] = if smoke {
        &[DefenseKind::ScaleSrs]
    } else {
        &[DefenseKind::Baseline, DefenseKind::Srs, DefenseKind::ScaleSrs]
    };
    let mut cells = Vec::new();
    for &defense in defenses {
        for w in &workloads {
            let config = quick_config(defense, 1200);
            let trace = w.spec().generate(config.trace_records_per_core, config.seed);
            cells.push(Cell { label: format!("{defense}/{}", w.name), config, trace });
        }
        let config = quick_config(defense, 1200);
        cells.push(Cell {
            label: format!("{defense}/hammer"),
            trace: hammer_trace("hammer", 0x10000, config.trace_records_per_core, 1 << 26, 5)
                .into_trace(),
            config,
        });
        let mut config = quick_config(defense, 1200);
        // Low MPKI means few records carry many instructions; scale the
        // instruction target so the cell simulates a comparable time span.
        config.core.target_instructions = 2_000_000;
        let records = config.trace_records_per_core;
        cells.push(Cell {
            label: format!("{defense}/compute"),
            trace: compute_trace(records),
            config,
        });
    }
    cells
}

/// The memory-saturated subset of the quickstart grid: the dense and
/// hammering cells, without the compute-bound ones. These runs spend
/// nearly every tick inside the controller's scheduling sweep and
/// activation pipeline, which makes them the cells the batched drain, the
/// chunked scans and the arena queues actually move — the compute cells
/// mostly measure the time-skip engine instead.
fn saturated_grid(smoke: bool) -> Vec<Cell> {
    grid(smoke).into_iter().filter(|cell| !cell.label.ends_with("/compute")).collect()
}

struct Measurement {
    wall_seconds: f64,
    simulated_ns: u64,
    runs: usize,
}

/// Run the whole grid once under one engine.
fn run_grid(cells: Vec<Cell>, event_driven: bool, verbose: bool) -> Measurement {
    let runs = cells.len();
    let mut simulated_ns = 0u64;
    let start = Instant::now();
    for cell in cells {
        let cell_start = Instant::now();
        let label = cell.label;
        let system = System::new(cell.config, cell.trace);
        let result: SimResult = if event_driven { system.run() } else { system.run_fixed_step() };
        if verbose {
            println!(
                "    {label:<22} {:>8.2} ms wall, {:>9} sim-ns",
                cell_start.elapsed().as_secs_f64() * 1e3,
                result.elapsed_ns
            );
        }
        simulated_ns += result.elapsed_ns;
    }
    Measurement { wall_seconds: start.elapsed().as_secs_f64(), simulated_ns, runs }
}

fn best_of(reps: usize, event_driven: bool, smoke: bool, verbose: bool) -> Measurement {
    let mut best: Option<Measurement> = None;
    for rep in 0..reps {
        let m = run_grid(grid(smoke), event_driven, verbose && rep == 0);
        if best.as_ref().is_none_or(|b| m.wall_seconds < b.wall_seconds) {
            best = Some(m);
        }
    }
    best.expect("at least one repetition")
}

/// Run the saturated grid once under the event-driven engine, with the
/// activation drain in either mode.
fn run_saturated(cells: Vec<Cell>, per_event: bool) -> Measurement {
    let runs = cells.len();
    let mut simulated_ns = 0u64;
    let start = Instant::now();
    for cell in cells {
        let mut system = System::new(cell.config, cell.trace);
        system.set_per_event_drain(per_event);
        simulated_ns += system.run().elapsed_ns;
    }
    Measurement { wall_seconds: start.elapsed().as_secs_f64(), simulated_ns, runs }
}

fn best_of_saturated(reps: usize, smoke: bool, per_event: bool) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..reps {
        let m = run_saturated(saturated_grid(smoke), per_event);
        if best.as_ref().is_none_or(|b| m.wall_seconds < b.wall_seconds) {
            best = Some(m);
        }
    }
    best.expect("at least one repetition")
}

/// Run the saturated grid once with the telemetry recorder armed or
/// disarmed. Every headline section of this bench already measures the
/// disarmed path (it is the default), so the interesting ratio here is
/// what *arming* costs; the disarmed hooks themselves are one predicted
/// branch each.
fn run_telemetry(cells: Vec<Cell>, armed: bool) -> Measurement {
    let runs = cells.len();
    let mut simulated_ns = 0u64;
    let start = Instant::now();
    for mut cell in cells {
        if armed {
            cell.config.telemetry = TelemetryConfig::armed();
        }
        simulated_ns += System::new(cell.config, cell.trace).run().elapsed_ns;
    }
    Measurement { wall_seconds: start.elapsed().as_secs_f64(), simulated_ns, runs }
}

fn best_of_telemetry(reps: usize, smoke: bool, armed: bool) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..reps {
        let m = run_telemetry(saturated_grid(smoke), armed);
        if best.as_ref().is_none_or(|b| m.wall_seconds < b.wall_seconds) {
            best = Some(m);
        }
    }
    best.expect("at least one repetition")
}

/// One attributed pass over the saturated grid: per-cell subsystem
/// breakdowns plus their aggregate. A single pass suffices — the
/// attribution is a *share* of wall time, far more stable across
/// repetitions than the wall time itself, and the stopwatch overhead makes
/// these wall numbers non-comparable with the headline measurements
/// anyway.
fn run_attribution(smoke: bool) -> (AttributionReport, Vec<(String, AttributionReport)>) {
    let mut total = AttributionReport::default();
    let mut cells_out = Vec::new();
    for cell in saturated_grid(smoke) {
        let (_, report) = System::new(cell.config, cell.trace).run_attributed();
        total = total.merged(&report);
        cells_out.push((cell.label, report));
    }
    (total, cells_out)
}

/// One measurement as a JSON object, emitted through the `srs_sim::json`
/// codec (the same codec `srs-cli` and the schema-validation tests parse
/// the report back with).
fn json_entry(m: &Measurement) -> Json {
    obj(vec![
        ("wall_seconds", m.wall_seconds.into()),
        ("simulated_ns", m.simulated_ns.into()),
        ("grid_runs", m.runs.into()),
        ("simulated_ns_per_sec", (m.simulated_ns as f64 / m.wall_seconds).into()),
        ("grid_runs_per_sec", (m.runs as f64 / m.wall_seconds).into()),
    ])
}

/// The defense-comparison grid the sharing-aware executor is measured on:
/// every defense (baseline included) × TRH × a spread of workload
/// behaviours, at quickstart scale. All the mitigation axes collapse into
/// branches of one trunk per workload, which is exactly the shape of the
/// paper's Figures 12/14/15 sweeps.
fn defense_comparison_grid(smoke: bool) -> Experiment {
    let patch = ConfigPatch {
        cores: Some(2),
        target_instructions: Some(20_000),
        trace_records_per_core: Some(6_000),
        refresh_window_ns: Some(1_000_000),
        max_sim_ns: Some(10_000_000),
        ..ConfigPatch::default()
    };
    // Hot-row-heavy cells diverge early (mitigations fire fast), light
    // cells late or never — the mix keeps the measurement honest about
    // both ends of the sharing spectrum.
    let names: &[&str] = if smoke {
        &["gcc", "povray"]
    } else {
        &["gups", "gcc", "hmmer", "mcf", "libquantum", "povray", "gamess", "namd"]
    };
    let workloads: Vec<NamedWorkload> =
        all_workloads().into_iter().filter(|w| names.contains(&w.name)).collect();
    assert_eq!(workloads.len(), names.len(), "defense-comparison workloads must all exist");
    Experiment::new()
        .with_defenses(vec![
            DefenseKind::Baseline,
            DefenseKind::Rrs { immediate_unswap: true },
            DefenseKind::Srs,
            DefenseKind::ScaleSrs,
        ])
        .with_thresholds(if smoke { vec![1200] } else { vec![1200, 4800] })
        .with_workloads(workloads)
        .with_patch(patch)
}

/// Run the defense-comparison grid under one execution plan.
fn run_shared_grid(experiment: &Experiment, share: bool) -> Measurement {
    let experiment = experiment.clone().with_share_prefixes(share);
    let start = Instant::now();
    let results = experiment.run();
    Measurement {
        wall_seconds: start.elapsed().as_secs_f64(),
        simulated_ns: results.iter().map(|r| r.result.detail.elapsed_ns).sum(),
        runs: results.len(),
    }
}

fn best_of_grid(reps: usize, experiment: &Experiment, share: bool) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..reps {
        let m = run_shared_grid(experiment, share);
        if best.as_ref().is_none_or(|b| m.wall_seconds < b.wall_seconds) {
            best = Some(m);
        }
    }
    best.expect("at least one repetition")
}

/// The pre-optimization simulator of this repository (fixed 25 ns stepping
/// over every bank and core, per-core trace clone-and-rewrite, SipHash maps
/// on the per-activation paths, `VecDeque::remove` FR-FCFS), measured once
/// on this same grid when the event-driven engine landed. Protocol in
/// EXPERIMENTS.md; comparable to live numbers only on similar hardware.
const RECORDED_SEED_WALL_SECONDS: f64 = 0.0861;
const RECORDED_SEED_SIMULATED_NS: u64 = 7_262_975;
const RECORDED_SEED_RUNS: usize = 12;

/// The PR5-era simulator (per-event virtual dispatch through the tick
/// observer, `VecDeque`-of-`Option` bank queues with tombstone compaction,
/// scalar Misra-Gries eviction scans, gather-based RIT stale walks),
/// measured once on the full saturated grid on this machine before the
/// batched/SIMD/arena work landed. Same protocol as the seed baseline:
/// best-of-7, comparable to live numbers only on similar hardware.
const RECORDED_PR5_SATURATED_WALL_SECONDS: f64 = 0.04305;
const RECORDED_PR5_SATURATED_SIMULATED_NS: u64 = 6_733_100;
const RECORDED_PR5_SATURATED_RUNS: usize = 9;

fn main() {
    let smoke = std::env::var("SRS_BENCH_SMOKE")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    let verbose = std::env::var("SRS_BENCH_VERBOSE")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    let reps = if smoke { 1 } else { 5 };

    // The batched activation drain vs the per-event fallback on the
    // memory-saturated cells, where the drain is actually hot. This
    // section runs FIRST: its wall time is compared against a recorded
    // baseline that was measured as a standalone (cold-machine) run, and
    // on the thermally-limited reference container a section placed after
    // tens of seconds of sustained benching measures ~10% slower than the
    // identical code measured cold — a bias that would be read as a code
    // regression. Within-process ratios (the engine and sharing sections
    // below) are unaffected by where they run.
    println!(
        "== Activation drain (saturated quickstart cells{}) ==",
        if smoke { ", smoke" } else { "" }
    );
    let drain_reps = if smoke { 2 } else { 7 };
    let per_event = best_of_saturated(drain_reps, smoke, true);
    let batched = best_of_saturated(drain_reps, smoke, false);
    let drain_speedup = per_event.wall_seconds / batched.wall_seconds;
    for (name, m) in [("per_event", &per_event), ("batched", &batched)] {
        println!(
            "{name:>13}: {:>8.1} ms wall | {:>6.1} Msim-ns/s ({} cells)",
            m.wall_seconds * 1e3,
            m.simulated_ns as f64 / m.wall_seconds / 1e6,
            m.runs,
        );
    }
    println!("{:>13}: {drain_speedup:.2}x batched vs per-event drain", "speedup");
    let vs_pr5 = RECORDED_PR5_SATURATED_WALL_SECONDS / batched.wall_seconds;
    if !smoke {
        println!(
            "{:>13}: {vs_pr5:.2}x vs the recorded PR5 saturated baseline ({:.1} ms)",
            "vs PR5",
            RECORDED_PR5_SATURATED_WALL_SECONDS * 1e3
        );
    }
    // Batched must never lose: it does strictly fewer virtual calls for
    // the same work. Hard gate in smoke (CI) with noise slack; full mode
    // records and flags, as with the sharing gate above.
    if smoke {
        assert!(
            drain_speedup > 0.87,
            "batched activation drain ran slower than per-event delivery \
             ({drain_speedup:.2}x); the batch pipeline has regressed"
        );
    } else if drain_speedup <= 1.0 {
        eprintln!(
            "warning: batched drain measured no faster than per-event \
             ({drain_speedup:.2}x) — noisy machine, or a drain regression"
        );
    }

    println!(
        "\n== Simulator throughput (fixed quickstart grid{}) ==",
        if smoke { ", smoke" } else { "" }
    );
    let fixed = best_of(reps, false, smoke, verbose);
    let event = best_of(reps, true, smoke, verbose);
    let speedup = fixed.wall_seconds / event.wall_seconds;
    let vs_seed = RECORDED_SEED_WALL_SECONDS / event.wall_seconds;
    for (name, m) in [("fixed_step", &fixed), ("event_driven", &event)] {
        println!(
            "{name:>13}: {:>8.1} ms wall | {:>6.1} Msim-ns/s | {:>6.1} runs/s",
            m.wall_seconds * 1e3,
            m.simulated_ns as f64 / m.wall_seconds / 1e6,
            m.runs as f64 / m.wall_seconds,
        );
    }
    println!("{:>13}: {speedup:.2}x event-driven vs fixed-step (same code base)", "speedup");
    if !smoke {
        println!(
            "{:>13}: {vs_seed:.2}x event-driven vs the recorded pre-PR baseline ({:.1} ms)",
            "vs baseline",
            RECORDED_SEED_WALL_SECONDS * 1e3
        );
    }

    // The sharing-aware grid executor vs the from-scratch plan on the
    // defense-comparison grid (identical results, different execution).
    println!(
        "\n== Sharing-aware grid executor (defense-comparison grid{}) ==",
        if smoke { ", smoke" } else { "" }
    );
    let experiment = defense_comparison_grid(smoke);
    let grid_reps = if smoke { 2 } else { 3 };
    let unshared = best_of_grid(grid_reps, &experiment, false);
    let shared = best_of_grid(grid_reps, &experiment, true);
    let share_speedup = unshared.wall_seconds / shared.wall_seconds;
    for (name, m) in [("unshared", &unshared), ("shared", &shared)] {
        println!(
            "{name:>13}: {:>8.1} ms wall | {:>6.1} grid-runs/s ({} cells)",
            m.wall_seconds * 1e3,
            m.runs as f64 / m.wall_seconds,
            m.runs,
        );
    }
    println!("{:>13}: {share_speedup:.2}x shared vs unshared grid-runs/sec", "speedup");
    // The shared plan must never lose: it runs strictly less simulation.
    // The hard gate is smoke (CI) only, with slack for scheduler noise on
    // loaded runners; full mode records whatever it measured (losing a
    // minutes-long measurement to a noisy laptop would be worse) and just
    // flags the anomaly.
    if smoke {
        assert!(
            share_speedup > 0.87,
            "sharing-aware execution ran slower than the from-scratch plan \
             ({share_speedup:.2}x); the prefix planner has regressed"
        );
    } else if share_speedup <= 1.0 {
        eprintln!(
            "warning: shared plan measured no faster than unshared \
             ({share_speedup:.2}x) — noisy machine, or a planner regression"
        );
    }

    // Telemetry recorder: the disarmed path is what every section above
    // already measured (disarmed is the default); this A/B isolates what
    // arming the recorder costs on the saturated cells. The results
    // themselves are bit-identical either way (test- and CI-enforced) —
    // only wall time may move.
    println!(
        "\n== Telemetry recorder (saturated quickstart cells{}) ==",
        if smoke { ", smoke" } else { "" }
    );
    let telemetry_reps = if smoke { 2 } else { 5 };
    let disarmed = best_of_telemetry(telemetry_reps, smoke, false);
    let armed = best_of_telemetry(telemetry_reps, smoke, true);
    let armed_overhead = armed.wall_seconds / disarmed.wall_seconds;
    for (name, m) in [("disarmed", &disarmed), ("armed", &armed)] {
        println!(
            "{name:>13}: {:>8.1} ms wall | {:>6.1} Msim-ns/s ({} cells)",
            m.wall_seconds * 1e3,
            m.simulated_ns as f64 / m.wall_seconds / 1e6,
            m.runs,
        );
    }
    println!("{:>13}: {armed_overhead:.2}x armed vs disarmed wall time", "overhead");
    // Arming buys ring-buffer pushes and a sampling cadence; it must stay
    // a modest tax, not a second simulation. Hard gate in smoke (CI) with
    // generous noise slack; full mode records and flags.
    if smoke {
        assert!(
            armed_overhead < 1.5,
            "armed telemetry costs {armed_overhead:.2}x on the saturated cells; \
             the recorder hot path has regressed"
        );
    } else if armed_overhead > 1.25 {
        eprintln!(
            "warning: armed telemetry measured {armed_overhead:.2}x — noisy \
             machine, or a recorder regression"
        );
    }

    // Where the remaining wall time goes, subsystem by subsystem (separate
    // instrumented pass; see EXPERIMENTS.md for the methodology).
    println!("\n== Wall-time attribution (saturated cells, instrumented pass) ==");
    let (attribution_total, attribution_cells) = run_attribution(smoke);
    let share = |ns: u64| 100.0 * ns as f64 / attribution_total.wall_ns.max(1) as f64;
    println!(
        "{:>13}: {:>8.1} ms wall | schedule {:.0}% tracker {:.0}% defense {:.0}% \
         rit {:.0}% security {:.0}% other {:.0}%",
        "aggregate",
        attribution_total.wall_ns as f64 / 1e6,
        share(attribution_total.controller_schedule_ns),
        share(attribution_total.tracker_ns),
        share(attribution_total.defense_ns),
        share(attribution_total.rit_ns),
        share(attribution_total.security_ns),
        share(attribution_total.other_ns),
    );

    let seed = Measurement {
        wall_seconds: RECORDED_SEED_WALL_SECONDS,
        simulated_ns: RECORDED_SEED_SIMULATED_NS,
        runs: RECORDED_SEED_RUNS,
    };
    // The recorded baseline covers the *full* grid; comparing it against a
    // smoke run's reduced grid would inflate the ratio by the grid-size
    // difference, so the baseline section only appears in full mode.
    let mut doc: Vec<(&str, Json)> = Vec::new();
    if !smoke {
        doc.push(("recorded_pre_pr_baseline", json_entry(&seed)));
        doc.push(("event_vs_recorded_baseline_speedup", vs_seed.into()));
    }
    doc.push(("fixed_step", json_entry(&fixed)));
    doc.push(("event_driven", json_entry(&event)));
    doc.push(("event_vs_fixed_speedup", speedup.into()));
    doc.push((
        "shared_grid",
        obj(vec![
            ("unshared", json_entry(&unshared)),
            ("shared", json_entry(&shared)),
            ("shared_vs_unshared_speedup", share_speedup.into()),
        ]),
    ));
    let mut saturated: Vec<(&str, Json)> = Vec::new();
    if !smoke {
        saturated.push((
            "recorded_pr5_baseline",
            json_entry(&Measurement {
                wall_seconds: RECORDED_PR5_SATURATED_WALL_SECONDS,
                simulated_ns: RECORDED_PR5_SATURATED_SIMULATED_NS,
                runs: RECORDED_PR5_SATURATED_RUNS,
            }),
        ));
        saturated.push(("batched_vs_recorded_pr5_speedup", vs_pr5.into()));
    }
    saturated.push(("per_event", json_entry(&per_event)));
    saturated.push(("batched", json_entry(&batched)));
    saturated.push(("batched_vs_per_event_speedup", drain_speedup.into()));
    doc.push(("saturated", obj(saturated)));
    doc.push((
        "telemetry",
        obj(vec![
            ("disarmed", json_entry(&disarmed)),
            ("armed", json_entry(&armed)),
            ("armed_vs_disarmed_overhead", armed_overhead.into()),
        ]),
    ));
    doc.push((
        "attribution",
        obj(vec![
            ("total", attribution_total.to_json()),
            (
                "cells",
                Json::Array(
                    attribution_cells
                        .iter()
                        .map(|(label, report)| {
                            obj(vec![
                                ("label", label.as_str().into()),
                                ("breakdown", report.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    ));
    doc.push(("smoke", smoke.into()));
    let json = obj(doc).to_pretty();
    // Cargo runs bench binaries from the package directory; anchor the
    // artifact at the workspace root regardless.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote BENCH_throughput.json"),
        Err(e) => eprintln!("\ncould not write BENCH_throughput.json: {e}"),
    }
}
