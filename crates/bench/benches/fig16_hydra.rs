//! Figure 16 — the same TRH sensitivity as Figure 15, but with the Hydra
//! tracker (whose memory-resident counters add DRAM traffic).

use srs_bench::{figure_config, figure_workloads, format_norm, print_table, worker_threads};
use srs_core::DefenseKind;
use srs_sim::{mean_normalized, run_parallel};
use srs_trackers::TrackerKind;

fn main() {
    let workloads = figure_workloads();
    let mut rows = Vec::new();
    for &t_rh in &[512u64, 1200, 2400, 4800] {
        let mut row = vec![format!("TRH={t_rh}")];
        for kind in [DefenseKind::Rrs { immediate_unswap: true }, DefenseKind::ScaleSrs] {
            let mut config = figure_config(kind, t_rh);
            config.tracker = TrackerKind::Hydra;
            let jobs = workloads.iter().map(|w| (config.clone(), w.clone())).collect();
            let results = run_parallel(jobs, worker_threads());
            row.push(format_norm(mean_normalized(&results)));
        }
        rows.push(row);
    }
    print_table(
        "Figure 16: normalized performance vs TRH (Hydra tracker)",
        &["threshold", "RRS", "Scale-SRS"],
        &rows,
    );
}
