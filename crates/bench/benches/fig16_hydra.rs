//! Figure 16 — the same TRH sensitivity as Figure 15, but with the Hydra
//! tracker (whose memory-resident counters add DRAM traffic).

use srs_bench::{figure_experiment, format_norm, print_table};
use srs_core::DefenseKind;
use srs_sim::{mean_normalized, results_for};
use srs_trackers::TrackerKind;

fn main() {
    let defenses = [DefenseKind::Rrs { immediate_unswap: true }, DefenseKind::ScaleSrs];
    let thresholds = [512u64, 1200, 2400, 4800];
    let results = figure_experiment(defenses.to_vec(), thresholds.to_vec())
        .with_trackers(vec![TrackerKind::Hydra])
        .run();

    let rows: Vec<Vec<String>> = thresholds
        .iter()
        .map(|&t_rh| {
            let mut row = vec![format!("TRH={t_rh}")];
            for kind in defenses {
                row.push(format_norm(mean_normalized(results_for(&results, kind, t_rh))));
            }
            row
        })
        .collect();
    print_table(
        "Figure 16: normalized performance vs TRH (Hydra tracker)",
        &["threshold", "RRS", "Scale-SRS"],
        &rows,
    );
}
