//! Criterion micro-benchmarks of the core data structures: RIT operations,
//! tracker updates, the analytical attack model and the cache model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use srs_attack::{juggernaut, AttackParams};
use srs_cache::{CacheConfig, SetAssociativeCache};
use srs_core::rit::BankRit;
use srs_core::{MitigationConfig, RowSwapDefense, ScaleSrs, SecureRowSwap};
use srs_trackers::{AggressorTracker, MisraGriesConfig, MisraGriesTracker};

fn bench_rit(c: &mut Criterion) {
    c.bench_function("rit_swap_and_translate", |b| {
        let mut rit = BankRit::new(8192, 65_536);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            rit.swap_to(black_box(i % 2048), black_box((i * 37) % 65_536), 0);
            black_box(rit.translate(i % 2048));
        });
    });
}

fn bench_tracker(c: &mut Criterion) {
    c.bench_function("misra_gries_record_activation", |b| {
        let mut tracker =
            MisraGriesTracker::new(MisraGriesConfig::for_threshold(800, 1_360_000, 16));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(tracker.record_activation((i % 16) as usize, i % 4096));
        });
    });
}

fn bench_defense_trigger(c: &mut Criterion) {
    c.bench_function("srs_mitigation_trigger", |b| {
        let mut defense = SecureRowSwap::new(MitigationConfig::paper_default(1200, 6));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(defense.on_mitigation_trigger((i % 32) as usize, i % 8192, i));
        });
    });
    c.bench_function("scale_srs_mitigation_trigger", |b| {
        let mut defense = ScaleSrs::new(MitigationConfig::paper_default(1200, 3));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(defense.on_mitigation_trigger((i % 32) as usize, i % 8192, i));
        });
    });
}

fn bench_attack_model(c: &mut Criterion) {
    c.bench_function("juggernaut_best_attack", |b| {
        let params = AttackParams::rrs(4800, 6);
        b.iter(|| black_box(juggernaut::best_attack(black_box(&params))));
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("llc_access", |b| {
        let mut llc = SetAssociativeCache::new(CacheConfig::llc_8mb());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(llc.access(black_box(i * 64 % (1 << 24)), i.is_multiple_of(4)));
        });
    });
}

criterion_group!(
    benches,
    bench_rit,
    bench_tracker,
    bench_defense_trigger,
    bench_attack_model,
    bench_cache
);
criterion_main!(benches);
