//! Criterion micro-benchmarks of the core data structures: RIT operations,
//! tracker updates, the analytical attack model and the cache model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use srs_attack::{juggernaut, AttackParams};
use srs_cache::{CacheConfig, SetAssociativeCache};
use srs_core::rit::BankRit;
use srs_core::{MitigationConfig, RowSwapDefense, ScaleSrs, SecureRowSwap};
use srs_trackers::{AggressorTracker, MisraGriesConfig, MisraGriesTracker};

fn bench_rit(c: &mut Criterion) {
    c.bench_function("rit_swap_and_translate", |b| {
        let mut rit = BankRit::new(8192, 65_536);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            rit.swap_to(black_box(i % 2048), black_box((i * 37) % 65_536), 0);
            black_box(rit.translate(i % 2048));
        });
    });
}

fn bench_tracker(c: &mut Criterion) {
    c.bench_function("misra_gries_record_activation", |b| {
        let mut tracker =
            MisraGriesTracker::new(MisraGriesConfig::for_threshold(800, 1_360_000, 16));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(tracker.record_activation((i % 16) as usize, i % 4096));
        });
    });
    // The Misra-Gries worst case: a full table fed a low-locality stream, so
    // every activation misses and the eviction path — the chunked
    // first-at-or-below scan over the dense counter array, or the min-bound
    // skip when it cannot succeed — runs on every call.
    c.bench_function("misra_gries_eviction_scan_pressure", |b| {
        let mut tracker = MisraGriesTracker::new(MisraGriesConfig {
            swap_threshold: u64::MAX,
            entries_per_bank: 512,
            banks: 1,
            row_tag_bits: 17,
            counter_bits: 13,
        });
        for row in 0..512 {
            tracker.record_activation(0, row);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(tracker.record_activation(0, 1_000 + (i * 131) % 16_384));
        });
    });
}

fn bench_rit_live_walk(c: &mut Criterion) {
    // The defense polls `stale_rows` on a timer for every bank, almost
    // always finding nothing: the walk over the dense live-epoch mirror is
    // the hot shape, priced here with a half-full table whose entries are
    // all current (no stale hits, pure scan).
    c.bench_function("rit_stale_live_walk", |b| {
        let mut rit = BankRit::new(4096, 65_536);
        for i in 0..2048u64 {
            rit.swap_to(i, 32_768 + i, 7);
        }
        b.iter(|| black_box(rit.stale_rows(black_box(6))));
    });
}

fn bench_defense_trigger(c: &mut Criterion) {
    c.bench_function("srs_mitigation_trigger", |b| {
        let mut defense = SecureRowSwap::new(MitigationConfig::paper_default(1200, 6));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(defense.on_mitigation_trigger((i % 32) as usize, i % 8192, i));
        });
    });
    c.bench_function("scale_srs_mitigation_trigger", |b| {
        let mut defense = ScaleSrs::new(MitigationConfig::paper_default(1200, 3));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(defense.on_mitigation_trigger((i % 32) as usize, i % 8192, i));
        });
    });
}

fn bench_attack_model(c: &mut Criterion) {
    c.bench_function("juggernaut_best_attack", |b| {
        let params = AttackParams::rrs(4800, 6);
        b.iter(|| black_box(juggernaut::best_attack(black_box(&params))));
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("llc_access", |b| {
        let mut llc = SetAssociativeCache::new(CacheConfig::llc_8mb());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(llc.access(black_box(i * 64 % (1 << 24)), i.is_multiple_of(4)));
        });
    });
}

criterion_group!(
    benches,
    bench_rit,
    bench_tracker,
    bench_rit_live_walk,
    bench_defense_trigger,
    bench_attack_model,
    bench_cache
);
criterion_main!(benches);
