//! Figure 13 — time until M simultaneous outlier rows appear within a bank,
//! as the swap rate varies (TRH = 4800).

use srs_attack::outlier;
use srs_bench::{format_days, print_table};

fn main() {
    let mut rows = Vec::new();
    for swap_rate in 3u64..=6 {
        let mut row = vec![swap_rate.to_string()];
        for m in 1..=4usize {
            row.push(format_days(outlier::days_until_outliers(4800, swap_rate, m)));
        }
        rows.push(row);
    }
    print_table(
        "Figure 13: time-to-appear of outlier rows (TRH = 4800)",
        &["swap rate", "1 outlier", "2 outliers", "3 outliers", "4 outliers"],
        &rows,
    );
}
