//! Table IV — SRAM storage overhead per bank for RRS and Scale-SRS,
//! including the compact-RIT ablation from the Discussion section.

use srs_bench::print_table;
use srs_core::rit::RitConfig;
use srs_core::{storage_for, DefenseKind, MitigationConfig, StorageReport};

fn kib(bits: u64) -> String {
    format!("{:.1} KB", bits as f64 / 8.0 / 1024.0)
}

fn report_rows(
    label: &str,
    t_rh: u64,
    kind: DefenseKind,
    swap_rate: u64,
    rows: &mut Vec<Vec<String>>,
) {
    let config = MitigationConfig::paper_default(t_rh, swap_rate);
    let s: StorageReport = storage_for(kind, &config);
    rows.push(vec![
        format!("TRH={t_rh} {label}"),
        kib(s.rit_bits),
        kib(s.swap_buffer_bits),
        kib(s.place_back_buffer_bits),
        format!("{} bits", s.epoch_register_bits),
        format!("{} B", s.pin_buffer_bits / 8),
        kib(s.total_bits()),
    ]);
}

fn main() {
    let mut rows = Vec::new();
    for &t_rh in &[4800u64, 2400, 1200] {
        report_rows("RRS", t_rh, DefenseKind::Rrs { immediate_unswap: true }, 6, &mut rows);
        report_rows("Scale-SRS", t_rh, DefenseKind::ScaleSrs, 3, &mut rows);
    }
    print_table(
        "Table IV: storage overhead per bank",
        &["design point", "RIT", "swap buf", "place-back", "epoch reg", "pin buf", "total"],
        &rows,
    );
    for &t_rh in &[4800u64, 2400, 1200] {
        println!(
            "TRH={t_rh}: RRS / Scale-SRS storage ratio = {:.2}x",
            srs_core::rrs_to_scale_srs_ratio(t_rh)
        );
    }
    // Discussion §4 ablation: the compact (direction-bit) RIT variant.
    let config = MitigationConfig::paper_default(1200, 3);
    let rit = RitConfig::for_swaps(config.max_swaps_per_window(), config.rows_per_bank);
    println!(
        "\nCompact-RIT ablation at TRH=1200: dual {} vs compact {} per bank",
        kib(rit.storage_bits_dual()),
        kib(rit.storage_bits_compact())
    );
    println!("\nPaper reference totals (bytes/bank): 4800: 36K vs 18.7K; 2400: 131K vs 44.4K; 1200: 251K vs 76.9K");
}
