//! Table I — demonstrated Row Hammer thresholds across DRAM generations.

use srs_bench::print_table;
use srs_core::thresholds::{threshold_reduction_factor, ROW_HAMMER_THRESHOLDS};

fn main() {
    let rows: Vec<Vec<String>> = ROW_HAMMER_THRESHOLDS
        .iter()
        .map(|e| vec![e.generation.to_string(), format!("{}K", e.t_rh / 1000), e.year.to_string()])
        .collect();
    print_table("Table I: Row Hammer thresholds 2014-2021", &["generation", "TRH", "year"], &rows);
    println!("\nReduction factor oldest->newest: {:.1}x", threshold_reduction_factor());
}
