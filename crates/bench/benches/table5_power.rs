//! Table V — extra power consumption per channel (TRH = 4800).

use srs_bench::{figure_config, figure_workloads, print_table, worker_threads};
use srs_core::{power_for, DefenseKind, MitigationConfig, SramPowerModel};
use srs_sim::run_parallel;

fn main() {
    let model = SramPowerModel::default();
    let workloads = figure_workloads();
    let mut rows = Vec::new();
    for (label, kind, swap_rate) in [
        ("RRS", DefenseKind::Rrs { immediate_unswap: true }, 6u64),
        ("Scale-SRS", DefenseKind::ScaleSrs, 3),
    ] {
        // Measure the swap-traffic fraction from simulation.
        let config = figure_config(kind, 4800);
        let jobs = workloads.iter().map(|w| (config.clone(), w.clone())).collect();
        let results = run_parallel(jobs, worker_threads());
        let swap_fraction = results
            .iter()
            .map(|r| r.detail.swap_traffic_fraction())
            .sum::<f64>()
            / results.len().max(1) as f64;
        let mitigation = MitigationConfig::paper_default(4800, swap_rate);
        let power = power_for(kind, &mitigation, &model, 2.0e7, swap_fraction);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}%", power.dram_overhead_fraction * 100.0),
            format!("{:.0} mW", power.sram_mw),
        ]);
    }
    print_table(
        "Table V: extra power per channel (TRH = 4800)",
        &["design", "DRAM overhead (row-swap)", "SRAM power"],
        &rows,
    );
    println!("\nPaper reference: RRS 0.5% / 903 mW; Scale-SRS 0.2% / 703 mW");
}
