//! Table V — extra power consumption per channel (TRH = 4800).

use srs_bench::{figure_experiment, print_table};
use srs_core::{power_for, DefenseKind, MitigationConfig, SramPowerModel};
use srs_sim::results_for;

fn main() {
    let model = SramPowerModel::default();
    let designs = [
        ("RRS", DefenseKind::Rrs { immediate_unswap: true }, 6u64),
        ("Scale-SRS", DefenseKind::ScaleSrs, 3),
    ];
    // Measure the swap-traffic fraction from one scenario grid over both
    // designs.
    let results =
        figure_experiment(designs.iter().map(|&(_, kind, _)| kind).collect(), vec![4800]).run();

    let mut rows = Vec::new();
    for (label, kind, swap_rate) in designs {
        let group = results_for(&results, kind, 4800);
        let swap_fraction = group.iter().map(|r| r.detail.swap_traffic_fraction()).sum::<f64>()
            / group.len().max(1) as f64;
        let mitigation = MitigationConfig::paper_default(4800, swap_rate);
        let power = power_for(kind, &mitigation, &model, 2.0e7, swap_fraction);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}%", power.dram_overhead_fraction * 100.0),
            format!("{:.0} mW", power.sram_mw),
        ]);
    }
    print_table(
        "Table V: extra power per channel (TRH = 4800)",
        &["design", "DRAM overhead (row-swap)", "SRAM power"],
        &rows,
    );
    println!("\nPaper reference: RRS 0.5% / 903 mW; Scale-SRS 0.2% / 703 mW");
}
