//! Figure 7 — number of correct random guesses required as the number of
//! Juggernaut attack rounds varies.

use srs_attack::{juggernaut, AttackParams};
use srs_bench::print_table;

fn main() {
    let mut rows = Vec::new();
    for n in (0..=1400u64).step_by(100) {
        let mut row = vec![n.to_string()];
        for &t_rh in &[4800u64, 2400, 1200] {
            match juggernaut::evaluate(&AttackParams::rrs(t_rh, 6), n) {
                Some(o) => row.push(o.required_guesses.to_string()),
                None => row.push("-".to_string()),
            }
        }
        rows.push(row);
    }
    print_table(
        "Figure 7: required correct random guesses vs attack rounds (swap rate 6)",
        &["rounds", "TRH=4800", "TRH=2400", "TRH=1200"],
        &rows,
    );
}
