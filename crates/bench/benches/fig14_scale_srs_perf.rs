//! Figure 14 — normalized performance of Scale-SRS and RRS at TRH = 1200,
//! per workload (hot-row workloads) and per suite.

use srs_bench::{figure_config, figure_workloads, format_norm, print_table, worker_threads};
use srs_core::DefenseKind;
use srs_sim::{run_parallel, suite_averages, NormalizedResult};

fn run(kind: DefenseKind) -> Vec<NormalizedResult> {
    let config = figure_config(kind, 1200);
    let jobs = figure_workloads().iter().map(|w| (config.clone(), w.clone())).collect();
    run_parallel(jobs, worker_threads())
}

fn main() {
    let rrs = run(DefenseKind::Rrs { immediate_unswap: true });
    let scale = run(DefenseKind::ScaleSrs);

    // Per-workload detail for workloads with hot rows (what the paper plots).
    let mut rows = Vec::new();
    for r in &rrs {
        let s = scale.iter().find(|s| s.workload == r.workload);
        rows.push(vec![
            r.workload.clone(),
            format_norm(r.normalized_performance),
            s.map_or("-".to_string(), |s| format_norm(s.normalized_performance)),
            r.detail.max_row_activations_in_window.to_string(),
        ]);
    }
    rows.sort();
    print_table(
        "Figure 14 (detail): per-workload normalized performance at TRH = 1200",
        &["workload", "RRS", "Scale-SRS", "max row ACTs/window"],
        &rows,
    );

    let mut rows = Vec::new();
    for (label, results) in [("RRS", &rrs), ("Scale-SRS", &scale)] {
        for (suite, value) in suite_averages(results) {
            rows.push(vec![label.to_string(), suite, format_norm(value)]);
        }
    }
    print_table(
        "Figure 14 (suites): normalized performance at TRH = 1200",
        &["design", "suite", "normalized IPC"],
        &rows,
    );
}
