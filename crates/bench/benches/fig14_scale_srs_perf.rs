//! Figure 14 — normalized performance of Scale-SRS and RRS at TRH = 1200,
//! per workload (hot-row workloads) and per suite.

use srs_bench::{figure_experiment, format_norm, print_table};
use srs_core::DefenseKind;
use srs_sim::{results_for, suite_averages};

fn main() {
    let rrs = DefenseKind::Rrs { immediate_unswap: true };
    let scale = DefenseKind::ScaleSrs;
    let results = figure_experiment(vec![rrs, scale], vec![1200]).run();
    let rrs_results = results_for(&results, rrs, 1200);
    let scale_results = results_for(&results, scale, 1200);

    // Per-workload detail for workloads with hot rows (what the paper plots).
    let mut rows = Vec::new();
    for r in &rrs_results {
        let s = scale_results.iter().find(|s| s.workload == r.workload);
        rows.push(vec![
            r.workload.clone(),
            format_norm(r.normalized_performance),
            s.map_or("-".to_string(), |s| format_norm(s.normalized_performance)),
            r.detail.max_row_activations_in_window.to_string(),
        ]);
    }
    rows.sort();
    print_table(
        "Figure 14 (detail): per-workload normalized performance at TRH = 1200",
        &["workload", "RRS", "Scale-SRS", "max row ACTs/window"],
        &rows,
    );

    let mut rows = Vec::new();
    for (label, group) in [("RRS", &rrs_results), ("Scale-SRS", &scale_results)] {
        for suite in suite_averages(group.iter().copied()) {
            rows.push(vec![label.to_string(), suite.label, format_norm(suite.mean)]);
        }
    }
    print_table(
        "Figure 14 (suites): normalized performance at TRH = 1200",
        &["design", "suite", "normalized IPC"],
        &rows,
    );
}
