//! Figure 15 — sensitivity of Scale-SRS and RRS to the Row Hammer threshold
//! (512 .. 4800) with the Misra-Gries tracker.

use srs_bench::{figure_experiment, format_norm, print_table};
use srs_core::DefenseKind;
use srs_sim::{mean_normalized, results_for};

fn main() {
    let defenses = [DefenseKind::Rrs { immediate_unswap: true }, DefenseKind::ScaleSrs];
    let thresholds = [512u64, 1200, 2400, 4800];
    let results = figure_experiment(defenses.to_vec(), thresholds.to_vec()).run();

    let rows: Vec<Vec<String>> = thresholds
        .iter()
        .map(|&t_rh| {
            let mut row = vec![format!("TRH={t_rh}")];
            for kind in defenses {
                row.push(format_norm(mean_normalized(results_for(&results, kind, t_rh))));
            }
            row
        })
        .collect();
    print_table(
        "Figure 15: normalized performance vs TRH (Misra-Gries tracker)",
        &["threshold", "RRS", "Scale-SRS"],
        &rows,
    );
}
