//! A trace-driven out-of-order core model in the style of USIMM.
//!
//! The model does not simulate individual instructions; it charges each
//! trace record's non-memory instructions at the retire width and models the
//! reorder buffer as a *run-ahead window*: after issuing a long-latency read
//! the core may continue executing for as long as the ROB can hold younger
//! instructions, after which it stalls until the read returns. Writes retire
//! through a write buffer and never stall the core.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::config::CoreConfig;
use srs_workloads::{MemOp, Trace, TraceRecord};

/// A unique identifier for an in-flight memory access issued by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AccessToken(pub u64);

/// What a core wants to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStatus {
    /// The core has retired its target instruction count.
    Finished,
    /// The core can issue its next memory operation at the given time.
    ReadyAt(u64),
    /// The core is stalled waiting for one of its outstanding reads.
    Blocked,
}

/// A memory operation issued by a core, to be routed through the cache
/// hierarchy by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryIssue {
    /// Token to pass back to [`TraceCore::complete_read`].
    pub token: AccessToken,
    /// Physical byte address.
    pub addr: u64,
    /// Whether the operation is a write.
    pub is_write: bool,
}

#[derive(Debug, Clone, Copy)]
struct OutstandingRead {
    token: AccessToken,
    blocks_at_ns: u64,
}

/// Per-core statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired_instructions: u64,
    /// Memory reads issued.
    pub reads: u64,
    /// Memory writes issued.
    pub writes: u64,
    /// Nanoseconds spent stalled on memory.
    pub stall_ns: u64,
}

/// A single trace-driven core.
///
/// The trace records are held behind an `Arc` so that rate-mode simulations
/// (the same workload on every core) share one immutable copy instead of
/// cloning the record vector per core; the per-core address-space offset is
/// applied at issue time.
#[derive(Debug, Clone)]
pub struct TraceCore {
    config: CoreConfig,
    /// Cached [`TraceCore::runahead_ns`] (constant per configuration; it is
    /// added to every issued read's block point).
    runahead_ns: u64,
    /// Cached `retire_width * clock_ghz` — the per-issue charge is a single
    /// f64 division by this product instead of two chained divisions.
    retire_per_ns: f64,
    /// Memo of the last (instruction count, charge) pair: trace records
    /// repeat a handful of small instruction counts, so the division (and
    /// `ceil` libcall) is skipped on nearly every issue.
    last_charge: (u64, u64),
    records: Arc<[TraceRecord]>,
    /// Added (wrapping) to every record address at issue time, giving each
    /// core a private copy of the workload's address space in rate mode.
    addr_offset: u64,
    position: usize,
    laps: u64,
    ready_at_ns: u64,
    outstanding: Vec<OutstandingRead>,
    next_token: u64,
    stats: CoreStats,
    /// Earliest time the next [`TraceCore::try_issue`] could succeed, as of
    /// the last failed issue attempt: `u64::MAX` when only a read
    /// completion (or retirement bookkeeping) can ready the core again, `0`
    /// when unknown. Lets a caller's per-tick issue loop skip the whole
    /// status walk for blocked cores with one comparison; failing issues
    /// refresh it and [`TraceCore::complete_read`] invalidates it.
    wake_hint_ns: u64,
}

impl TraceCore {
    /// Create a core that will execute `trace`, looping over it (rate mode)
    /// until [`CoreConfig::target_instructions`] have retired.
    #[must_use]
    pub fn new(config: CoreConfig, trace: Trace) -> Self {
        Self::shared(config, trace.records.into(), 0)
    }

    /// Create a core that executes a shared, immutable record slice, offset
    /// into its own address-space copy. `TraceCore::shared(c, records, 0)`
    /// behaves exactly like [`TraceCore::new`] on the originating trace.
    #[must_use]
    pub fn shared(config: CoreConfig, records: Arc<[TraceRecord]>, addr_offset: u64) -> Self {
        let cycles = f64::from(config.rob_size) / f64::from(config.retire_width.max(1));
        let runahead_ns = config.cycles_to_ns(cycles);
        let retire_per_ns = f64::from(config.retire_width.max(1)) * config.clock_ghz;
        Self {
            config,
            runahead_ns,
            retire_per_ns,
            last_charge: (0, 1),
            records,
            addr_offset,
            position: 0,
            laps: 0,
            ready_at_ns: 0,
            outstanding: Vec::new(),
            next_token: 0,
            stats: CoreStats::default(),
            wake_hint_ns: 0,
        }
    }

    /// The core configuration.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Per-core statistics so far.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Whether the core has reached its instruction target.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.stats.retired_instructions >= self.config.target_instructions
            || self.records.is_empty()
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn retired_instructions(&self) -> u64 {
        self.stats.retired_instructions
    }

    /// Number of reads currently outstanding.
    #[must_use]
    pub fn outstanding_reads(&self) -> usize {
        self.outstanding.len()
    }

    /// The time window a read can be overlapped with younger work before the
    /// ROB fills and the core must stall, in nanoseconds.
    #[must_use]
    pub fn runahead_ns(&self) -> u64 {
        self.runahead_ns
    }

    /// Earliest time a [`TraceCore::try_issue`] call could possibly succeed
    /// — a cached hint, not a promise of success. A caller polling many
    /// cores per tick may skip any core whose hint lies in the future;
    /// calling `try_issue` anyway is always correct, just slower. The hint
    /// is conservative: issue attempts and completions keep it at or below
    /// the true readiness time, and it never masks a state change (a core's
    /// readiness only changes through `try_issue` and `complete_read`
    /// themselves).
    #[must_use]
    pub fn wake_hint_ns(&self) -> u64 {
        self.wake_hint_ns
    }

    /// What the core wants to do at time `now`.
    #[must_use]
    pub fn status(&self, now: u64) -> CoreStatus {
        if self.is_finished() {
            return CoreStatus::Finished;
        }
        if self.outstanding.len() >= self.config.max_outstanding_misses {
            return CoreStatus::Blocked;
        }
        if let Some(oldest) = self.outstanding.first() {
            if oldest.blocks_at_ns <= now.max(self.ready_at_ns) {
                return CoreStatus::Blocked;
            }
        }
        CoreStatus::ReadyAt(self.ready_at_ns.max(now))
    }

    /// Issue the next memory operation if the core is ready at `now`.
    ///
    /// Returns `None` if the core is finished, blocked, or not yet ready.
    pub fn try_issue(&mut self, now: u64) -> Option<MemoryIssue> {
        match self.status(now) {
            CoreStatus::ReadyAt(t) if t <= now => {}
            CoreStatus::ReadyAt(t) => {
                // Not ready before `t`, and nothing but this core's own
                // clock gets it there sooner.
                self.wake_hint_ns = t;
                return None;
            }
            _ => {
                // Blocked or finished: inert until a completion arrives
                // (which clears the hint) or forever.
                self.wake_hint_ns = u64::MAX;
                return None;
            }
        }
        self.wake_hint_ns = 0;
        let record = self.records[self.position];
        self.position += 1;
        if self.position >= self.records.len() {
            self.position = 0;
            self.laps += 1;
        }
        let insts = record.instructions();
        self.stats.retired_instructions += insts;
        let charge_ns = if self.last_charge.0 == insts {
            self.last_charge.1
        } else {
            let charge = ((insts as f64 / self.retire_per_ns).ceil() as u64).max(1);
            self.last_charge = (insts, charge);
            charge
        };
        self.ready_at_ns = self.ready_at_ns.max(now) + charge_ns;

        let token = AccessToken(self.next_token);
        self.next_token += 1;
        let is_write = record.op == MemOp::Write;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
            self.outstanding.push(OutstandingRead { token, blocks_at_ns: now + self.runahead_ns });
        }
        Some(MemoryIssue { token, addr: record.addr.wrapping_add(self.addr_offset), is_write })
    }

    /// The earliest time at which this core could issue its next memory
    /// operation *without any external event*, or `None` if only a read
    /// completion can unblock it (or it is finished).
    ///
    /// This is the core's half of the event-driven time-skip engine: if the
    /// result is `Some(t)` (which may be `<= now`, meaning "as soon as the
    /// caller next looks"), nothing about the core changes before `t`; if
    /// it is `None`, the core is inert until [`TraceCore::complete_read`]
    /// is called from a memory-completion event.
    #[must_use]
    pub fn next_ready_ns(&self, now: u64) -> Option<u64> {
        if self.is_finished() || self.outstanding.len() >= self.config.max_outstanding_misses {
            return None;
        }
        if let Some(oldest) = self.outstanding.first() {
            // Blocking is monotone in time (`status` compares the oldest
            // read's block point against max(now, ready_at)): if the core
            // is blocked at the earliest instant it could otherwise issue,
            // it stays blocked until the read completes.
            if oldest.blocks_at_ns <= self.ready_at_ns.max(now) {
                return None;
            }
        }
        Some(self.ready_at_ns)
    }

    /// Report that the read identified by `token` completed at `now`.
    ///
    /// Unknown tokens are ignored (writes and cache hits may be completed
    /// eagerly by the simulator without bookkeeping here).
    pub fn complete_read(&mut self, token: AccessToken, now: u64) {
        if let Some(idx) = self.outstanding.iter().position(|o| o.token == token) {
            self.wake_hint_ns = 0;
            let read = self.outstanding.remove(idx);
            if now > read.blocks_at_ns {
                self.stats.stall_ns += now - read.blocks_at_ns;
                // The core could not make progress past the blocked point.
                self.ready_at_ns = self.ready_at_ns.max(now);
            }
        }
    }

    /// Instructions per cycle achieved over `elapsed_ns` of simulated time.
    #[must_use]
    pub fn ipc(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            return 0.0;
        }
        let cycles = elapsed_ns as f64 * self.config.clock_ghz;
        self.stats.retired_instructions as f64 / cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srs_workloads::{TraceRecord, WorkloadSpec};

    fn core(target: u64) -> TraceCore {
        let trace = WorkloadSpec::gups(1 << 20).generate(1_000, 3);
        let config = CoreConfig { target_instructions: target, ..CoreConfig::default() };
        TraceCore::new(config, trace)
    }

    #[test]
    fn issues_memory_operations_when_ready() {
        let mut c = core(1_000_000);
        let issue = c.try_issue(0).expect("ready at time 0");
        assert!(c.retired_instructions() > 0);
        assert_eq!(issue.token, AccessToken(0));
    }

    #[test]
    fn reads_become_outstanding_and_writes_do_not() {
        let trace = Trace::new(
            "t",
            vec![
                TraceRecord { nonmem_insts: 0, op: MemOp::Read, addr: 0 },
                TraceRecord { nonmem_insts: 0, op: MemOp::Write, addr: 64 },
            ],
        );
        let mut c = TraceCore::new(CoreConfig::default(), trace);
        let a = c.try_issue(0).unwrap();
        assert!(!a.is_write);
        assert_eq!(c.outstanding_reads(), 1);
        let now = 10;
        let b = c.try_issue(now).unwrap();
        assert!(b.is_write);
        assert_eq!(c.outstanding_reads(), 1);
    }

    #[test]
    fn core_blocks_once_runahead_is_exhausted() {
        // An explicit single-read trace keeps the test independent of the
        // synthetic generator's read/write ordering.
        let trace =
            Trace::new("read", vec![TraceRecord { nonmem_insts: 0, op: MemOp::Read, addr: 0 }]);
        let config = CoreConfig { target_instructions: 1_000_000, ..CoreConfig::default() };
        let mut c = TraceCore::new(config, trace);
        let issue = c.try_issue(0).unwrap();
        let runahead = c.runahead_ns();
        // Shortly after issuing, the core is still ready...
        assert!(matches!(c.status(1), CoreStatus::ReadyAt(_)));
        // ...but far past the run-ahead window it is blocked on the read.
        assert_eq!(c.status(runahead + 1_000), CoreStatus::Blocked);
        c.complete_read(issue.token, runahead + 2_000);
        assert!(matches!(c.status(runahead + 2_000), CoreStatus::ReadyAt(_)));
        assert!(c.stats().stall_ns > 0);
    }

    #[test]
    fn finishes_at_instruction_target() {
        let mut c = core(500);
        let mut now = 0;
        let mut guard = 0;
        while !c.is_finished() {
            if let Some(issue) = c.try_issue(now) {
                c.complete_read(issue.token, now + 50);
            }
            now += 10;
            guard += 1;
            assert!(guard < 100_000, "core failed to finish");
        }
        assert!(c.retired_instructions() >= 500);
        assert_eq!(c.status(now), CoreStatus::Finished);
    }

    #[test]
    fn next_ready_tracks_issue_and_blocking() {
        let trace = Trace::new(
            "t",
            vec![
                TraceRecord { nonmem_insts: 0, op: MemOp::Read, addr: 0 },
                TraceRecord { nonmem_insts: 0, op: MemOp::Read, addr: 1 << 20 },
            ],
        );
        let config = CoreConfig { target_instructions: 1_000_000, ..CoreConfig::default() };
        let mut c = TraceCore::new(config, trace);
        assert_eq!(c.next_ready_ns(0), Some(0), "fresh core is ready immediately");
        let issue = c.try_issue(0).unwrap();
        let ready = c.next_ready_ns(0).expect("still within the run-ahead window");
        assert!(ready >= 1);
        // Far past the run-ahead window the oldest read blocks the core: no
        // self-generated event remains.
        assert_eq!(c.next_ready_ns(c.runahead_ns() + 1_000), None);
        c.complete_read(issue.token, c.runahead_ns() + 2_000);
        assert!(c.next_ready_ns(c.runahead_ns() + 2_000).is_some());
    }

    #[test]
    fn shared_records_with_offset_match_a_rewritten_trace() {
        let base = WorkloadSpec::gups(1 << 20).generate(200, 7);
        let offset = 1u64 << 33;
        let mut rewritten = base.clone();
        for r in &mut rewritten.records {
            r.addr = r.addr.wrapping_add(offset);
        }
        let config = CoreConfig { target_instructions: 400, ..CoreConfig::default() };
        let records: std::sync::Arc<[TraceRecord]> = base.records.into();
        let mut shared = TraceCore::shared(config, records, offset);
        let mut cloned = TraceCore::new(config, rewritten);
        let mut now = 0;
        while !(shared.is_finished() && cloned.is_finished()) {
            let a = shared.try_issue(now);
            let b = cloned.try_issue(now);
            assert_eq!(a, b, "offset-at-issue must equal a pre-rewritten trace");
            if let Some(issue) = a {
                shared.complete_read(issue.token, now + 40);
                cloned.complete_read(issue.token, now + 40);
            }
            now += 10;
        }
    }

    #[test]
    fn mlp_is_bounded_by_max_outstanding() {
        let cfg = CoreConfig { max_outstanding_misses: 2, ..CoreConfig::default() };
        let trace = WorkloadSpec::gups(1 << 20).generate(100, 9);
        let mut c = TraceCore::new(cfg, trace);
        let mut now = 0;
        let mut issued = 0;
        for _ in 0..100 {
            if c.try_issue(now).is_some() {
                issued += 1;
            }
            now += 5;
        }
        assert!(c.outstanding_reads() <= 2);
        assert!(issued >= 2);
        assert_eq!(c.status(now), CoreStatus::Blocked);
    }

    #[test]
    fn ipc_reflects_retired_work() {
        let mut c = core(10_000);
        let mut now = 0;
        while !c.is_finished() {
            if let Some(issue) = c.try_issue(now) {
                c.complete_read(issue.token, now + 30);
            } else {
                // Complete anything outstanding so progress continues.
                now += 30;
            }
            now += 2;
        }
        let ipc = c.ipc(now);
        assert!(ipc > 0.0 && ipc <= f64::from(c.config().retire_width), "ipc = {ipc}");
    }
}
