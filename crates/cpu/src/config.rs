//! Core-model configuration (the processor half of Table III).

use serde::{Deserialize, Serialize};

/// Configuration of one trace-driven core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Core clock frequency in GHz (3.2 GHz in Table III).
    pub clock_ghz: f64,
    /// Reorder-buffer size in instructions (192 in Table III).
    pub rob_size: u32,
    /// Fetch width in instructions per cycle (4 in Table III).
    pub fetch_width: u32,
    /// Retire width in instructions per cycle (4 in Table III).
    pub retire_width: u32,
    /// Maximum reads outstanding to the memory system at once.
    pub max_outstanding_misses: usize,
    /// Instructions to retire before the core reports finished.
    pub target_instructions: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            clock_ghz: 3.2,
            rob_size: 192,
            fetch_width: 4,
            retire_width: 4,
            max_outstanding_misses: 16,
            target_instructions: 1_000_000,
        }
    }
}

impl CoreConfig {
    /// Convert a cycle count to nanoseconds at this core's clock.
    #[must_use]
    pub fn cycles_to_ns(&self, cycles: f64) -> u64 {
        (cycles / self.clock_ghz).ceil() as u64
    }

    /// Convert nanoseconds to cycles at this core's clock.
    #[must_use]
    pub fn ns_to_cycles(&self, ns: u64) -> f64 {
        ns as f64 * self.clock_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iii() {
        let c = CoreConfig::default();
        assert_eq!(c.rob_size, 192);
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.retire_width, 4);
        assert!((c.clock_ghz - 3.2).abs() < 1e-12);
    }

    #[test]
    fn cycle_conversions_round_trip_approximately() {
        let c = CoreConfig::default();
        let ns = c.cycles_to_ns(320.0);
        assert_eq!(ns, 100);
        assert!((c.ns_to_cycles(100) - 320.0).abs() < 1e-9);
    }
}
