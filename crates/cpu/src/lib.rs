//! # srs-cpu
//!
//! A trace-driven out-of-order core model in the style of the USIMM memory
//! scheduling championship simulator, used to drive the Scale-SRS memory
//! system. Each [`TraceCore`] consumes a [`srs_workloads::Trace`] in rate
//! mode (looping until an instruction target is reached), overlapping memory
//! reads with up to a reorder-buffer's worth of younger instructions.
//!
//! ## Example
//!
//! ```
//! use srs_cpu::{CoreConfig, TraceCore};
//! use srs_workloads::WorkloadSpec;
//!
//! let trace = WorkloadSpec::gups(1 << 20).generate(100, 1);
//! let mut core = TraceCore::new(CoreConfig::default(), trace);
//! let issue = core.try_issue(0).expect("core is ready at time zero");
//! core.complete_read(issue.token, 60);
//! assert!(core.retired_instructions() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod source;

pub use crate::core::{AccessToken, CoreStats, CoreStatus, MemoryIssue, TraceCore};
pub use config::CoreConfig;
pub use source::RequestSource;
