//! The issue interface between a request-generating core and the simulator.
//!
//! [`TraceCore`] replays a fixed trace; the adversarial attacker cores of
//! `srs_attack::engine` generate accesses *reactively*, observing memory
//! system feedback. Both speak the same protocol to the simulator, captured
//! here as the [`RequestSource`] trait: issue requests when ready, consume
//! read completions, and — for the event-driven time-skip engine — report
//! the earliest self-generated time at which anything about the source can
//! change ([`RequestSource::next_ready_ns`]).

use crate::core::{AccessToken, CoreStatus, MemoryIssue, TraceCore};

/// A source of memory requests driven by the full-system simulator.
///
/// The contract mirrors [`TraceCore`]'s inherent methods (which implement
/// this trait by delegation) and adds an optional feedback channel:
/// reactive sources ([`RequestSource::wants_feedback`]) are shown every row
/// activation the controller issues, including the maintenance activations
/// performed by a Row Hammer defense — the observable signal a closed-loop
/// attacker adapts to.
///
/// # Event-driven engine contract
///
/// [`RequestSource::next_ready_ns`] must return `Some(t)` only if nothing
/// about the source changes before `t` without an external event, and
/// `None` only if the source is inert until a read completion (or it is
/// finished). Violating this lets a time-skipping simulator run the source
/// late and diverge from the fixed-step reference engine.
pub trait RequestSource {
    /// Issue the next memory operation if the source is ready at `now`.
    fn try_issue(&mut self, now: u64) -> Option<MemoryIssue>;

    /// Report that the read identified by `token` completed at `now`.
    fn complete_read(&mut self, token: AccessToken, now: u64);

    /// What the source wants to do at time `now`.
    fn status(&self, now: u64) -> CoreStatus;

    /// Whether the source has retired its work target (an adversarial
    /// source never finishes; it attacks until the simulation ends).
    fn is_finished(&self) -> bool;

    /// The earliest time the source could issue again without any external
    /// event, or `None` if only a read completion can unblock it.
    fn next_ready_ns(&self, now: u64) -> Option<u64>;

    /// Instructions retired so far (0 for sources that model no program).
    fn retired_instructions(&self) -> u64;

    /// Instructions per cycle achieved over `elapsed_ns` of simulated time.
    fn ipc(&self, elapsed_ns: u64) -> f64;

    /// Observe one row activation issued by the memory controller.
    ///
    /// `physical_row` is the chip location that was activated and
    /// `logical_row` the row address as issued by the system;
    /// `maintenance` marks activations performed by a mitigation operation
    /// (swap, unswap-swap, place-back) rather than a demand access. The
    /// default implementation ignores the stream.
    fn observe_activation(
        &mut self,
        _bank: usize,
        _physical_row: u64,
        _logical_row: u64,
        _maintenance: bool,
        _now: u64,
    ) {
    }

    /// Whether this source consumes the activation feedback stream. The
    /// simulator skips the per-activation fan-out entirely when no source
    /// wants it, keeping the hot path of pure trace-replay runs unchanged.
    fn wants_feedback(&self) -> bool {
        false
    }

    /// The source as `Any`, so the simulator can recover concrete-type
    /// statistics (e.g. attacker counters) from a heterogeneous core list
    /// at the end of a run.
    fn as_any(&self) -> &dyn std::any::Any;
}

impl RequestSource for TraceCore {
    fn try_issue(&mut self, now: u64) -> Option<MemoryIssue> {
        TraceCore::try_issue(self, now)
    }

    fn complete_read(&mut self, token: AccessToken, now: u64) {
        TraceCore::complete_read(self, token, now);
    }

    fn status(&self, now: u64) -> CoreStatus {
        TraceCore::status(self, now)
    }

    fn is_finished(&self) -> bool {
        TraceCore::is_finished(self)
    }

    fn next_ready_ns(&self, now: u64) -> Option<u64> {
        TraceCore::next_ready_ns(self, now)
    }

    fn retired_instructions(&self) -> u64 {
        TraceCore::retired_instructions(self)
    }

    fn ipc(&self, elapsed_ns: u64) -> f64 {
        TraceCore::ipc(self, elapsed_ns)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use srs_workloads::WorkloadSpec;

    #[test]
    fn trace_core_speaks_the_source_protocol() {
        let trace = WorkloadSpec::gups(1 << 20).generate(100, 3);
        let config = CoreConfig { target_instructions: 1_000, ..CoreConfig::default() };
        let mut source: Box<dyn RequestSource> = Box::new(TraceCore::new(config, trace));
        assert!(!source.wants_feedback());
        assert!(!source.is_finished());
        let issue = source.try_issue(0).expect("ready at time zero");
        source.complete_read(issue.token, 60);
        // The default feedback hook is a no-op and must not disturb replay.
        source.observe_activation(0, 1, 1, false, 60);
        assert!(source.retired_instructions() > 0);
        // Drive the source to completion through the trait alone.
        let mut now = 100;
        while !source.is_finished() {
            if let Some(issue) = source.try_issue(now) {
                source.complete_read(issue.token, now + 50);
            }
            now += 10;
            assert!(now < 1_000_000, "source failed to finish");
        }
        assert_eq!(source.status(now), CoreStatus::Finished);
    }
}
