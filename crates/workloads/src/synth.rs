//! Synthetic workload generators.
//!
//! Each generator is parameterised so the resulting trace reproduces the
//! property that matters to row-swap defenses: the distribution of row
//! activation counts within a refresh window — in particular whether the
//! workload contains *hot rows* that cross the swap threshold (the paper
//! reports detailed results only for workloads with at least one row
//! receiving 800+ activations in 64 ms).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::trace::{MemOp, Trace, TraceRecord};

/// The spatial access pattern of a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Uniform random accesses over the footprint (GUPS-like).
    Uniform,
    /// Sequential streaming with a fixed stride in bytes.
    Streaming {
        /// Stride between consecutive accesses, in bytes.
        stride: u64,
    },
    /// A small set of hot DRAM rows receives a large fraction of accesses
    /// (the behaviour that triggers frequent swaps in gcc, hmmer, ...).
    HotRows {
        /// Number of distinct hot rows.
        hot_rows: u64,
        /// Fraction of accesses that go to a hot row, in [0, 1].
        hot_fraction: f64,
    },
    /// Row-buffer-friendly bursts: several consecutive lines of one row are
    /// touched before moving to another random row.
    RowBurst {
        /// Number of consecutive lines accessed per burst.
        burst: u64,
    },
}

/// A complete description of a synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name.
    pub name: String,
    /// Footprint in bytes over which addresses are generated.
    pub footprint_bytes: u64,
    /// Base physical address of the footprint.
    pub base_addr: u64,
    /// Fraction of memory operations that are reads.
    pub read_fraction: f64,
    /// Mean number of non-memory instructions between memory operations
    /// (lower means more memory-intensive).
    pub mean_gap: u32,
    /// The spatial pattern.
    pub pattern: AccessPattern,
}

impl WorkloadSpec {
    /// A GUPS-like uniformly random workload.
    #[must_use]
    pub fn gups(footprint_bytes: u64) -> Self {
        Self {
            name: "gups".to_string(),
            footprint_bytes,
            base_addr: 0,
            read_fraction: 0.5,
            mean_gap: 2,
            pattern: AccessPattern::Uniform,
        }
    }

    /// Generate `records` trace records deterministically from `seed`.
    #[must_use]
    pub fn generate(&self, records: usize, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77_C0FFEE);
        let mut out = Vec::with_capacity(records);
        let footprint = self.footprint_bytes.max(64);
        let row_bytes: u64 = 8 * 1024;
        let mut stream_pos: u64 = 0;
        let mut burst_left: u64 = 0;
        let mut burst_base: u64 = 0;
        // Pre-pick the hot row bases so they are stable across the trace.
        let hot_bases: Vec<u64> = match self.pattern {
            AccessPattern::HotRows { hot_rows, .. } => (0..hot_rows.max(1))
                .map(|_| {
                    rng.random_range(0..footprint / row_bytes.min(footprint).max(1))
                        .saturating_mul(row_bytes)
                })
                .collect(),
            _ => Vec::new(),
        };
        for _ in 0..records {
            let offset = match self.pattern {
                AccessPattern::Uniform => rng.random_range(0..footprint) & !63,
                AccessPattern::Streaming { stride } => {
                    stream_pos = (stream_pos + stride) % footprint;
                    stream_pos & !63
                }
                AccessPattern::HotRows { hot_fraction, .. } => {
                    if rng.random::<f64>() < hot_fraction {
                        let base = hot_bases[rng.random_range(0..hot_bases.len())];
                        ((base + rng.random_range(0..row_bytes)) % footprint) & !63
                    } else {
                        rng.random_range(0..footprint) & !63
                    }
                }
                AccessPattern::RowBurst { burst } => {
                    if burst_left == 0 {
                        burst_left = burst.max(1);
                        burst_base = rng.random_range(0..footprint) & !(row_bytes - 1);
                    }
                    burst_left -= 1;
                    ((burst_base + (burst.max(1) - burst_left) * 64) % footprint) & !63
                }
            };
            let gap = if self.mean_gap == 0 { 0 } else { rng.random_range(0..=2 * self.mean_gap) };
            let op =
                if rng.random::<f64>() < self.read_fraction { MemOp::Read } else { MemOp::Write };
            out.push(TraceRecord { nonmem_insts: gap, op, addr: self.base_addr + offset });
        }
        Trace::new(self.name.clone(), out)
    }

    /// Serialize the specification (pattern included) to a compact binary
    /// representation, so experiment grids can persist the exact generator
    /// inputs next to their results. (The workspace's offline `serde` shim
    /// is marker-only, so the codec is hand-rolled like [`Trace::to_bytes`].)
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.name.len());
        buf.put_u32(self.name.len() as u32);
        buf.put_slice(self.name.as_bytes());
        buf.put_u64(self.footprint_bytes);
        buf.put_u64(self.base_addr);
        buf.put_u64(self.read_fraction.to_bits());
        buf.put_u32(self.mean_gap);
        match self.pattern {
            AccessPattern::Uniform => buf.put_u8(0),
            AccessPattern::Streaming { stride } => {
                buf.put_u8(1);
                buf.put_u64(stride);
            }
            AccessPattern::HotRows { hot_rows, hot_fraction } => {
                buf.put_u8(2);
                buf.put_u64(hot_rows);
                buf.put_u64(hot_fraction.to_bits());
            }
            AccessPattern::RowBurst { burst } => {
                buf.put_u8(3);
                buf.put_u64(burst);
            }
        }
        buf.freeze()
    }

    /// Deserialize a specification previously produced by
    /// [`WorkloadSpec::to_bytes`]. Returns `None` if the buffer is
    /// truncated or malformed.
    #[must_use]
    pub fn from_bytes(mut data: Bytes) -> Option<Self> {
        if data.remaining() < 4 {
            return None;
        }
        let name_len = data.get_u32() as usize;
        if data.remaining() < name_len + 8 + 8 + 8 + 4 + 1 {
            return None;
        }
        let name = String::from_utf8(data.copy_to_bytes(name_len).to_vec()).ok()?;
        let footprint_bytes = data.get_u64();
        let base_addr = data.get_u64();
        let read_fraction = f64::from_bits(data.get_u64());
        let mean_gap = data.get_u32();
        let pattern = match data.get_u8() {
            0 => AccessPattern::Uniform,
            1 if data.remaining() >= 8 => AccessPattern::Streaming { stride: data.get_u64() },
            2 if data.remaining() >= 16 => AccessPattern::HotRows {
                hot_rows: data.get_u64(),
                hot_fraction: f64::from_bits(data.get_u64()),
            },
            3 if data.remaining() >= 8 => AccessPattern::RowBurst { burst: data.get_u64() },
            _ => return None,
        };
        Some(Self { name, footprint_bytes, base_addr, read_fraction, mean_gap, pattern })
    }
}

/// A hammering trace together with its blast radius: the row-aligned byte
/// addresses of the deterministically hammered aggressor rows and of the
/// victim rows physically adjacent to them.
///
/// Returning the row sets from the generator saves consumers (the
/// security-metrics layer, targeted tests) from re-deriving which rows the
/// trace attacks out of the raw record addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HammerTrace {
    /// The generated trace.
    pub trace: Trace,
    /// Row size assumed when aligning the row sets, in bytes.
    pub row_bytes: u64,
    /// Row-aligned byte addresses of the hammered aggressor rows.
    pub aggressor_addrs: Vec<u64>,
    /// Row-aligned byte addresses of the rows adjacent to an aggressor.
    pub victim_addrs: Vec<u64>,
}

impl HammerTrace {
    /// Consume the bundle, keeping only the trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

/// Generate a single-sided Row Hammer access pattern: `hammer_count`
/// activations of one row interleaved with filler accesses, the building
/// block of the Juggernaut demonstration traces. Returns the trace together
/// with the aggressor/victim row sets ([`HammerTrace`]).
#[must_use]
pub fn hammer_trace(
    name: &str,
    target_addr: u64,
    hammer_count: usize,
    filler_footprint: u64,
    seed: u64,
) -> HammerTrace {
    let row_bytes: u64 = 8 * 1024;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::with_capacity(hammer_count * 2);
    for _ in 0..hammer_count {
        records.push(TraceRecord { nonmem_insts: 0, op: MemOp::Read, addr: target_addr });
        // A conflicting access to force the row to close (classic hammer).
        let filler = rng.random_range(0..filler_footprint.max(64)) & !63;
        records.push(TraceRecord { nonmem_insts: 0, op: MemOp::Read, addr: filler });
    }
    let aggressor = target_addr & !(row_bytes - 1);
    let victim_addrs = [aggressor.checked_sub(row_bytes), aggressor.checked_add(row_bytes)]
        .into_iter()
        .flatten()
        .collect();
    HammerTrace {
        trace: Trace::new(name, records),
        row_bytes,
        aggressor_addrs: vec![aggressor],
        victim_addrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::gups(1 << 20);
        let a = spec.generate(1000, 7);
        let b = spec.generate(1000, 7);
        assert_eq!(a, b);
        let c = spec.generate(1000, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn addresses_stay_within_footprint() {
        let spec = WorkloadSpec {
            name: "bounded".to_string(),
            footprint_bytes: 1 << 16,
            base_addr: 1 << 30,
            read_fraction: 0.7,
            mean_gap: 10,
            pattern: AccessPattern::Uniform,
        };
        let t = spec.generate(5000, 1);
        assert!(t.records.iter().all(|r| r.addr >= 1 << 30 && r.addr < (1 << 30) + (1 << 16)));
    }

    #[test]
    fn read_fraction_is_respected() {
        let spec = WorkloadSpec { read_fraction: 0.9, ..WorkloadSpec::gups(1 << 20) };
        let t = spec.generate(20_000, 3);
        assert!((t.read_fraction() - 0.9).abs() < 0.02, "fraction = {}", t.read_fraction());
    }

    #[test]
    fn hot_row_pattern_concentrates_accesses() {
        let spec = WorkloadSpec {
            name: "hot".to_string(),
            footprint_bytes: 1 << 26,
            base_addr: 0,
            read_fraction: 1.0,
            mean_gap: 1,
            pattern: AccessPattern::HotRows { hot_rows: 2, hot_fraction: 0.8 },
        };
        let t = spec.generate(50_000, 11);
        // Count accesses per 8KB row; the hottest row must hold a large share.
        let mut counts = std::collections::HashMap::new();
        for r in &t.records {
            *counts.entry(r.addr / 8192).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max as f64 > 0.2 * t.len() as f64, "hottest row share too low: {max}");
    }

    #[test]
    fn streaming_pattern_is_sequential() {
        let spec = WorkloadSpec {
            name: "stream".to_string(),
            footprint_bytes: 1 << 20,
            base_addr: 0,
            read_fraction: 1.0,
            mean_gap: 4,
            pattern: AccessPattern::Streaming { stride: 64 },
        };
        let t = spec.generate(100, 5);
        for pair in t.records.windows(2) {
            let delta = pair[1].addr.wrapping_sub(pair[0].addr);
            assert!(delta == 64 || pair[1].addr < pair[0].addr, "unexpected stride {delta}");
        }
    }

    #[test]
    fn hammer_trace_hits_target_half_the_time() {
        let h = hammer_trace("hammer", 0x12340, 500, 1 << 20, 1);
        let hits = h.trace.records.iter().filter(|r| r.addr == 0x12340).count();
        assert_eq!(hits, 500);
        assert_eq!(h.trace.len(), 1000);
    }

    #[test]
    fn hammer_trace_reports_its_blast_radius() {
        let h = hammer_trace("hammer", 0x12340, 10, 1 << 20, 1);
        assert_eq!(h.aggressor_addrs, vec![0x12000], "aggressor is row-aligned");
        assert_eq!(h.victim_addrs, vec![0x12000 - 8192, 0x12000 + 8192]);
        // An aggressor in the first row has no lower neighbor.
        let low = hammer_trace("low", 0x40, 10, 1 << 20, 1);
        assert_eq!(low.aggressor_addrs, vec![0]);
        assert_eq!(low.victim_addrs, vec![8192]);
    }

    #[test]
    fn mean_gap_controls_intensity() {
        let dense = WorkloadSpec { mean_gap: 1, ..WorkloadSpec::gups(1 << 20) }.generate(10_000, 2);
        let sparse =
            WorkloadSpec { mean_gap: 50, ..WorkloadSpec::gups(1 << 20) }.generate(10_000, 2);
        assert!(dense.mpki() > sparse.mpki());
    }
}
