//! The benchmark suites of the paper's evaluation, mapped onto synthetic
//! workload generators.
//!
//! The paper evaluates 78 workloads drawn from SPEC2006, SPEC2017, GAP,
//! COMMERCIAL, PARSEC, BIOBENCH, six random mixes and GUPS. The original Pin
//! traces are not redistributable, so each named workload is assigned a
//! synthetic profile (memory intensity, footprint, and hot-row behaviour)
//! that reproduces the property driving the paper's results: whether the
//! workload contains rows that cross the swap threshold within a refresh
//! window. Workloads the paper singles out as RRS-hostile (gcc, hmmer,
//! bzip2, zeusmp, astar, sphinx3, xz_17, GUPS) get hot-row-heavy profiles.

use serde::{Deserialize, Serialize};

use crate::synth::{AccessPattern, WorkloadSpec};

/// The benchmark suites of the evaluation (Figure 14's x-axis groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// The GUPS random-access kernel.
    Gups,
    /// SPEC CPU2006 (29 workloads).
    Spec2006,
    /// SPEC CPU2017 (22 workloads).
    Spec2017,
    /// The GAP graph benchmarks (6 workloads).
    Gap,
    /// Commercial server traces from the USIMM distribution (5 workloads).
    Commercial,
    /// PARSEC multithreaded benchmarks (7 workloads).
    Parsec,
    /// BIOBENCH bioinformatics benchmarks (2 workloads).
    Biobench,
    /// Random multi-programmed mixes (6 workloads).
    Mix,
}

impl Suite {
    /// All suites in the order the paper plots them.
    #[must_use]
    pub fn all() -> &'static [Suite] {
        &[
            Suite::Gups,
            Suite::Spec2006,
            Suite::Spec2017,
            Suite::Gap,
            Suite::Commercial,
            Suite::Parsec,
            Suite::Biobench,
            Suite::Mix,
        ]
    }

    /// Display label used in the figures (e.g. `SPEC2K6(29)`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Suite::Gups => "GUPS",
            Suite::Spec2006 => "SPEC2K6(29)",
            Suite::Spec2017 => "SPEC2K17(22)",
            Suite::Gap => "GAP(6)",
            Suite::Commercial => "COMMERCIAL(5)",
            Suite::Parsec => "PARSEC(7)",
            Suite::Biobench => "BIOBENCH(2)",
            Suite::Mix => "MIX(6)",
        }
    }
}

/// How aggressive a workload's row-activation behaviour is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Profile {
    /// Hot rows cross the swap threshold many times per window.
    HotRowHeavy,
    /// Some hot rows, moderate intensity.
    Moderate,
    /// Streaming / row-buffer friendly, few swaps.
    Streaming,
    /// Cache-resident, little memory traffic.
    Light,
    /// Uniformly random, very memory intensive (GUPS).
    Random,
}

/// A named workload belonging to a suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedWorkload {
    /// Workload name as used in the paper's figures.
    pub name: &'static str,
    /// The suite it belongs to.
    pub suite: Suite,
    profile: Profile,
}

impl NamedWorkload {
    /// Build the synthetic generator specification for this workload.
    #[must_use]
    pub fn spec(&self) -> WorkloadSpec {
        let (read_fraction, mean_gap, footprint, pattern) = match self.profile {
            Profile::HotRowHeavy => {
                (0.7, 3, 1u64 << 28, AccessPattern::HotRows { hot_rows: 6, hot_fraction: 0.55 })
            }
            Profile::Moderate => {
                (0.7, 8, 1u64 << 29, AccessPattern::HotRows { hot_rows: 16, hot_fraction: 0.25 })
            }
            Profile::Streaming => (0.75, 6, 1u64 << 30, AccessPattern::Streaming { stride: 64 }),
            Profile::Light => (0.8, 40, 1u64 << 22, AccessPattern::RowBurst { burst: 16 }),
            Profile::Random => (0.5, 2, 1u64 << 30, AccessPattern::Uniform),
        };
        WorkloadSpec {
            name: self.name.to_string(),
            footprint_bytes: footprint,
            base_addr: 0,
            read_fraction,
            mean_gap,
            pattern,
        }
    }

    /// Whether this workload is expected to contain rows crossing 800
    /// activations per refresh window (the subset the paper details).
    #[must_use]
    pub fn is_hot_row_workload(&self) -> bool {
        matches!(self.profile, Profile::HotRowHeavy | Profile::Random)
    }
}

macro_rules! workload {
    ($name:literal, $suite:expr, $profile:expr) => {
        NamedWorkload { name: $name, suite: $suite, profile: $profile }
    };
}

/// The full 78-workload list of the evaluation.
#[must_use]
pub fn all_workloads() -> Vec<NamedWorkload> {
    use Profile::*;
    use Suite::*;
    let mut v = vec![workload!("gups", Gups, Random)];
    // SPEC CPU2006 (29).
    let spec06: &[(&'static str, Profile)] = &[
        ("perlbench", Light),
        ("bzip2", HotRowHeavy),
        ("gcc", HotRowHeavy),
        ("bwaves", Streaming),
        ("gamess", Light),
        ("mcf", Moderate),
        ("milc", Streaming),
        ("zeusmp", HotRowHeavy),
        ("gromacs", Light),
        ("cactusADM", Streaming),
        ("leslie3d", Streaming),
        ("namd", Light),
        ("gobmk", Light),
        ("dealII", Light),
        ("soplex", Moderate),
        ("povray", Light),
        ("calculix", Light),
        ("hmmer", HotRowHeavy),
        ("sjeng", Light),
        ("GemsFDTD", Streaming),
        ("libquantum", Streaming),
        ("h264ref", Light),
        ("tonto", Light),
        ("lbm", Streaming),
        ("omnetpp", Moderate),
        ("astar", HotRowHeavy),
        ("wrf", Streaming),
        ("sphinx3", HotRowHeavy),
        ("xalancbmk", Moderate),
    ];
    v.extend(spec06.iter().map(|(n, p)| NamedWorkload { name: n, suite: Spec2006, profile: *p }));
    // SPEC CPU2017 (22).
    let spec17: &[(&'static str, Profile)] = &[
        ("perlbench_17", Light),
        ("gcc_17", Moderate),
        ("bwaves_17", Streaming),
        ("mcf_17", Moderate),
        ("cactuBSSN_17", Streaming),
        ("namd_17", Light),
        ("parest_17", Light),
        ("povray_17", Light),
        ("lbm_17", Streaming),
        ("omnetpp_17", Moderate),
        ("wrf_17", Streaming),
        ("xalancbmk_17", Moderate),
        ("x264_17", Light),
        ("blender_17", Light),
        ("cam4_17", Moderate),
        ("deepsjeng_17", Light),
        ("imagick_17", Light),
        ("leela_17", Light),
        ("nab_17", Light),
        ("exchange2_17", Light),
        ("fotonik3d_17", Streaming),
        ("xz_17", HotRowHeavy),
    ];
    v.extend(spec17.iter().map(|(n, p)| NamedWorkload { name: n, suite: Spec2017, profile: *p }));
    // GAP (6).
    let gap: &[(&'static str, Profile)] = &[
        ("bc", Moderate),
        ("bfs", Moderate),
        ("cc", Moderate),
        ("pr", Moderate),
        ("sssp", Moderate),
        ("tc", Moderate),
    ];
    v.extend(gap.iter().map(|(n, p)| NamedWorkload { name: n, suite: Gap, profile: *p }));
    // COMMERCIAL (5).
    let comm: &[(&'static str, Profile)] = &[
        ("comm1", Moderate),
        ("comm2", Moderate),
        ("comm3", HotRowHeavy),
        ("comm4", Moderate),
        ("comm5", Moderate),
    ];
    v.extend(comm.iter().map(|(n, p)| NamedWorkload { name: n, suite: Commercial, profile: *p }));
    // PARSEC (7).
    let parsec: &[(&'static str, Profile)] = &[
        ("blackscholes", Light),
        ("bodytrack", Light),
        ("canneal", Moderate),
        ("facesim", Streaming),
        ("ferret", Moderate),
        ("fluidanimate", Streaming),
        ("freqmine", Light),
    ];
    v.extend(parsec.iter().map(|(n, p)| NamedWorkload { name: n, suite: Parsec, profile: *p }));
    // BIOBENCH (2).
    let bio: &[(&'static str, Profile)] = &[("mummer", Moderate), ("tigr", HotRowHeavy)];
    v.extend(bio.iter().map(|(n, p)| NamedWorkload { name: n, suite: Biobench, profile: *p }));
    // MIX (6).
    let mix: &[(&'static str, Profile)] = &[
        ("mix1", Moderate),
        ("mix2", HotRowHeavy),
        ("mix3", Moderate),
        ("mix4", Light),
        ("mix5", HotRowHeavy),
        ("mix6", Moderate),
    ];
    v.extend(mix.iter().map(|(n, p)| NamedWorkload { name: n, suite: Mix, profile: *p }));
    v
}

/// The workloads belonging to one suite.
#[must_use]
pub fn workloads_in(suite: Suite) -> Vec<NamedWorkload> {
    all_workloads().into_iter().filter(|w| w.suite == suite).collect()
}

/// The subset of workloads the paper details: those expected to have at
/// least one row with 800+ activations per refresh window.
#[must_use]
pub fn hot_row_workloads() -> Vec<NamedWorkload> {
    all_workloads().into_iter().filter(NamedWorkload::is_hot_row_workload).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_78_workloads() {
        assert_eq!(all_workloads().len(), 78);
    }

    #[test]
    fn suite_sizes_match_the_paper() {
        assert_eq!(workloads_in(Suite::Spec2006).len(), 29);
        assert_eq!(workloads_in(Suite::Spec2017).len(), 22);
        assert_eq!(workloads_in(Suite::Gap).len(), 6);
        assert_eq!(workloads_in(Suite::Commercial).len(), 5);
        assert_eq!(workloads_in(Suite::Parsec).len(), 7);
        assert_eq!(workloads_in(Suite::Biobench).len(), 2);
        assert_eq!(workloads_in(Suite::Mix).len(), 6);
        assert_eq!(workloads_in(Suite::Gups).len(), 1);
    }

    #[test]
    fn names_are_unique() {
        let all = all_workloads();
        let mut names: Vec<_> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn paper_hostile_workloads_are_hot_row_heavy() {
        let all = all_workloads();
        for name in ["gcc", "hmmer", "bzip2", "zeusmp", "astar", "sphinx3", "xz_17", "gups"] {
            let w = all.iter().find(|w| w.name == name).expect(name);
            assert!(w.is_hot_row_workload(), "{name} should be a hot-row workload");
        }
    }

    #[test]
    fn specs_are_generatable() {
        for w in all_workloads().iter().take(5) {
            let trace = w.spec().generate(100, 1);
            assert_eq!(trace.len(), 100);
            assert_eq!(trace.name, w.name);
        }
    }

    #[test]
    fn suite_labels_match_figure_axis() {
        assert_eq!(Suite::Spec2006.label(), "SPEC2K6(29)");
        assert_eq!(Suite::all().len(), 8);
    }
}
