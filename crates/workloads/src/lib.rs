//! # srs-workloads
//!
//! The memory-access trace format and synthetic workload generators used to
//! drive the Scale-SRS performance evaluation. The paper uses Pin-generated
//! traces of SPEC2006, SPEC2017, GAP, COMMERCIAL, PARSEC and BIOBENCH plus
//! GUPS and six mixes (78 workloads in total); those traces are proprietary,
//! so [`suite`] maps every named workload onto a synthetic profile that
//! reproduces the row-activation behaviour the defenses respond to.
//!
//! ## Example
//!
//! ```
//! use srs_workloads::{all_workloads, Suite};
//!
//! let workloads = all_workloads();
//! assert_eq!(workloads.len(), 78);
//! let gcc = workloads.iter().find(|w| w.name == "gcc").unwrap();
//! let trace = gcc.spec().generate(1_000, 42);
//! assert_eq!(trace.len(), 1_000);
//! assert_eq!(gcc.suite, Suite::Spec2006);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod suite;
pub mod synth;
pub mod trace;

pub use suite::{all_workloads, hot_row_workloads, workloads_in, NamedWorkload, Suite};
pub use synth::{hammer_trace, AccessPattern, HammerTrace, WorkloadSpec};
pub use trace::{MemOp, Trace, TraceRecord};
