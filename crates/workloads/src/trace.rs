//! The memory-access trace format consumed by the trace-driven core model.
//!
//! The paper's artifact drives USIMM with Pin-generated traces that have
//! already been filtered through an L1 and L2 cache. Those traces are not
//! redistributable, so this crate generates synthetic traces with the same
//! shape: a stream of records, each saying how many non-memory instructions
//! precede a memory operation at a given physical address.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Whether a trace record reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOp {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One record of a trace: `nonmem_insts` non-memory instructions followed by
/// one memory operation at `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Non-memory instructions executed before this memory operation.
    pub nonmem_insts: u32,
    /// The memory operation kind.
    pub op: MemOp,
    /// Physical byte address accessed.
    pub addr: u64,
}

impl TraceRecord {
    /// Total instructions this record represents (the memory operation plus
    /// the non-memory instructions preceding it).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        u64::from(self.nonmem_insts) + 1
    }
}

/// A named memory-access trace.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Workload name (e.g. `"gcc"`, `"gups"`, `"mix3"`).
    pub name: String,
    /// The trace records, in program order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Create a trace from records.
    #[must_use]
    pub fn new(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        Self { name: name.into(), records }
    }

    /// Number of records (memory operations).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace has no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total instructions represented by the trace.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.records.iter().map(TraceRecord::instructions).sum()
    }

    /// Fraction of memory operations that are reads, in [0, 1].
    #[must_use]
    pub fn read_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let reads = self.records.iter().filter(|r| r.op == MemOp::Read).count();
        reads as f64 / self.records.len() as f64
    }

    /// Memory operations per kilo-instruction (a standard intensity metric).
    #[must_use]
    pub fn mpki(&self) -> f64 {
        let insts = self.total_instructions();
        if insts == 0 {
            return 0.0;
        }
        self.records.len() as f64 * 1000.0 / insts as f64
    }

    /// Serialize the trace to a compact binary representation.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.name.len() + self.records.len() * 13);
        buf.put_u32(self.name.len() as u32);
        buf.put_slice(self.name.as_bytes());
        buf.put_u64(self.records.len() as u64);
        for r in &self.records {
            buf.put_u32(r.nonmem_insts);
            buf.put_u8(match r.op {
                MemOp::Read => 0,
                MemOp::Write => 1,
            });
            buf.put_u64(r.addr);
        }
        buf.freeze()
    }

    /// Deserialize a trace previously produced by [`Trace::to_bytes`].
    ///
    /// Returns `None` if the buffer is truncated or malformed.
    #[must_use]
    pub fn from_bytes(mut data: Bytes) -> Option<Self> {
        if data.remaining() < 4 {
            return None;
        }
        let name_len = data.get_u32() as usize;
        if data.remaining() < name_len + 8 {
            return None;
        }
        let name_bytes = data.copy_to_bytes(name_len);
        let name = String::from_utf8(name_bytes.to_vec()).ok()?;
        let count = data.get_u64() as usize;
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            if data.remaining() < 13 {
                return None;
            }
            let nonmem_insts = data.get_u32();
            let op = match data.get_u8() {
                0 => MemOp::Read,
                1 => MemOp::Write,
                _ => return None,
            };
            let addr = data.get_u64();
            records.push(TraceRecord { nonmem_insts, op, addr });
        }
        Some(Self { name, records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            "sample",
            vec![
                TraceRecord { nonmem_insts: 10, op: MemOp::Read, addr: 0x1000 },
                TraceRecord { nonmem_insts: 0, op: MemOp::Write, addr: 0x2000 },
                TraceRecord { nonmem_insts: 5, op: MemOp::Read, addr: 0x1040 },
            ],
        )
    }

    #[test]
    fn instruction_accounting() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_instructions(), 18);
        assert!((t.read_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert!((t.mpki() - 3.0 * 1000.0 / 18.0).abs() < 1e-9);
    }

    #[test]
    fn binary_round_trip() {
        let t = sample();
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(bytes).expect("well-formed");
        assert_eq!(back, t);
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let t = sample();
        let bytes = t.to_bytes();
        let truncated = bytes.slice(0..bytes.len() - 4);
        assert!(Trace::from_bytes(truncated).is_none());
        assert!(Trace::from_bytes(Bytes::new()).is_none());
    }

    #[test]
    fn empty_trace_metrics() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.mpki(), 0.0);
        assert_eq!(t.read_fraction(), 0.0);
    }
}
