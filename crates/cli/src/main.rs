//! `srs-cli` — the spec-file front door to the experiment engine.
//!
//! Experiments are described as data ([`srs_sim::spec::ExperimentSpec`]
//! JSON files, see `specs/` at the workspace root) and driven without
//! recompilation:
//!
//! ```sh
//! srs-cli run specs/quickstart.json            # stream results to JSONL
//! srs-cli validate specs/quickstart.json       # resolve registries, dry
//! srs-cli validate quickstart.results.jsonl    # schema-check emitted rows
//! srs-cli list defenses                        # registry contents
//! srs-cli check-json BENCH_attack.json         # plain JSON well-formedness
//! ```
//!
//! `run` streams every grid cell through a [`JsonlWriter`]
//! ([`srs_sim::sink::ResultSink`]) as it completes — results land on disk
//! incrementally, with live progress and ETA on standard error — and prints
//! a per-(defense, TRH) summary once the grid drains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use srs_sim::json::Json;
use srs_sim::sink::{Fanout, JsonlWriter, ProgressSink, ResultSink};
use srs_sim::spec::{
    attack_names, defense_names, preset_names, tracker_names, workload_selector_names,
    ExperimentSpec,
};
use srs_sim::ScenarioResult;

const USAGE: &str = "\
srs-cli — spec-file driver for the scale-srs experiment engine

USAGE:
    srs-cli run <spec.json> [--out <file.jsonl>] [--threads <N>] [--quiet]
                [--no-share]
    srs-cli validate <spec.json | results.jsonl>
    srs-cli check-json <file.json>
    srs-cli list <defenses | trackers | workloads | attacks | presets>

COMMANDS:
    run         Resolve the spec and execute its scenario grid, streaming
                one JSON object per cell (JSON Lines) to --out as cells
                complete. Default --out: <spec stem>.results.jsonl in the
                current directory. Progress and ETA go to standard error
                (suppress with --quiet). --no-share disables sharing-aware
                execution (cells that differ only in defense/TRH/tracker
                normally run their common simulation prefix once and fork;
                results are bit-identical either way).
    validate    For a .json spec: parse it, resolve every registry name and
                report the grid size without running anything. For a .jsonl
                results file: check every line against the result-record
                schema.
    check-json  Parse any JSON document with the built-in codec; exits
                non-zero on malformed input.
    list        Print a registry's valid names, one per line.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "run" => cmd_run(&args[1..]),
        "validate" => cmd_validate(&args[1..]),
        "check-json" => cmd_check_json(&args[1..]),
        "list" => cmd_list(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Failed(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

enum CliError {
    /// Bad invocation: exit code 2 plus usage text.
    Usage(String),
    /// The command ran and failed: exit code 1.
    Failed(String),
}

fn fail(message: impl Into<String>) -> CliError {
    CliError::Failed(message.into())
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))
}

fn load_spec(path: &str) -> Result<ExperimentSpec, CliError> {
    let text = read_file(path)?;
    ExperimentSpec::parse(&text).map_err(|e| fail(format!("{path}: {e}")))
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let mut spec_path: Option<&str> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut quiet = false;
    let mut no_share = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                let value =
                    it.next().ok_or_else(|| CliError::Usage("--out needs a path".into()))?;
                out_path = Some(PathBuf::from(value));
            }
            "--threads" => {
                let value =
                    it.next().ok_or_else(|| CliError::Usage("--threads needs a count".into()))?;
                threads = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| CliError::Usage(format!("bad thread count '{value}'")))?,
                );
            }
            "--quiet" => quiet = true,
            "--no-share" => no_share = true,
            other if spec_path.is_none() && !other.starts_with('-') => spec_path = Some(other),
            other => return Err(CliError::Usage(format!("unexpected argument '{other}'"))),
        }
    }
    let spec_path = spec_path.ok_or_else(|| CliError::Usage("run needs a spec file".into()))?;
    let mut spec = load_spec(spec_path)?;
    if let Some(threads) = threads {
        spec.threads = Some(threads);
    }
    if no_share {
        spec.share_prefixes = false;
    }
    let experiment = spec.to_experiment().map_err(|e| fail(format!("{spec_path}: {e}")))?;

    let out_path = out_path.unwrap_or_else(|| {
        let stem = Path::new(spec_path).file_stem().and_then(|s| s.to_str()).unwrap_or("results");
        PathBuf::from(format!("{stem}.results.jsonl"))
    });
    let file = std::fs::File::create(&out_path)
        .map_err(|e| fail(format!("cannot create {}: {e}", out_path.display())))?;
    let mut writer = JsonlWriter::new(BufWriter::new(file));
    let mut summary = SummarySink::default();
    let total = experiment.job_count();
    eprintln!(
        "running '{}': {} cells ({} preset{}) -> {}",
        spec.name,
        total,
        spec.preset,
        if spec.share_prefixes { ", shared prefixes" } else { ", no sharing" },
        out_path.display()
    );

    {
        let mut sinks: Vec<&mut dyn ResultSink> = vec![&mut writer, &mut summary];
        let mut progress = ProgressSink::new(total, std::io::stderr());
        if !quiet {
            sinks.push(&mut progress);
        }
        let mut fanout = Fanout::new(sinks);
        experiment.run_with_sink(&mut fanout);
    }

    let records = writer.records_written();
    writer.finish().map_err(|e| fail(format!("writing {}: {e}", out_path.display())))?;
    println!("wrote {records} records to {}", out_path.display());
    summary.print(&mut std::io::stdout().lock());
    Ok(())
}

/// Streaming per-(defense, TRH) aggregation — the run summary accumulates
/// as cells arrive, so it costs O(groups), not O(cells), of memory.
#[derive(Default)]
struct SummarySink {
    groups: BTreeMap<(String, u64), (f64, usize, u64)>,
}

impl ResultSink for SummarySink {
    fn on_result(&mut self, result: &ScenarioResult) {
        let key = (result.scenario.defense.to_string(), result.scenario.t_rh);
        let entry = self.groups.entry(key).or_insert((0.0, 0, 0));
        entry.0 += result.normalized();
        entry.1 += 1;
        entry.2 += u64::from(result.result.detail.security.as_ref().is_some_and(|s| s.trh_crossed));
    }
}

impl SummarySink {
    fn print(&self, out: &mut impl Write) {
        if self.groups.is_empty() {
            return;
        }
        let _ = writeln!(
            out,
            "\n{:>14} {:>6} {:>7} {:>10} {:>12}",
            "defense", "TRH", "cells", "mean norm", "TRH crossed"
        );
        for ((defense, t_rh), (sum, count, crossed)) in &self.groups {
            let _ = writeln!(
                out,
                "{defense:>14} {t_rh:>6} {count:>7} {:>10.3} {crossed:>12}",
                sum / *count as f64,
            );
        }
    }
}

fn cmd_validate(args: &[String]) -> Result<(), CliError> {
    let [path] = args else {
        return Err(CliError::Usage("validate needs exactly one file".into()));
    };
    if Path::new(path).extension().is_some_and(|e| e == "jsonl") {
        validate_results(path)
    } else {
        let spec = load_spec(path)?;
        let experiment = spec.to_experiment().map_err(|e| fail(format!("{path}: {e}")))?;
        println!(
            "{path}: OK — '{}' resolves to {} cells ({} preset{})",
            spec.name,
            experiment.job_count(),
            spec.preset,
            if spec.patch.is_empty() { "" } else { ", patched" },
        );
        Ok(())
    }
}

fn validate_results(path: &str) -> Result<(), CliError> {
    use std::io::BufRead;
    // Results files are written streaming and can be arbitrarily large;
    // validate them line by line rather than slurping the whole file.
    let file = std::fs::File::open(path).map_err(|e| fail(format!("cannot read {path}: {e}")))?;
    let mut records = 0usize;
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| fail(format!("{path}:{}: {e}", lineno + 1)))?;
        if line.trim().is_empty() {
            continue;
        }
        let record = Json::parse(&line).map_err(|e| fail(format!("{path}:{}: {e}", lineno + 1)))?;
        validate_result_record(&record)
            .map_err(|message| fail(format!("{path}:{}: {message}", lineno + 1)))?;
        records += 1;
    }
    if records == 0 {
        return Err(fail(format!("{path}: no result records")));
    }
    println!("{path}: OK — {records} result records");
    Ok(())
}

/// The schema of one emitted result record
/// (`srs_sim::scenario::ScenarioResult::to_json`).
fn validate_result_record(record: &Json) -> Result<(), String> {
    let scenario = record.get("scenario").ok_or("missing 'scenario'")?;
    for key in ["defense", "tracker", "workload", "suite"] {
        scenario
            .get(key)
            .and_then(Json::as_str)
            .ok_or(format!("scenario.{key} must be a string"))?;
    }
    for key in ["index", "t_rh"] {
        scenario
            .get(key)
            .and_then(Json::as_u64)
            .ok_or(format!("scenario.{key} must be an integer"))?;
    }
    let result = record.get("result").ok_or("missing 'result'")?;
    let norm = result
        .get("normalized_performance")
        .and_then(Json::as_f64)
        .ok_or("result.normalized_performance must be a number")?;
    if !(0.0..=1.5).contains(&norm) {
        return Err(format!("normalized performance {norm} out of range"));
    }
    let detail = result.get("detail").ok_or("missing 'result.detail'")?;
    for key in ["elapsed_ns", "instructions", "swaps"] {
        detail.get(key).and_then(Json::as_u64).ok_or(format!("detail.{key} must be an integer"))?;
    }
    // Attacked cells must carry a security report, benign cells a null.
    let attacked = scenario.get("attack").is_some_and(|a| !a.is_null());
    let security = detail.get("security").ok_or("missing 'detail.security'")?;
    if attacked && security.is_null() {
        return Err("attacked cell has no security report".into());
    }
    if !security.is_null() {
        security
            .get("max_victim_pressure")
            .and_then(Json::as_u64)
            .ok_or("security.max_victim_pressure must be an integer")?;
    }
    Ok(())
}

fn cmd_check_json(args: &[String]) -> Result<(), CliError> {
    let [path] = args else {
        return Err(CliError::Usage("check-json needs exactly one file".into()));
    };
    let text = read_file(path)?;
    Json::parse(&text).map_err(|e| fail(format!("{path}: {e}")))?;
    println!("{path}: OK");
    Ok(())
}

fn cmd_list(args: &[String]) -> Result<(), CliError> {
    let [what] = args else {
        return Err(CliError::Usage(
            "list needs one of: defenses, trackers, workloads, attacks, presets".into(),
        ));
    };
    let names: Vec<String> = match what.as_str() {
        "defenses" => defense_names().iter().map(ToString::to_string).collect(),
        "trackers" => tracker_names().iter().map(ToString::to_string).collect(),
        "presets" => preset_names().iter().map(ToString::to_string).collect(),
        "attacks" => attack_names(),
        "workloads" => workload_selector_names(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown registry '{other}'; valid: defenses, trackers, workloads, attacks, presets"
            )));
        }
    };
    for name in names {
        println!("{name}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use srs_sim::ToJson;

    #[test]
    fn result_record_schema_accepts_real_records_and_rejects_broken_ones() {
        // Build a real record by running the tiniest possible grid.
        let spec = ExperimentSpec::parse(
            r#"{
                "name": "schema",
                "patch": {"cores": 1, "target_instructions": 2000,
                          "trace_records_per_core": 1000, "max_sim_ns": 2000000},
                "defenses": ["scale-srs"],
                "workloads": ["gups"],
                "threads": 1
            }"#,
        )
        .unwrap();
        let results = spec.to_experiment().unwrap().run();
        assert_eq!(results.len(), 1);
        let record = results[0].to_json();
        validate_result_record(&record).expect("real records pass the schema");

        let broken = Json::parse(r#"{"scenario": {"index": 0}}"#).unwrap();
        assert!(validate_result_record(&broken).is_err());
    }
}
