//! `srs-cli` — the spec-file front door to the experiment engine.
//!
//! Experiments are described as data ([`srs_sim::spec::ExperimentSpec`]
//! JSON files, see `specs/` at the workspace root) and driven without
//! recompilation:
//!
//! ```sh
//! srs-cli run specs/quickstart.json            # stream results to JSONL
//! srs-cli plan specs/fig12.json --shards 4     # split into shard manifests
//! srs-cli run fig12.shard0.json                # run one shard
//! srs-cli run fig12.shard0.json --resume       # continue after a crash
//! srs-cli merge fig12.shard*.results.jsonl --out fig12.results.jsonl
//! srs-cli validate specs/quickstart.json       # resolve registries, dry
//! srs-cli validate quickstart.results.jsonl    # schema-check emitted rows
//! srs-cli list defenses                        # registry contents
//! srs-cli check-json BENCH_attack.json         # plain JSON well-formedness
//! ```
//!
//! `run` streams every grid cell through a crash-safe
//! [`srs_sim::campaign::CheckpointSink`] — results land on disk
//! incrementally with an atomically updated `<out>.manifest.json` beside
//! them, live progress and ETA go to standard error, and a per-(defense,
//! TRH) summary prints once the grid drains. A killed run continues with
//! `--resume`; a cell that keeps panicking is recorded in the manifest and
//! the campaign degrades (exit code 3) instead of aborting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use srs_sim::campaign::{
    merge_results, plan_shards, Campaign, CampaignSink, CellFailure, CheckpointSink, ShardManifest,
};
use srs_sim::json::{obj, Json, ToJson};
use srs_sim::sink::{validate_result_record, ProgressSink, ResultSink};
use srs_sim::spec::{
    attack_names, defense_names, preset_names, tracker_names, workload_selector_names,
    ExperimentSpec,
};
use srs_sim::telemetry::{TelemetryConfig, TelemetrySidecarSink};
use srs_sim::{
    run_workload, AttributionReport, FaultInjection, RetryPolicy, ScenarioResult, UnitStats,
};

const USAGE: &str = "\
srs-cli — spec-file driver for the scale-srs experiment engine

USAGE:
    srs-cli run <spec.json | shard.json> [--out <file.jsonl>] [--resume]
                [--force] [--threads <N>] [--retries <N>] [--quiet]
                [--no-share] [--telemetry] [--attribution]
    srs-cli trace <spec.json> [--cell <idx>] [--out <file.json>] [--force]
    srs-cli search <spec.json> [--out <file.jsonl>] [--resume] [--force]
                [--generations <N>] [--population <N>] [--cell <idx>]
                [--threads <N>] [--quiet]
    srs-cli search --replay <best.json>
    srs-cli report <results.jsonl | search.jsonl>
    srs-cli plan <spec.json> --shards <N> [--out-dir <dir>]
    srs-cli merge <results.jsonl>... --out <file.jsonl> [--force]
    srs-cli validate <spec.json | shard.json | results.jsonl>
    srs-cli check-json <file.json>
    srs-cli list [defenses | trackers | workloads | attacks | presets] [--json]

COMMANDS:
    run         Resolve the spec (or shard manifest) and execute its cells,
                streaming one JSON object per cell (JSON Lines) to --out as
                cells complete, with a crash-safe checkpoint manifest at
                <out>.manifest.json. Default --out: <input stem>.results.jsonl
                in the current directory (the chosen path is printed; an
                existing file is an error unless --force or --resume).
                --resume continues an interrupted run: the manifest is
                replayed, a torn final record is truncated, completed cells
                are skipped and previously failed cells are retried.
                --threads <N> sets the worker-thread count; 0 (or omitting
                the flag) means auto — the machine's available parallelism,
                capped at 8. --retries <N> sets attempts per cell before it
                is recorded as failed (default 3). --no-share disables
                sharing-aware execution (results are bit-identical either
                way). --telemetry arms the simulated-time recorder and
                writes a per-cell sidecar stream to <out stem>.telemetry.jsonl;
                the results JSONL stays byte-identical to a disarmed run
                (CI-enforced). --attribution (implies --no-share) re-runs
                with per-subsystem stopwatches armed, prints the wall-time
                share table, and appends it as a JSONL footer record
                {\"attribution\": ...} to the output stream. Exit code 3
                means the campaign completed degraded: some cells failed
                and are listed in the manifest.
    trace       Run one grid cell (default --cell 0) of a spec with
                telemetry armed and export the event trace as Chrome/
                Perfetto trace-event JSON (load it at ui.perfetto.dev or
                chrome://tracing). Default --out:
                <spec stem>.cell<idx>.trace.json.
    search      Run the adaptive attack search the spec's `search` block
                describes: warm the selected grid cell once, then evolve
                candidate attack patterns generation by generation, scoring
                every candidate on its own fork of the warm snapshot. One
                JSON line per generation streams to --out (default:
                <input stem>.search.jsonl) with a crash-safe manifest
                beside it; the run is deterministic per seed (byte-identical
                stream) and a killed run continues with --resume to the
                same bytes. The champion lands in <out stem>.best.json;
                --generations/--population/--cell override the spec block.
                --replay <best.json> re-simulates a recorded champion from
                scratch and byte-diffs its security report against the
                recorded one (exit 1 on divergence).
    report      Render per-(defense, TRH) summary tables and normalized-
                performance histograms from an existing results JSONL
                without re-simulating anything. Pointed at a search stream,
                prints the best-fitness-per-generation curve instead.
    plan        Deterministically split a spec's grid into N shard
                manifests (<stem>.shard<k>.json, self-contained; run each
                with `srs-cli run`). Shared-prefix trunk groups are never
                split across shards, so sharding never changes any cell's
                bits.
    merge       Validate shard result files (schema, no gaps, no duplicate
                cell indices) and merge them into one submission-ordered
                file, byte-identical to an uninterrupted unsharded run.
    validate    For a .json spec or shard manifest: parse it, resolve every
                registry name and report the grid size without running
                anything. For a .jsonl results file: check every line
                against the result-record schema (a truncated final line —
                a crash artifact — is a warning, not an error).
    check-json  Parse any JSON document with the built-in codec; exits
                non-zero on malformed input.
    list        Print a registry's valid names, one per line — or, with
                --json, machine-readable JSON (all registries when no
                registry is named).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "run" => cmd_run(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "search" => cmd_search(&args[1..]),
        "report" => cmd_report(&args[1..]),
        "plan" => cmd_plan(&args[1..]),
        "merge" => cmd_merge(&args[1..]),
        "validate" => cmd_validate(&args[1..]),
        "check-json" => cmd_check_json(&args[1..]),
        "list" => cmd_list(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    };
    match result {
        Ok(code) => code,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Failed(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Exit code for a campaign that completed but left failed cells behind.
const EXIT_DEGRADED: u8 = 3;

#[derive(Debug)]
enum CliError {
    /// Bad invocation: exit code 2 plus usage text.
    Usage(String),
    /// The command ran and failed: exit code 1.
    Failed(String),
}

fn fail(message: impl Into<String>) -> CliError {
    CliError::Failed(message.into())
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))
}

fn load_spec(path: &str) -> Result<ExperimentSpec, CliError> {
    let text = read_file(path)?;
    ExperimentSpec::parse(&text).map_err(|e| fail(format!("{path}: {e}")))
}

/// What `run` was pointed at: a whole-grid spec, or one shard of one.
enum RunInput {
    Spec(ExperimentSpec),
    Shard(ShardManifest),
}

/// Load a `run`/`validate` input, dispatching on the `shard_index` key
/// (spec files reject unknown keys, so the two forms cannot be confused).
fn load_run_input(path: &str) -> Result<RunInput, CliError> {
    let text = read_file(path)?;
    let json = Json::parse(&text).map_err(|e| fail(format!("{path}: {e}")))?;
    if ShardManifest::is_shard_json(&json) {
        Ok(RunInput::Shard(ShardManifest::from_json(path, &json).map_err(|e| fail(e.to_string()))?))
    } else {
        Ok(RunInput::Spec(
            ExperimentSpec::from_json(&json).map_err(|e| fail(format!("{path}: {e}")))?,
        ))
    }
}

/// Derive `<stem>.<suffix>` in the current directory from an input path —
/// or error when the path has no usable stem (e.g. `.json`), instead of
/// silently inventing a name.
fn derive_out_path(input: &str, suffix: &str) -> Result<PathBuf, CliError> {
    let stem = Path::new(input)
        .file_stem()
        .and_then(|s| s.to_str())
        // A dotfile's "stem" is its whole name (`.json` -> `.json`);
        // refuse to derive hidden output names from it.
        .filter(|s| !s.is_empty() && !s.starts_with('.'))
        .ok_or_else(|| {
            CliError::Usage(format!("cannot derive an output name from '{input}'; pass --out"))
        })?;
    Ok(PathBuf::from(format!("{stem}.{suffix}")))
}

fn cmd_run(args: &[String]) -> Result<ExitCode, CliError> {
    let mut input_path: Option<&str> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut retries: Option<u32> = None;
    let mut quiet = false;
    let mut no_share = false;
    let mut resume = false;
    let mut force = false;
    let mut telemetry = false;
    let mut attribution = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                let value =
                    it.next().ok_or_else(|| CliError::Usage("--out needs a path".into()))?;
                out_path = Some(PathBuf::from(value));
            }
            "--threads" => {
                let value =
                    it.next().ok_or_else(|| CliError::Usage("--threads needs a count".into()))?;
                threads = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| CliError::Usage(format!("bad thread count '{value}'")))?,
                );
            }
            "--retries" => {
                let value =
                    it.next().ok_or_else(|| CliError::Usage("--retries needs a count".into()))?;
                let attempts = value
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| CliError::Usage(format!("bad retry count '{value}'")))?;
                retries = Some(attempts);
            }
            "--quiet" => quiet = true,
            "--no-share" => no_share = true,
            "--resume" => resume = true,
            "--force" => force = true,
            "--telemetry" => telemetry = true,
            "--attribution" => attribution = true,
            other if input_path.is_none() && !other.starts_with('-') => input_path = Some(other),
            other => return Err(CliError::Usage(format!("unexpected argument '{other}'"))),
        }
    }
    let input_path = input_path.ok_or_else(|| CliError::Usage("run needs a spec file".into()))?;
    let (mut spec, shard) = match load_run_input(input_path)? {
        RunInput::Spec(spec) => (spec, None),
        RunInput::Shard(shard) => (shard.spec.clone(), Some(shard)),
    };
    if let Some(threads) = threads {
        spec.threads = Some(threads);
    }
    if no_share {
        spec.share_prefixes = false;
    }
    if attribution {
        // Shared trunk groups are not attributed; force solo execution so
        // every defended cell lands in the breakdown.
        spec.share_prefixes = false;
    }
    if telemetry && spec.telemetry.is_none() {
        spec.telemetry = Some(TelemetryConfig::armed());
    }
    let experiment = spec.to_experiment().map_err(|e| fail(format!("{input_path}: {e}")))?;
    let total_cells = experiment.job_count();

    // The cell set this invocation is responsible for, and the campaign
    // name its manifest records (sibling shards share the name).
    let (campaign_name, cells): (String, Vec<usize>) = match &shard {
        Some(shard) => {
            if shard.total_cells != total_cells {
                return Err(fail(format!(
                    "{input_path}: shard was planned over {} cells but the spec now \
                     resolves to {total_cells}; re-plan the campaign",
                    shard.total_cells
                )));
            }
            (shard.campaign.clone(), shard.cells.clone())
        }
        None => (spec.name.clone(), (0..total_cells).collect()),
    };

    let out_path = match out_path {
        Some(path) => path,
        None => derive_out_path(input_path, "results.jsonl")?,
    };
    if !resume && !force && out_path.exists() {
        return Err(fail(format!(
            "{} already exists; pass --force to overwrite it or --resume to continue it",
            out_path.display()
        )));
    }

    // Open the crash-safe output: fresh, or resumed from its manifest.
    let (checkpoint, completed, skipped) = if resume {
        let (checkpoint, state) =
            CheckpointSink::resume(&out_path, &campaign_name, total_cells, &cells)
                .map_err(|e| fail(e.to_string()))?;
        if state.truncated_bytes > 0 {
            eprintln!(
                "truncated a torn final record ({} bytes) left by a crashed run",
                state.truncated_bytes
            );
        }
        for failure in &state.retried_failures {
            eprintln!(
                "retrying cell {} (failed after {} attempts: {})",
                failure.index, failure.attempts, failure.error
            );
        }
        let skipped = state.completed.len();
        (checkpoint, state.completed, skipped)
    } else {
        let checkpoint =
            CheckpointSink::create(&out_path, &campaign_name, total_cells, cells.clone())
                .map_err(|e| fail(e.to_string()))?;
        (checkpoint, Vec::new(), 0)
    };

    let mut campaign = Campaign::new(experiment)
        .with_cells(cells)
        .with_completed(completed)
        .with_fault(FaultInjection::from_env());
    if let Some(max_attempts) = retries {
        campaign = campaign.with_retry(RetryPolicy { max_attempts, ..RetryPolicy::default() });
    }
    let attribution_total = attribution
        .then(|| std::sync::Arc::new(std::sync::Mutex::new(AttributionReport::default())));
    if let Some(total) = &attribution_total {
        campaign = campaign.with_attribution(total.clone());
    }
    // The telemetry sidecar rides beside the results stream; the results
    // JSONL itself stays byte-identical armed or disarmed (CI-enforced).
    let telemetry_path = telemetry.then(|| out_path.with_extension("telemetry.jsonl"));
    let telemetry_sink = match &telemetry_path {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| fail(format!("cannot create {}: {e}", path.display())))?;
            Some(TelemetrySidecarSink::new(std::io::BufWriter::new(file)))
        }
        None => None,
    };
    let remaining = campaign.planned().len();
    let shard_note = match &shard {
        Some(s) => format!(", shard {}/{}", s.shard_index, s.shard_count),
        None => String::new(),
    };
    eprintln!(
        "running '{campaign_name}': {remaining} of {total_cells} cells ({} preset{}{}{}) -> {}",
        spec.preset,
        if spec.share_prefixes { ", shared prefixes" } else { ", no sharing" },
        shard_note,
        if skipped > 0 { format!(", {skipped} already done") } else { String::new() },
        out_path.display()
    );

    let mut sinks = RunSinks {
        checkpoint,
        summary: SummarySink::default(),
        progress: (!quiet)
            .then(|| ProgressSink::new(remaining, std::io::stderr()).with_offset(skipped)),
        telemetry: telemetry_sink,
        heartbeat: !quiet,
    };
    let report = campaign.run(&mut sinks);
    let manifest = sinks.checkpoint.finish().map_err(|e| fail(e.to_string()))?;
    if let Some(sink) = sinks.telemetry.take() {
        let Some(path) = telemetry_path.as_ref() else {
            return Err(fail(
                "internal: telemetry sidecar sink without a sidecar path".to_string(),
            ));
        };
        let records = sink.records_written();
        sink.finish().map_err(|e| fail(format!("cannot write {}: {e}", path.display())))?;
        println!("wrote {records} telemetry sidecar records to {}", path.display());
    }

    println!(
        "wrote {} records to {} ({} committed in total)",
        report.completed,
        out_path.display(),
        manifest.completed.len()
    );
    sinks.summary.print(&mut std::io::stdout().lock());
    if let Some(total) = attribution_total {
        // A poisoned lock only means a worker panicked mid-merge; the
        // partial ledger is still printable.
        let total = *total.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        print_attribution(&total, &mut std::io::stdout().lock());
        // Appended after the committed results, the footer sits past the
        // manifest's bytes_committed mark: `validate`, `report` and merge
        // inputs skip it, and `--resume` truncates it before continuing.
        let footer = obj(vec![("attribution", total.to_json())]).to_compact();
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&out_path)
            .map_err(|e| fail(format!("cannot append to {}: {e}", out_path.display())))?;
        writeln!(file, "{footer}")
            .map_err(|e| fail(format!("cannot append to {}: {e}", out_path.display())))?;
    }
    if report.failed.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "campaign degraded: {} cells failed (recorded in the manifest):",
            report.failed.len()
        );
        for failure in &report.failed {
            eprintln!(
                "  cell {} after {} attempts: {}",
                failure.index, failure.attempts, failure.error
            );
        }
        eprintln!("rerun with --resume to retry the failed cells");
        Ok(ExitCode::from(EXIT_DEGRADED))
    }
}

/// The `run` command's composite campaign sink: crash-safe JSONL + live
/// progress + the end-of-run summary table.
struct RunSinks {
    checkpoint: CheckpointSink,
    summary: SummarySink,
    progress: Option<ProgressSink<std::io::Stderr>>,
    telemetry: Option<TelemetrySidecarSink<std::io::BufWriter<std::fs::File>>>,
    heartbeat: bool,
}

impl CampaignSink for RunSinks {
    fn on_scenario_start(&mut self, scenario: &srs_sim::Scenario) {
        if let Some(progress) = &mut self.progress {
            progress.on_scenario_start(scenario);
        }
    }

    fn on_result(&mut self, result: &ScenarioResult) {
        self.checkpoint.on_result(result);
        self.summary.on_result(result);
        if let Some(telemetry) = &mut self.telemetry {
            telemetry.on_result(result);
        }
        if let Some(progress) = &mut self.progress {
            progress.on_result(result);
        }
    }

    fn on_unit_stats(&mut self, stats: &UnitStats) {
        self.checkpoint.on_unit_stats(stats);
        if self.heartbeat {
            eprintln!(
                "unit done: {} in {:.3}s ({} attempt{})",
                describe_cells(&stats.cells),
                stats.wall_ns as f64 / 1e9,
                stats.attempts,
                if stats.attempts == 1 { "" } else { "s" },
            );
        }
    }

    fn on_cell_failed(&mut self, failure: &CellFailure) {
        self.checkpoint.on_cell_failed(failure);
        eprintln!(
            "cell {} failed after {} attempts: {}",
            failure.index, failure.attempts, failure.error
        );
    }

    fn on_finish(&mut self, report: &srs_sim::CampaignReport) {
        if let Some(progress) = &mut self.progress {
            progress.on_finish(report.completed);
        }
    }
}

/// Render a unit's cell set compactly: `cell 3`, `cells 0-4` for a
/// contiguous run, or the literal list otherwise.
fn describe_cells(cells: &[usize]) -> String {
    match cells {
        [] => "no cells".to_string(),
        [only] => format!("cell {only}"),
        [first, .., last] if last - first + 1 == cells.len() => format!("cells {first}-{last}"),
        _ => format!("cells {cells:?}"),
    }
}

fn print_attribution(report: &AttributionReport, out: &mut impl Write) {
    let wall = report.wall_ns.max(1) as f64;
    let rows = [
        ("controller", report.controller_schedule_ns),
        ("tracker", report.tracker_ns),
        ("defense", report.defense_ns),
        ("rit", report.rit_ns),
        ("security", report.security_ns),
        ("other", report.other_ns),
    ];
    let _ = writeln!(
        out,
        "\nwall-time attribution over {:.3}s of defended solo cells:",
        report.wall_ns as f64 / 1e9
    );
    let _ = writeln!(out, "{:>12} {:>10} {:>7}", "subsystem", "seconds", "share");
    for (name, ns) in rows {
        let _ = writeln!(
            out,
            "{name:>12} {:>10.3} {:>6.1}%",
            ns as f64 / 1e9,
            ns as f64 / wall * 100.0
        );
    }
}

fn cmd_trace(args: &[String]) -> Result<ExitCode, CliError> {
    let mut input_path: Option<&str> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut cell = 0usize;
    let mut force = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cell" => {
                let value =
                    it.next().ok_or_else(|| CliError::Usage("--cell needs an index".into()))?;
                cell = value
                    .parse::<usize>()
                    .map_err(|_| CliError::Usage(format!("bad cell index '{value}'")))?;
            }
            "--out" => {
                let value =
                    it.next().ok_or_else(|| CliError::Usage("--out needs a path".into()))?;
                out_path = Some(PathBuf::from(value));
            }
            "--force" => force = true,
            other if input_path.is_none() && !other.starts_with('-') => input_path = Some(other),
            other => return Err(CliError::Usage(format!("unexpected argument '{other}'"))),
        }
    }
    let input_path = input_path.ok_or_else(|| CliError::Usage("trace needs a spec file".into()))?;
    // A shard manifest works too: the embedded spec is traced and --cell
    // indexes the full grid, exactly as in the campaign's results.
    let mut spec = match load_run_input(input_path)? {
        RunInput::Spec(spec) => spec,
        RunInput::Shard(shard) => shard.spec,
    };
    // Arm the recorder, keeping any capacities the spec configured.
    let mut telemetry = spec.telemetry.take().unwrap_or_else(TelemetryConfig::armed);
    telemetry.enabled = true;
    spec.telemetry = Some(telemetry);
    let experiment = spec.to_experiment().map_err(|e| fail(format!("{input_path}: {e}")))?;
    let scenarios = experiment.scenarios();
    let Some(scenario) = scenarios.get(cell) else {
        return Err(CliError::Usage(format!(
            "--cell {cell} is out of range: '{}' resolves to {} cells",
            spec.name,
            scenarios.len()
        )));
    };
    let out_path = match out_path {
        Some(path) => path,
        None => derive_out_path(input_path, &format!("cell{cell}.trace.json"))?,
    };
    if !force && out_path.exists() {
        return Err(fail(format!(
            "{} already exists; pass --force to overwrite it",
            out_path.display()
        )));
    }
    eprintln!(
        "tracing cell {cell}: {} on {} trh={}",
        scenario.defense, scenario.workload.name, scenario.t_rh
    );
    let config = experiment.config_for(scenario);
    let result = run_workload(&config, &scenario.workload);
    let report =
        result.telemetry.as_ref().ok_or_else(|| fail("simulation returned no telemetry report"))?;
    let label = format!("{} {} trh={}", scenario.workload.name, scenario.defense, scenario.t_rh);
    let mut text = report.to_perfetto(&label).to_pretty();
    text.push('\n');
    std::fs::write(&out_path, text)
        .map_err(|e| fail(format!("cannot write {}: {e}", out_path.display())))?;
    println!(
        "wrote {} trace events ({} dropped) to {} — load it at ui.perfetto.dev",
        report.events.len(),
        report.events_dropped,
        out_path.display()
    );
    for (name, value) in &report.counters {
        println!("  {name} = {value}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_search(args: &[String]) -> Result<ExitCode, CliError> {
    let mut input_path: Option<&str> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut replay_path: Option<&str> = None;
    let mut generations: Option<usize> = None;
    let mut population: Option<usize> = None;
    let mut cell: Option<usize> = None;
    let mut threads = 0usize;
    let mut resume = false;
    let mut force = false;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let count_flag = |name: &str, it: &mut std::slice::Iter<String>| {
            let value =
                it.next().ok_or_else(|| CliError::Usage(format!("{name} needs a count")))?;
            value
                .parse::<usize>()
                .map_err(|_| CliError::Usage(format!("bad {name} value '{value}'")))
        };
        match arg.as_str() {
            "--out" => {
                let value =
                    it.next().ok_or_else(|| CliError::Usage("--out needs a path".into()))?;
                out_path = Some(PathBuf::from(value));
            }
            "--replay" => {
                let value =
                    it.next().ok_or_else(|| CliError::Usage("--replay needs a path".into()))?;
                replay_path = Some(value);
            }
            "--generations" => generations = Some(count_flag("--generations", &mut it)?),
            "--population" => population = Some(count_flag("--population", &mut it)?),
            "--cell" => cell = Some(count_flag("--cell", &mut it)?),
            "--threads" => threads = count_flag("--threads", &mut it)?,
            "--resume" => resume = true,
            "--force" => force = true,
            "--quiet" => quiet = true,
            other if input_path.is_none() && !other.starts_with('-') => input_path = Some(other),
            other => return Err(CliError::Usage(format!("unexpected argument '{other}'"))),
        }
    }

    if let Some(replay_path) = replay_path {
        if input_path.is_some() || resume || force {
            return Err(CliError::Usage(
                "--replay takes only the recorded best.json, no spec or run flags".into(),
            ));
        }
        return cmd_search_replay(replay_path);
    }

    let input_path =
        input_path.ok_or_else(|| CliError::Usage("search needs a spec file".into()))?;
    let mut spec = load_spec(input_path)?;
    let mut search = spec.search.take().unwrap_or_else(|| {
        // A plain grid spec still searches: the block's defaults apply and
        // the CLI overrides refine them.
        srs_sim::SearchSpec::default()
    });
    if let Some(generations) = generations {
        search.generations = generations;
    }
    if let Some(population) = population {
        search.population = population;
    }
    if let Some(cell) = cell {
        search.cell = cell;
    }
    spec.search = Some(search);

    let out_path = match out_path {
        Some(path) => path,
        None => derive_out_path(input_path, "search.jsonl")?,
    };
    if !resume && !force && out_path.exists() {
        return Err(fail(format!(
            "{} already exists; pass --force to overwrite it or --resume to continue it",
            out_path.display()
        )));
    }
    let Some(block) = spec.search.as_ref() else {
        return Err(fail(format!("{input_path}: spec has no search block")));
    };
    let generations_total = block.generations;
    eprintln!(
        "searching '{}' cell {}: population {}, {} generations, warm-up {} ns -> {}",
        spec.name,
        block.cell,
        block.population,
        block.generations,
        block.warmup_ns,
        out_path.display()
    );

    let mut curve: Vec<(usize, f64, Option<u64>, f64)> = Vec::new();
    let outcome = {
        let mut progress = |summary: &srs_sim::search::GenerationSummary| {
            let best = &summary.best.1;
            curve.push((
                summary.index,
                best.pressure_ratio(),
                best.first_crossing_ns,
                summary.best_so_far.1.pressure_ratio(),
            ));
            if !quiet {
                eprintln!(
                    "generation {}: best '{}' ratio {:.3}{}",
                    summary.index,
                    summary.best.0.name,
                    best.pressure_ratio(),
                    match best.first_crossing_ns {
                        Some(ns) => format!(", crossed at {ns} ns"),
                        None => String::new(),
                    }
                );
            }
        };
        srs_sim::run_search(&spec, &out_path, resume, threads, None, &mut progress)
            .map_err(|e| fail(e.to_string()))?
    };
    if outcome.truncated_bytes > 0 {
        eprintln!(
            "truncated a torn final record ({} bytes) left by a crashed run",
            outcome.truncated_bytes
        );
    }

    let best_path = out_path.with_extension("best.json");
    let mut text = srs_sim::best_record(&spec, &outcome).to_pretty();
    text.push('\n');
    std::fs::write(&best_path, text)
        .map_err(|e| fail(format!("cannot write {}: {e}", best_path.display())))?;

    let out = &mut std::io::stdout().lock();
    let _ = writeln!(
        out,
        "committed {} of {} generations to {} ({} scored this run)",
        outcome.generations_done,
        generations_total,
        out_path.display(),
        outcome.generations_run,
    );
    if !curve.is_empty() {
        let _ = writeln!(
            out,
            "\n{:>10} {:>12} {:>16} {:>12}",
            "generation", "best ratio", "crossed at (ns)", "so-far ratio"
        );
        for (index, ratio, crossing, so_far) in &curve {
            let _ = writeln!(
                out,
                "{index:>10} {ratio:>12.3} {:>16} {so_far:>12.3}",
                crossing.map_or_else(|| "-".to_string(), |ns| ns.to_string()),
            );
        }
    }
    let best = &outcome.best;
    let _ = writeln!(
        out,
        "\nworst_case_found: '{}' ({}) ratio {:.3}{} -> {}",
        best.candidate.name,
        best.candidate.pattern.label(),
        best.score.pressure_ratio(),
        match best.score.first_crossing_ns {
            Some(ns) => format!(", first crossing at {ns} ns"),
            None => ", never crossed".to_string(),
        },
        best_path.display(),
    );
    Ok(ExitCode::SUCCESS)
}

/// `search --replay`: re-simulate a recorded champion from scratch and
/// byte-diff its security report against the recorded score.
fn cmd_search_replay(path: &str) -> Result<ExitCode, CliError> {
    let text = read_file(path)?;
    let record = Json::parse(&text).map_err(|e| fail(format!("{path}: {e}")))?;
    let replay = srs_sim::replay_best(&record).map_err(|e| fail(format!("{path}: {e}")))?;
    if replay.matches() {
        println!(
            "{path}: OK — replayed '{}' reproduces the recorded report byte-for-byte",
            replay.attack
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "{path}: replay of '{}' DIVERGED from the recorded report\n recorded: {}\n replayed: {}",
            replay.attack, replay.recorded, replay.replayed
        );
        Err(fail("replay did not reproduce the recorded score"))
    }
}

/// Per-(defense, TRH) aggregate for `report`, including a coarse
/// distribution of normalized performance (`REPORT_BUCKETS` buckets of
/// width [`REPORT_BUCKET_WIDTH`] starting at 0).
struct ReportGroup {
    count: usize,
    sum: f64,
    min: f64,
    max: f64,
    crossed: u64,
    /// Cells that carried an integrity report (fault model enabled).
    integrity_cells: u64,
    /// Summed committed bit flips across those cells.
    bit_flips: u64,
    /// Summed corrupted (silently wrong) reads across those cells.
    corrupted_reads: u64,
    /// Summed detected-but-uncorrectable reads across those cells.
    detected_uncorrectable: u64,
    buckets: [usize; REPORT_BUCKETS],
}

const REPORT_BUCKETS: usize = 12;
const REPORT_BUCKET_WIDTH: f64 = 0.1;

impl ReportGroup {
    fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            crossed: 0,
            integrity_cells: 0,
            bit_flips: 0,
            corrupted_reads: 0,
            detected_uncorrectable: 0,
            buckets: [0; REPORT_BUCKETS],
        }
    }

    fn record(&mut self, norm: f64, trh_crossed: bool, integrity: Option<(u64, u64, u64)>) {
        self.count += 1;
        self.sum += norm;
        self.min = self.min.min(norm);
        self.max = self.max.max(norm);
        self.crossed += u64::from(trh_crossed);
        if let Some((flips, corrupted, dues)) = integrity {
            self.integrity_cells += 1;
            self.bit_flips += flips;
            self.corrupted_reads += corrupted;
            self.detected_uncorrectable += dues;
        }
        let bucket = ((norm / REPORT_BUCKET_WIDTH) as usize).min(REPORT_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }
}

fn cmd_report(args: &[String]) -> Result<ExitCode, CliError> {
    use std::io::BufRead;
    let [path] = args else {
        return Err(CliError::Usage("report needs exactly one results file".into()));
    };
    let file = std::fs::File::open(path).map_err(|e| fail(format!("cannot read {path}: {e}")))?;
    let reader = std::io::BufReader::new(file);
    let mut groups: BTreeMap<(String, u64), ReportGroup> = BTreeMap::new();
    let mut attribution: Option<AttributionReport> = None;
    // (generation, best name, best ratio, best crossing, best-so-far ratio)
    let mut search_rows: Vec<(u64, String, f64, Option<u64>, f64)> = Vec::new();
    let mut search_header: Option<(String, u64)> = None;
    let mut records = 0usize;
    let mut torn = false;
    let mut lines = reader.lines().enumerate().peekable();
    while let Some((lineno, line)) = lines.next() {
        let line = line.map_err(|e| fail(format!("{path}:{}: {e}", lineno + 1)))?;
        if line.trim().is_empty() {
            continue;
        }
        let record = match Json::parse(&line) {
            Ok(record) => record,
            // A torn final line is a crash artifact, not data corruption.
            Err(_) if lines.peek().is_none() && records > 0 => {
                torn = true;
                break;
            }
            Err(error) => return Err(fail(format!("{path}:{}: {error}", lineno + 1))),
        };
        // The footer `run --attribution` appends is not a result record.
        if let Some(footer) = record.get("attribution") {
            attribution = Some(
                AttributionReport::from_json(footer)
                    .map_err(|e| fail(format!("{path}:{}: {e}", lineno + 1)))?,
            );
            continue;
        }
        // Generation records come from `search`; report the fitness curve.
        if record.get("generation").is_some() {
            srs_sim::validate_search_record(&record)
                .map_err(|message| fail(format!("{path}:{}: {message}", lineno + 1)))?;
            // The validator above vouched for these fields; a miss past it
            // is still a user-facing schema error, never a backtrace.
            let missing =
                |what: &str| fail(format!("{path}:{}: record is missing {what}", lineno + 1));
            let ratio_of = |entry: &Json| {
                entry.get("score").and_then(|s| s.get("pressure_ratio")).and_then(Json::as_f64)
            };
            if search_header.is_none() {
                search_header = Some((
                    record
                        .get("campaign")
                        .and_then(Json::as_str)
                        .ok_or_else(|| missing("campaign"))?
                        .to_string(),
                    record.get("cell").and_then(Json::as_u64).ok_or_else(|| missing("cell"))?,
                ));
            }
            let best = record.get("best").ok_or_else(|| missing("best"))?;
            search_rows.push((
                record
                    .get("generation")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| missing("generation"))?,
                best.get("attack")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                ratio_of(best).ok_or_else(|| missing("best.score.pressure_ratio"))?,
                best.get("score").and_then(|s| s.get("first_crossing_ns")).and_then(Json::as_u64),
                ratio_of(record.get("best_so_far").ok_or_else(|| missing("best_so_far"))?)
                    .ok_or_else(|| missing("best_so_far.score.pressure_ratio"))?,
            ));
            records += 1;
            continue;
        }
        validate_result_record(&record)
            .map_err(|message| fail(format!("{path}:{}: {message}", lineno + 1)))?;
        let missing = |what: &str| fail(format!("{path}:{}: record is missing {what}", lineno + 1));
        let scenario = record.get("scenario").ok_or_else(|| missing("scenario"))?;
        let result = record.get("result").ok_or_else(|| missing("result"))?;
        let defense = scenario
            .get("defense")
            .and_then(Json::as_str)
            .ok_or_else(|| missing("scenario.defense"))?;
        let t_rh =
            scenario.get("t_rh").and_then(Json::as_u64).ok_or_else(|| missing("scenario.t_rh"))?;
        let norm = result
            .get("normalized_performance")
            .and_then(Json::as_f64)
            .ok_or_else(|| missing("result.normalized_performance"))?;
        let detail = result.get("detail");
        let trh_crossed = detail
            .and_then(|d| d.get("security"))
            .and_then(|s| s.get("trh_crossed"))
            .and_then(Json::as_bool)
            .unwrap_or(false);
        // Present only on cells that ran the end-to-end fault model.
        let integrity = detail.and_then(|d| d.get("integrity")).filter(|i| !i.is_null()).map(|i| {
            (
                i.get("bit_flips_injected").and_then(Json::as_u64).unwrap_or(0),
                i.get("corrupted_reads").and_then(Json::as_u64).unwrap_or(0),
                i.get("detected_uncorrectable").and_then(Json::as_u64).unwrap_or(0),
            )
        });
        groups.entry((defense.to_string(), t_rh)).or_insert_with(ReportGroup::new).record(
            norm,
            trh_crossed,
            integrity,
        );
        records += 1;
    }
    if records == 0 {
        return Err(fail(format!("{path}: no result records")));
    }
    if !search_rows.is_empty() {
        if !groups.is_empty() {
            return Err(fail(format!("{path}: mixes search and grid result records")));
        }
        let Some((campaign, cell)) = search_header else {
            return Err(fail(format!("{path}: search rows without a campaign header")));
        };
        let out = &mut std::io::stdout().lock();
        let _ = writeln!(
            out,
            "search report for {path} — campaign '{campaign}' cell {cell}, {records} generations"
        );
        if torn {
            let _ = writeln!(
                out,
                "warning: ignored a truncated final record (crash artifact; \
                 continue the run with `srs-cli search --resume`)"
            );
        }
        let peak = search_rows.iter().map(|row| row.4).fold(f64::EPSILON, f64::max);
        let _ = writeln!(
            out,
            "\n{:>10} {:>14} {:>10} {:>10}  best-so-far fitness",
            "generation", "best", "ratio", "so-far"
        );
        for (generation, name, ratio, crossing, so_far) in &search_rows {
            let bar = "#".repeat(((so_far / peak) * 40.0).round().max(1.0) as usize);
            let crossed = match crossing {
                Some(ns) => format!("  crossed at {ns} ns"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "{generation:>10} {name:>14} {ratio:>10.3} {so_far:>10.3}  {bar}{crossed}"
            );
        }
        return Ok(ExitCode::SUCCESS);
    }
    let out = &mut std::io::stdout().lock();
    let _ = writeln!(out, "report for {path} — {records} result records");
    if torn {
        let _ = writeln!(
            out,
            "warning: ignored a truncated final record (crash artifact; \
             continue the run with `srs-cli run --resume`)"
        );
    }
    let _ = writeln!(
        out,
        "\n{:>14} {:>6} {:>7} {:>10} {:>8} {:>8} {:>12}",
        "defense", "TRH", "cells", "mean norm", "min", "max", "TRH crossed"
    );
    for ((defense, t_rh), group) in &groups {
        let _ = writeln!(
            out,
            "{defense:>14} {t_rh:>6} {:>7} {:>10.3} {:>8.3} {:>8.3} {:>12}",
            group.count,
            group.sum / group.count as f64,
            group.min,
            group.max,
            group.crossed,
        );
    }
    // End-to-end integrity: printed only when at least one cell actually
    // ran the fault model, so proxy-only reports are unchanged.
    if groups.values().any(|g| g.integrity_cells > 0) {
        let _ = writeln!(out, "\ndata integrity (end-to-end fault model):");
        let _ = writeln!(
            out,
            "{:>14} {:>6} {:>7} {:>10} {:>16} {:>14}",
            "defense", "TRH", "cells", "bit flips", "corrupted reads", "detected (DUE)"
        );
        for ((defense, t_rh), group) in &groups {
            if group.integrity_cells == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{defense:>14} {t_rh:>6} {:>7} {:>10} {:>16} {:>14}",
                group.integrity_cells,
                group.bit_flips,
                group.corrupted_reads,
                group.detected_uncorrectable,
            );
        }
    }
    let _ = writeln!(out, "\nnormalized-performance distribution:");
    for ((defense, t_rh), group) in &groups {
        let _ = writeln!(out, "  {defense} trh={t_rh}:");
        let peak = group.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (bucket, &count) in group.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let lo = bucket as f64 * REPORT_BUCKET_WIDTH;
            let bar = "#".repeat((count * 40).div_ceil(peak));
            let _ = writeln!(out, "    [{lo:.1},{:.1}) {bar} {count}", lo + REPORT_BUCKET_WIDTH);
        }
    }
    if let Some(report) = &attribution {
        print_attribution(report, out);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_plan(args: &[String]) -> Result<ExitCode, CliError> {
    let mut spec_path: Option<&str> = None;
    let mut shards: Option<usize> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" => {
                let value =
                    it.next().ok_or_else(|| CliError::Usage("--shards needs a count".into()))?;
                let count = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| CliError::Usage(format!("bad shard count '{value}'")))?;
                shards = Some(count);
            }
            "--out-dir" => {
                let value =
                    it.next().ok_or_else(|| CliError::Usage("--out-dir needs a path".into()))?;
                out_dir = Some(PathBuf::from(value));
            }
            other if spec_path.is_none() && !other.starts_with('-') => spec_path = Some(other),
            other => return Err(CliError::Usage(format!("unexpected argument '{other}'"))),
        }
    }
    let spec_path = spec_path.ok_or_else(|| CliError::Usage("plan needs a spec file".into()))?;
    let shards = shards.ok_or_else(|| CliError::Usage("plan needs --shards <N>".into()))?;
    let spec = load_spec(spec_path)?;
    let manifests = plan_shards(&spec, shards).map_err(|e| fail(format!("{spec_path}: {e}")))?;
    let stem = derive_out_path(spec_path, "")?;
    let stem = stem
        .to_str()
        .ok_or_else(|| fail(format!("{spec_path}: derived output path is not valid UTF-8")))?
        .trim_end_matches('.');
    let out_dir = out_dir.unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| fail(format!("cannot create {}: {e}", out_dir.display())))?;
    let total: usize = manifests.iter().map(|m| m.cells.len()).sum();
    println!(
        "planned {} shards over {} cells of campaign '{}':",
        manifests.len(),
        total,
        spec.name
    );
    for manifest in &manifests {
        let path = out_dir.join(format!("{stem}.shard{}.json", manifest.shard_index));
        let mut text = srs_sim::ToJson::to_json(manifest).to_pretty();
        text.push('\n');
        std::fs::write(&path, text)
            .map_err(|e| fail(format!("cannot write {}: {e}", path.display())))?;
        println!("  {} ({} cells)", path.display(), manifest.cells.len());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_merge(args: &[String]) -> Result<ExitCode, CliError> {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut out_path: Option<PathBuf> = None;
    let mut force = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                let value =
                    it.next().ok_or_else(|| CliError::Usage("--out needs a path".into()))?;
                out_path = Some(PathBuf::from(value));
            }
            "--force" => force = true,
            other if !other.starts_with('-') => inputs.push(PathBuf::from(other)),
            other => return Err(CliError::Usage(format!("unexpected argument '{other}'"))),
        }
    }
    if inputs.is_empty() {
        return Err(CliError::Usage("merge needs at least one results file".into()));
    }
    let out_path = out_path.ok_or_else(|| CliError::Usage("merge needs --out <file>".into()))?;
    if !force && out_path.exists() {
        return Err(fail(format!(
            "{} already exists; pass --force to overwrite it",
            out_path.display()
        )));
    }
    let stats = merge_results(&inputs, &out_path).map_err(|e| fail(e.to_string()))?;
    println!(
        "merged {} records from {} inputs into {}",
        stats.records,
        stats.inputs,
        out_path.display()
    );
    Ok(ExitCode::SUCCESS)
}

/// Streaming per-(defense, TRH) aggregation — the run summary accumulates
/// as cells arrive, so it costs O(groups), not O(cells), of memory.
#[derive(Default)]
struct SummarySink {
    groups: BTreeMap<(String, u64), (f64, usize, u64)>,
}

impl ResultSink for SummarySink {
    fn on_result(&mut self, result: &ScenarioResult) {
        let key = (result.scenario.defense.to_string(), result.scenario.t_rh);
        let entry = self.groups.entry(key).or_insert((0.0, 0, 0));
        entry.0 += result.normalized();
        entry.1 += 1;
        entry.2 += u64::from(result.result.detail.security.as_ref().is_some_and(|s| s.trh_crossed));
    }
}

impl SummarySink {
    fn print(&self, out: &mut impl Write) {
        if self.groups.is_empty() {
            return;
        }
        let _ = writeln!(
            out,
            "\n{:>14} {:>6} {:>7} {:>10} {:>12}",
            "defense", "TRH", "cells", "mean norm", "TRH crossed"
        );
        for ((defense, t_rh), (sum, count, crossed)) in &self.groups {
            let _ = writeln!(
                out,
                "{defense:>14} {t_rh:>6} {count:>7} {:>10.3} {crossed:>12}",
                sum / *count as f64,
            );
        }
    }
}

fn cmd_validate(args: &[String]) -> Result<ExitCode, CliError> {
    let [path] = args else {
        return Err(CliError::Usage("validate needs exactly one file".into()));
    };
    if Path::new(path).extension().is_some_and(|e| e == "jsonl") {
        validate_results(path)?;
        return Ok(ExitCode::SUCCESS);
    }
    match load_run_input(path)? {
        RunInput::Spec(spec) => {
            let experiment = spec.to_experiment().map_err(|e| fail(format!("{path}: {e}")))?;
            println!(
                "{path}: OK — '{}' resolves to {} cells ({} preset{})",
                spec.name,
                experiment.job_count(),
                spec.preset,
                if spec.patch.is_empty() { "" } else { ", patched" },
            );
        }
        RunInput::Shard(shard) => {
            let experiment =
                shard.spec.to_experiment().map_err(|e| fail(format!("{path}: {e}")))?;
            if shard.total_cells != experiment.job_count() {
                return Err(fail(format!(
                    "{path}: shard was planned over {} cells but the spec now resolves \
                     to {}; re-plan the campaign",
                    shard.total_cells,
                    experiment.job_count()
                )));
            }
            println!(
                "{path}: OK — shard {}/{} of '{}' runs {} of {} cells",
                shard.shard_index,
                shard.shard_count,
                shard.campaign,
                shard.cells.len(),
                shard.total_cells,
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn validate_results(path: &str) -> Result<(), CliError> {
    use std::io::{BufRead, Read};
    // Results files are written streaming and can be arbitrarily large;
    // validate them line by line rather than slurping the whole file.
    let file = std::fs::File::open(path).map_err(|e| fail(format!("cannot read {path}: {e}")))?;
    let mut reader = std::io::BufReader::new(file);
    let mut records = 0usize;
    let mut offset = 0u64;
    let mut lineno = 0usize;
    let mut line = String::new();
    let mut truncated_at: Option<u64> = None;
    loop {
        line.clear();
        let bytes =
            reader.read_line(&mut line).map_err(|e| fail(format!("{path}:{}: {e}", lineno + 1)))?;
        if bytes == 0 {
            break;
        }
        lineno += 1;
        let line_start = offset;
        offset += bytes as u64;
        let text = line.trim_end_matches('\n');
        if text.trim().is_empty() {
            continue;
        }
        match Json::parse(text) {
            Ok(record) => {
                // `run --attribution` appends a footer object after the
                // results; it is metadata, not a (schema-checked) record.
                if record.get("attribution").is_some() {
                    continue;
                }
                // Search streams carry generation records; grid runs carry
                // scenario results. Dispatch on the discriminating key.
                if record.get("generation").is_some() {
                    srs_sim::validate_search_record(&record)
                        .map_err(|message| fail(format!("{path}:{lineno}: {message}")))?;
                } else {
                    validate_result_record(&record)
                        .map_err(|message| fail(format!("{path}:{lineno}: {message}")))?;
                }
                records += 1;
            }
            Err(error) => {
                // A final line that does not parse is the signature of a
                // run killed mid-write — a crash artifact, not data
                // corruption. Anything unparseable mid-file is an error.
                let mut rest = String::new();
                reader.read_to_string(&mut rest).map_err(|e| fail(format!("{path}: {e}")))?;
                if rest.trim().is_empty() && records > 0 {
                    truncated_at = Some(line_start);
                    break;
                }
                return Err(fail(format!("{path}:{lineno}: {error}")));
            }
        }
    }
    if records == 0 {
        return Err(fail(format!("{path}: no result records")));
    }
    match truncated_at {
        Some(byte_offset) => println!(
            "{path}: OK — {records} complete result records; warning: truncated final \
             record at byte offset {byte_offset} (crash artifact — continue the run \
             with `srs-cli run --resume`)"
        ),
        None => println!("{path}: OK — {records} result records"),
    }
    Ok(())
}

fn cmd_check_json(args: &[String]) -> Result<ExitCode, CliError> {
    let [path] = args else {
        return Err(CliError::Usage("check-json needs exactly one file".into()));
    };
    let text = read_file(path)?;
    Json::parse(&text).map_err(|e| fail(format!("{path}: {e}")))?;
    println!("{path}: OK");
    Ok(ExitCode::SUCCESS)
}

/// The fixed registry order `list` reports, by name.
const LIST_REGISTRIES: [&str; 5] = ["defenses", "trackers", "workloads", "attacks", "presets"];

fn registry_names(what: &str) -> Result<Vec<String>, CliError> {
    Ok(match what {
        "defenses" => defense_names().iter().map(ToString::to_string).collect(),
        "trackers" => tracker_names().iter().map(ToString::to_string).collect(),
        "presets" => preset_names().iter().map(ToString::to_string).collect(),
        "attacks" => attack_names(),
        "workloads" => workload_selector_names(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown registry '{other}'; valid: defenses, trackers, workloads, attacks, presets"
            )));
        }
    })
}

fn names_json(names: Vec<String>) -> Json {
    Json::Array(names.into_iter().map(Json::from).collect())
}

fn cmd_list(args: &[String]) -> Result<ExitCode, CliError> {
    let mut json = false;
    let mut what: Option<&str> = None;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other if what.is_none() && !other.starts_with('-') => what = Some(other),
            other => return Err(CliError::Usage(format!("unexpected argument '{other}'"))),
        }
    }
    match (what, json) {
        (None, false) => Err(CliError::Usage(
            "list needs one of: defenses, trackers, workloads, attacks, presets \
             (or --json for every registry at once)"
                .into(),
        )),
        (None, true) => {
            let pairs = LIST_REGISTRIES
                .iter()
                .map(|&name| Ok((name, names_json(registry_names(name)?))))
                .collect::<Result<Vec<_>, CliError>>()?;
            println!("{}", obj(pairs).to_pretty());
            Ok(ExitCode::SUCCESS)
        }
        (Some(what), true) => {
            println!("{}", names_json(registry_names(what)?).to_compact());
            Ok(ExitCode::SUCCESS)
        }
        (Some(what), false) => {
            for name in registry_names(what)? {
                println!("{name}");
            }
            Ok(ExitCode::SUCCESS)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srs_sim::ToJson;

    #[test]
    fn result_record_schema_accepts_real_records_and_rejects_broken_ones() {
        // Build a real record by running the tiniest possible grid.
        let spec = ExperimentSpec::parse(
            r#"{
                "name": "schema",
                "patch": {"cores": 1, "target_instructions": 2000,
                          "trace_records_per_core": 1000, "max_sim_ns": 2000000},
                "defenses": ["scale-srs"],
                "workloads": ["gups"],
                "threads": 1
            }"#,
        )
        .unwrap();
        let results = spec.to_experiment().unwrap().run();
        assert_eq!(results.len(), 1);
        let record = results[0].to_json();
        validate_result_record(&record).expect("real records pass the schema");

        let broken = Json::parse(r#"{"scenario": {"index": 0}}"#).unwrap();
        assert!(validate_result_record(&broken).is_err());
    }

    #[test]
    fn out_path_derivation_rejects_stemless_inputs() {
        assert_eq!(
            derive_out_path("specs/quickstart.json", "results.jsonl").unwrap(),
            PathBuf::from("quickstart.results.jsonl")
        );
        assert!(matches!(derive_out_path(".json", "results.jsonl"), Err(CliError::Usage(_))));
        assert!(matches!(derive_out_path("", "results.jsonl"), Err(CliError::Usage(_))));
    }

    fn temp_file(name: &str, contents: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("srs-cli-test-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn report_on_missing_file_is_a_structured_error() {
        let err = cmd_report(&["definitely/not/a/file.jsonl".to_string()]);
        assert!(matches!(err, Err(CliError::Failed(_))), "must error, never panic");
    }

    #[test]
    fn report_on_malformed_records_is_a_structured_error_with_line_info() {
        // A record that claims to be a search row but fails the schema: the
        // report must surface file:line, not a panic backtrace.
        let path = temp_file("malformed.jsonl", "{\"generation\": 3}\n");
        let err = cmd_report(&[path.display().to_string()]);
        let _ = std::fs::remove_file(&path);
        match err {
            Err(CliError::Failed(message)) => {
                assert!(message.contains(":1:"), "error must carry file:line, got: {message}")
            }
            other => panic!("expected a structured failure, got {other:?}"),
        }
    }

    #[test]
    fn report_aggregates_integrity_columns_from_fault_model_cells() {
        // A handcrafted record that passes the result schema and carries an
        // integrity block — the report must aggregate it without panicking.
        let record = r#"{"scenario": {"index": 0, "defense": "baseline", "tracker": "misra-gries",
            "workload": "gups", "suite": "micro", "t_rh": 600, "attack": null},
            "result": {"normalized_performance": 1.0, "detail": {"elapsed_ns": 10,
            "instructions": 100, "swaps": 0, "security": null,
            "integrity": {"ecc": "none", "bit_flips_injected": 4, "rows_damaged": 2,
            "corrupted_reads": 3, "detected_uncorrectable": 1, "corrected_reads": 0,
            "scrub_saves": 0, "first_flip_ns": 5, "first_corruption_ns": 7}}}}"#
            .replace('\n', " ");
        let path = temp_file("integrity.jsonl", &format!("{record}\n"));
        let outcome = cmd_report(&[path.display().to_string()]);
        let _ = std::fs::remove_file(&path);
        assert!(matches!(outcome, Ok(code) if code == ExitCode::SUCCESS));
    }
}
