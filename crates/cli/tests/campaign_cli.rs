//! End-to-end campaign workflows through the `srs-cli` binary: crash →
//! resume, plan → shard → merge, fault injection → degraded exit →
//! repair — each proven byte-identical to an uninterrupted unsharded run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const TINY_SPEC: &str = r#"{
    "name": "campaign_tiny",
    "patch": {"cores": 1, "target_instructions": 2000,
              "trace_records_per_core": 1000, "max_sim_ns": 2000000},
    "defenses": ["baseline", "srs", "scale-srs"],
    "workloads": ["gups", "gcc"],
    "threads": 2
}"#;

/// A unique scratch directory per test holding the tiny spec.
fn scratch(test: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("srs-cli-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let spec = dir.join("campaign_tiny.json");
    std::fs::write(&spec, TINY_SPEC).expect("write tiny spec");
    (dir, spec)
}

/// The CLI under test, with the campaign test hooks scrubbed from the
/// inherited environment so only explicit `env` calls inject faults.
fn cli(dir: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_srs-cli"));
    cmd.current_dir(dir).env_remove("SRS_CAMPAIGN_FAIL").env_remove("SRS_CAMPAIGN_CRASH_AFTER");
    cmd
}

fn run_ok(cmd: &mut Command) -> Output {
    let output = cmd.output().expect("spawn srs-cli");
    assert!(
        output.status.success(),
        "srs-cli failed ({:?}):\nstdout: {}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn reference_run(dir: &Path, spec: &Path) -> Vec<u8> {
    run_ok(cli(dir).args(["run", spec.to_str().unwrap(), "--out", "reference.jsonl", "--quiet"]));
    std::fs::read(dir.join("reference.jsonl")).expect("reference output")
}

#[test]
fn killed_mid_run_then_resume_is_byte_identical_to_an_uninterrupted_run() {
    let (dir, spec) = scratch("crash-resume");
    let reference = reference_run(&dir, &spec);

    // Crash after two committed records, mid-write of the third: the
    // checkpoint sink writes half a line, flushes and aborts.
    let crashed = cli(&dir)
        .args(["run", spec.to_str().unwrap(), "--out", "out.jsonl", "--quiet"])
        .env("SRS_CAMPAIGN_CRASH_AFTER", "2")
        .output()
        .expect("spawn srs-cli");
    assert!(!crashed.status.success(), "the crash hook must kill the process");
    let torn = std::fs::read(dir.join("out.jsonl")).expect("torn output exists");
    assert!(!reference.starts_with(&torn) || torn.len() < reference.len(), "output is partial");

    // The torn file fails a naive byte-diff but resume repairs it.
    run_ok(cli(&dir).args([
        "run",
        spec.to_str().unwrap(),
        "--out",
        "out.jsonl",
        "--resume",
        "--quiet",
    ]));
    let resumed = std::fs::read(dir.join("out.jsonl")).unwrap();
    assert_eq!(resumed, reference, "resume must reproduce the uninterrupted bytes");

    // Resuming a finished campaign is a no-op that leaves the bytes alone.
    let again = run_ok(cli(&dir).args([
        "run",
        spec.to_str().unwrap(),
        "--out",
        "out.jsonl",
        "--resume",
        "--quiet",
    ]));
    assert_eq!(std::fs::read(dir.join("out.jsonl")).unwrap(), reference);
    let stderr = String::from_utf8_lossy(&again.stderr);
    assert!(stderr.contains("0 of 6 cells"), "no-op resume plans nothing: {stderr}");
}

#[test]
fn plan_run_shards_merge_is_byte_identical_and_merge_rejects_overlap() {
    let (dir, spec) = scratch("shard-merge");
    let reference = reference_run(&dir, &spec);

    let planned =
        run_ok(cli(&dir).args(["plan", spec.to_str().unwrap(), "--shards", "2", "--out-dir", "."]));
    let stdout = String::from_utf8_lossy(&planned.stdout);
    assert!(stdout.contains("planned 2 shards"), "plan output: {stdout}");
    for k in 0..2 {
        assert!(dir.join(format!("campaign_tiny.shard{k}.json")).exists());
        run_ok(cli(&dir).args(["validate", &format!("campaign_tiny.shard{k}.json")]));
        run_ok(cli(&dir).args([
            "run",
            &format!("campaign_tiny.shard{k}.json"),
            "--out",
            &format!("shard{k}.jsonl"),
            "--quiet",
        ]));
    }
    run_ok(cli(&dir).args(["merge", "shard0.jsonl", "shard1.jsonl", "--out", "merged.jsonl"]));
    assert_eq!(
        std::fs::read(dir.join("merged.jsonl")).unwrap(),
        reference,
        "shard → merge must reproduce the unsharded bytes"
    );

    // Feeding the same shard twice is an overlap error, not silent dupes.
    let overlap = cli(&dir)
        .args(["merge", "shard0.jsonl", "shard0.jsonl", "--out", "dup.jsonl", "--force"])
        .output()
        .unwrap();
    assert_eq!(overlap.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&overlap.stderr);
    assert!(stderr.contains("shards overlap"), "overlap diagnostic: {stderr}");
}

#[test]
fn persistent_cell_failure_degrades_with_exit_3_and_resume_repairs_it() {
    let (dir, spec) = scratch("fault");
    let reference = reference_run(&dir, &spec);

    // A transient fault (one injected panic) is absorbed by the retry
    // policy and leaves no trace in the output.
    run_ok(
        cli(&dir)
            .args(["run", spec.to_str().unwrap(), "--out", "transient.jsonl", "--quiet"])
            .env("SRS_CAMPAIGN_FAIL", "1:1"),
    );
    assert_eq!(std::fs::read(dir.join("transient.jsonl")).unwrap(), reference);

    // A persistent fault exhausts the budget: distinct exit code, failure
    // recorded in the manifest, surviving cells still on disk.
    let degraded = cli(&dir)
        .args(["run", spec.to_str().unwrap(), "--out", "out.jsonl", "--quiet"])
        .env("SRS_CAMPAIGN_FAIL", "1:99")
        .output()
        .unwrap();
    assert_eq!(degraded.status.code(), Some(3), "degraded campaigns exit 3");
    let stderr = String::from_utf8_lossy(&degraded.stderr);
    assert!(stderr.contains("campaign degraded"), "degraded diagnostic: {stderr}");
    let manifest = std::fs::read_to_string(dir.join("out.jsonl.manifest.json")).unwrap();
    assert!(manifest.contains("injected campaign fault"), "manifest records the error");
    assert!(manifest.contains("\"attempts\": 3"), "manifest records spent attempts");

    // Resume without the fault: failed cells are retried — they append
    // behind later cells and the index-order repair restores the exact
    // uninterrupted bytes.
    run_ok(cli(&dir).args([
        "run",
        spec.to_str().unwrap(),
        "--out",
        "out.jsonl",
        "--resume",
        "--quiet",
    ]));
    assert_eq!(std::fs::read(dir.join("out.jsonl")).unwrap(), reference);
}

#[test]
fn validate_reports_a_torn_final_record_as_a_warning_not_an_error() {
    let (dir, spec) = scratch("validate-torn");
    let reference = reference_run(&dir, &spec);

    // Manufacture a crash artifact: a complete file plus half a record.
    let first_line_len = reference.iter().position(|&b| b == b'\n').unwrap() + 1;
    let mut torn = reference.clone();
    torn.extend_from_slice(&reference[..first_line_len / 2]);
    std::fs::write(dir.join("torn.jsonl"), &torn).unwrap();

    let output = run_ok(cli(&dir).args(["validate", "torn.jsonl"]));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains(&format!("truncated final record at byte offset {}", reference.len())),
        "torn-record warning with the byte offset: {stdout}"
    );
    assert!(stdout.contains("6 complete result records"), "complete records still count: {stdout}");

    // Garbage mid-file stays a hard error.
    let mut corrupt = reference.clone();
    corrupt.splice(first_line_len..first_line_len, b"not json\n".iter().copied());
    std::fs::write(dir.join("corrupt.jsonl"), &corrupt).unwrap();
    let output = cli(&dir).args(["validate", "corrupt.jsonl"]).output().unwrap();
    assert_eq!(output.status.code(), Some(1), "mid-file corruption is fatal");
}

#[test]
fn collisions_are_refused_without_force_and_threads_zero_means_auto() {
    let (dir, spec) = scratch("collide");
    run_ok(cli(&dir).args(["run", spec.to_str().unwrap(), "--quiet", "--threads", "0"]));
    // The default out path is derived from the spec stem and announced.
    assert!(dir.join("campaign_tiny.results.jsonl").exists());

    let collide = cli(&dir).args(["run", spec.to_str().unwrap(), "--quiet"]).output().unwrap();
    assert_eq!(collide.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&collide.stderr);
    assert!(stderr.contains("already exists"), "collision diagnostic: {stderr}");

    run_ok(cli(&dir).args(["run", spec.to_str().unwrap(), "--quiet", "--force"]));
}
