//! Per-bank state: row buffer, busy time, and activation counts.

use serde::{Deserialize, Serialize};

use crate::address::RowId;
use crate::Nanos;

/// The row-buffer state of a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BankState {
    /// All rows precharged; the bank is ready to activate a row.
    #[default]
    Precharged,
    /// A row is open in the row buffer.
    Open(RowId),
}

/// A single DRAM bank.
///
/// The bank tracks which row (if any) is open, the time until which it is
/// busy with an in-flight access, refresh or maintenance operation, and how
/// many activations it has performed in the current refresh window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bank {
    state: BankState,
    busy_until_ns: Nanos,
    activations_in_window: u64,
    total_activations: u64,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// Create an idle, precharged bank.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: BankState::Precharged,
            busy_until_ns: 0,
            activations_in_window: 0,
            total_activations: 0,
        }
    }

    /// Current row-buffer state.
    #[must_use]
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The row currently open in the row buffer, if any.
    #[must_use]
    #[inline]
    pub fn open_row(&self) -> Option<RowId> {
        match self.state {
            BankState::Open(r) => Some(r),
            BankState::Precharged => None,
        }
    }

    /// Time until which the bank is occupied.
    #[must_use]
    #[inline]
    pub fn busy_until(&self) -> Nanos {
        self.busy_until_ns
    }

    /// Whether the bank can start a new operation at `now`.
    #[must_use]
    #[inline]
    pub fn is_free_at(&self, now: Nanos) -> bool {
        self.busy_until_ns <= now
    }

    /// Occupy the bank until `until`, without changing row-buffer state
    /// (used for refresh and maintenance).
    #[inline]
    pub fn occupy_until(&mut self, until: Nanos) {
        self.busy_until_ns = self.busy_until_ns.max(until);
    }

    /// Record an activation of `row`, marking it open.
    #[inline]
    pub fn activate(&mut self, row: RowId) {
        self.state = BankState::Open(row);
        self.activations_in_window += 1;
        self.total_activations += 1;
    }

    /// Precharge the bank (close any open row).
    #[inline]
    pub fn precharge(&mut self) {
        self.state = BankState::Precharged;
    }

    /// Number of activations performed in the current refresh window.
    #[must_use]
    pub fn activations_in_window(&self) -> u64 {
        self.activations_in_window
    }

    /// Total activations since construction.
    #[must_use]
    pub fn total_activations(&self) -> u64 {
        self.total_activations
    }

    /// Reset the per-window activation count (called at refresh-window
    /// boundaries) and close the row buffer, as an all-bank refresh would.
    pub fn start_new_window(&mut self) {
        self.activations_in_window = 0;
        self.state = BankState::Precharged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_bank_is_precharged_and_free() {
        let b = Bank::new();
        assert_eq!(b.state(), BankState::Precharged);
        assert!(b.is_free_at(0));
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn activate_opens_row_and_counts() {
        let mut b = Bank::new();
        b.activate(42);
        b.activate(43);
        assert_eq!(b.open_row(), Some(43));
        assert_eq!(b.activations_in_window(), 2);
        assert_eq!(b.total_activations(), 2);
    }

    #[test]
    fn precharge_closes_row_but_keeps_counts() {
        let mut b = Bank::new();
        b.activate(7);
        b.precharge();
        assert_eq!(b.open_row(), None);
        assert_eq!(b.total_activations(), 1);
    }

    #[test]
    fn new_window_resets_window_count_only() {
        let mut b = Bank::new();
        b.activate(1);
        b.start_new_window();
        assert_eq!(b.activations_in_window(), 0);
        assert_eq!(b.total_activations(), 1);
        assert_eq!(b.state(), BankState::Precharged);
    }

    #[test]
    fn occupy_never_moves_busy_time_backwards() {
        let mut b = Bank::new();
        b.occupy_until(100);
        b.occupy_until(50);
        assert_eq!(b.busy_until(), 100);
        assert!(!b.is_free_at(99));
        assert!(b.is_free_at(100));
    }
}
