//! DRAM geometry and timing configuration.
//!
//! The defaults reproduce Table III of the paper: a 32 GB DDR4-3200 system
//! with 2 channels, 1 rank per channel, 16 banks per rank, 128K rows per bank
//! and 8 KB rows, with tRCD-tRP-tCAS of 14-14-14 ns, tRC of 45 ns, tRFC of
//! 350 ns and tREFI of 7.8 µs.

use serde::{Deserialize, Serialize};

use crate::Nanos;

/// Row-buffer management policy of the memory controller.
///
/// The paper (and the RRS analysis it builds on) assumes a *closed-page*
/// policy; the open-page policy is used in the Discussion section to study
/// the sensitivity of the Juggernaut attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Precharge the row immediately after every column access.
    #[default]
    ClosedPage,
    /// Keep the row open until a conflicting access or refresh forces a
    /// precharge.
    OpenPage,
}

/// DDR4 timing parameters, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Row-to-column delay (ACT to READ/WRITE), `tRCD`.
    pub t_rcd: Nanos,
    /// Row precharge time, `tRP`.
    pub t_rp: Nanos,
    /// Column access (CAS) latency, `tCAS`.
    pub t_cas: Nanos,
    /// Row cycle time (minimum ACT-to-ACT delay to the same bank), `tRC`.
    pub t_rc: Nanos,
    /// Refresh cycle time (duration a rank is blocked per refresh), `tRFC`.
    pub t_rfc: Nanos,
    /// Average refresh interval between REF commands, `tREFI`.
    pub t_refi: Nanos,
    /// Data-burst occupancy of the channel bus per 64-byte transfer.
    pub t_burst: Nanos,
    /// Write recovery time before a precharge may follow a write, `tWR`.
    pub t_wr: Nanos,
}

impl Default for DramTiming {
    fn default() -> Self {
        Self {
            t_rcd: 14,
            t_rp: 14,
            t_cas: 14,
            t_rc: 45,
            t_rfc: 350,
            t_refi: 7_800,
            // 64B over a 64-bit DDR4-3200 bus: 4 beats at 0.625 ns/pair ≈ 2.5ns,
            // rounded up to whole nanoseconds.
            t_burst: 3,
            t_wr: 15,
        }
    }
}

impl DramTiming {
    /// Latency of an access that hits in an open row buffer.
    #[must_use]
    pub fn row_hit_latency(&self) -> Nanos {
        self.t_cas + self.t_burst
    }

    /// Latency of an access to a precharged (closed) bank: activate then read.
    #[must_use]
    pub fn row_closed_latency(&self) -> Nanos {
        self.t_rcd + self.t_cas + self.t_burst
    }

    /// Latency of an access that conflicts with a different open row.
    #[must_use]
    pub fn row_conflict_latency(&self) -> Nanos {
        self.t_rp + self.t_rcd + self.t_cas + self.t_burst
    }
}

/// Full configuration of the DRAM memory system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Row (page) size in bytes.
    pub row_size_bytes: u64,
    /// Cache-line size in bytes (granularity of demand requests).
    pub line_size_bytes: u64,
    /// Timing parameters.
    pub timing: DramTiming,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Length of the refresh window (retention time) in nanoseconds.
    ///
    /// All rows must be refreshed once per window; Row Hammer activation
    /// counts are accumulated within one window. DDR4 uses 64 ms.
    pub refresh_window_ns: Nanos,
    /// Capacity of each per-bank transaction queue.
    pub queue_capacity: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 16,
            rows_per_bank: 128 * 1024,
            row_size_bytes: 8 * 1024,
            line_size_bytes: 64,
            timing: DramTiming::default(),
            page_policy: PagePolicy::ClosedPage,
            refresh_window_ns: 64_000_000,
            queue_capacity: 64,
        }
    }
}

impl DramConfig {
    /// Total number of banks in the system.
    #[must_use]
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Total capacity of the memory system in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_banks() as u64 * self.rows_per_bank * self.row_size_bytes
    }

    /// Number of cache lines per row.
    #[must_use]
    pub fn lines_per_row(&self) -> u64 {
        self.row_size_bytes / self.line_size_bytes
    }

    /// Number of refresh (REF) commands issued per refresh window.
    ///
    /// DDR4 issues 8192 refresh commands per 64 ms window.
    #[must_use]
    pub fn refreshes_per_window(&self) -> u64 {
        self.refresh_window_ns / self.timing.t_refi
    }

    /// Maximum number of activations a single bank can perform within one
    /// refresh window, after discounting the time spent on refresh
    /// (`ACT_max` in the paper, roughly 1.36 million for the default
    /// configuration).
    #[must_use]
    pub fn max_activations_per_window(&self) -> u64 {
        let refresh_time = self.refreshes_per_window() * self.timing.t_rfc;
        let usable = self.refresh_window_ns.saturating_sub(refresh_time);
        usable / self.timing.t_rc
    }

    /// Duration of a single row-swap operation (exchange the contents of two
    /// rows via the memory controller's swap buffer), `tswap` in the paper
    /// (about 2.7 µs for 8 KB rows).
    #[must_use]
    pub fn swap_latency_ns(&self) -> Nanos {
        // Read both rows and write both rows, one cache line at a time, plus
        // the activations needed to open each row twice (read pass + write
        // pass). This lands within a few percent of the paper's 2.7 us.
        let lines = self.lines_per_row();
        4 * lines * self.timing.t_burst + 4 * self.timing.t_rc
    }

    /// Duration of an unswap followed by a swap (`treswap`, about 5.4 µs).
    #[must_use]
    pub fn reswap_latency_ns(&self) -> Nanos {
        2 * self.swap_latency_ns()
    }

    /// Validate the configuration, returning a human-readable description of
    /// the first inconsistency found.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DramError::InvalidConfig`] if any geometry field is
    /// zero or the row size is not a multiple of the line size.
    pub fn validate(&self) -> Result<(), crate::DramError> {
        if self.channels == 0 || self.ranks_per_channel == 0 || self.banks_per_rank == 0 {
            return Err(crate::DramError::InvalidConfig(
                "channels, ranks and banks must all be non-zero".to_string(),
            ));
        }
        if self.rows_per_bank == 0 || self.row_size_bytes == 0 || self.line_size_bytes == 0 {
            return Err(crate::DramError::InvalidConfig(
                "rows per bank, row size and line size must all be non-zero".to_string(),
            ));
        }
        if !self.row_size_bytes.is_multiple_of(self.line_size_bytes) {
            return Err(crate::DramError::InvalidConfig(
                "row size must be a multiple of the cache-line size".to_string(),
            ));
        }
        if self.timing.t_rc == 0 || self.timing.t_refi == 0 {
            return Err(crate::DramError::InvalidConfig(
                "tRC and tREFI must be non-zero".to_string(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(crate::DramError::InvalidConfig(
                "queue capacity must be non-zero".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iii() {
        let c = DramConfig::default();
        assert_eq!(c.channels, 2);
        assert_eq!(c.banks_per_rank, 16);
        assert_eq!(c.rows_per_bank, 128 * 1024);
        assert_eq!(c.row_size_bytes, 8 * 1024);
        assert_eq!(c.timing.t_rc, 45);
        assert_eq!(c.timing.t_rfc, 350);
        assert_eq!(c.timing.t_refi, 7_800);
        // 32 GB total capacity.
        assert_eq!(c.capacity_bytes(), 32 * 1024 * 1024 * 1024);
    }

    #[test]
    fn act_max_close_to_paper() {
        let c = DramConfig::default();
        let act_max = c.max_activations_per_window();
        // The paper quotes roughly 1.36 million activations per 64 ms window.
        assert!(act_max > 1_300_000 && act_max < 1_400_000, "ACT_max = {act_max}");
    }

    #[test]
    fn swap_latency_close_to_paper() {
        let c = DramConfig::default();
        let swap = c.swap_latency_ns();
        let reswap = c.reswap_latency_ns();
        // Paper: tswap = 2.7 us, treswap = 5.4 us.
        assert!(swap > 1_500 && swap < 4_000, "tswap = {swap}");
        assert_eq!(reswap, 2 * swap);
    }

    #[test]
    fn refreshes_per_window_is_8192() {
        let c = DramConfig::default();
        assert_eq!(c.refreshes_per_window(), 8205);
        // With the nominal 7.8125us tREFI the count is exactly 8192; our
        // integer tREFI of 7800ns yields a value within 0.2% of that.
        let exact = 64_000_000f64 / 7_812.5;
        assert!((c.refreshes_per_window() as f64 - exact).abs() / exact < 0.005);
    }

    #[test]
    fn latency_helpers_are_ordered() {
        let t = DramTiming::default();
        assert!(t.row_hit_latency() < t.row_closed_latency());
        assert!(t.row_closed_latency() < t.row_conflict_latency());
    }

    #[test]
    fn validate_rejects_zero_banks() {
        let c = DramConfig { banks_per_rank: 0, ..DramConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_misaligned_line() {
        let c = DramConfig { line_size_bytes: 48, ..DramConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_accepts_default() {
        assert!(DramConfig::default().validate().is_ok());
    }

    #[test]
    fn page_policy_default_is_closed() {
        assert_eq!(PagePolicy::default(), PagePolicy::ClosedPage);
    }
}
