//! The memory controller: per-bank transaction queues, FR-FCFS scheduling,
//! refresh, maintenance (mitigation) operations and activation accounting.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::address::{AddressMapper, BankId, PhysAddr, PowDiv, RowId};
use crate::arena::{Arena, Fifo, Vacant, NIL};
use crate::bank::Bank;
use crate::command::{
    AccessKind, ActivationEvent, CompletedAccess, MaintenanceKind, MaintenanceOp, MemRequest,
    RequestId,
};
use crate::config::{DramConfig, PagePolicy};
use crate::error::DramError;
use crate::sink::{AccessSink, ActivationSink, EventCollector};
use crate::stats::ControllerStats;
use crate::Nanos;

/// A demand request waiting in a bank queue.
#[derive(Debug, Clone, Copy)]
struct PendingRequest {
    id: RequestId,
    request: MemRequest,
    row: RowId,
}

impl Vacant for PendingRequest {
    fn vacant() -> Self {
        Self {
            id: RequestId(0),
            request: MemRequest::new(PhysAddr::new(0), AccessKind::Read, 0, 0),
            row: 0,
        }
    }
}

impl Vacant for MaintenanceOp {
    fn vacant() -> Self {
        MaintenanceOp::new(BankId::new(0), 0, Vec::new(), MaintenanceKind::Other)
    }
}

impl Vacant for CompletedAccess {
    fn vacant() -> Self {
        Self {
            request_id: RequestId(0),
            request: MemRequest::new(PhysAddr::new(0), AccessKind::Read, 0, 0),
            finish_ns: 0,
            row_hit: false,
        }
    }
}

/// A dense bit set over bank indices, used to track which banks currently
/// have demand or maintenance work queued.
///
/// The set answers the membership question behind the lazy wake-heap
/// scheme: a popped alarm for a bank no longer in the set is stale and gets
/// dropped, and an enqueue only arms a new alarm on the no-work → work
/// transition the set detects.
#[derive(Debug, Clone, Default)]
struct BankSet {
    words: Vec<u64>,
}

impl BankSet {
    fn new(banks: usize) -> Self {
        Self { words: vec![0; banks.div_ceil(64)] }
    }

    #[inline]
    fn insert(&mut self, bank: usize) {
        self.words[bank / 64] |= 1 << (bank % 64);
    }

    #[inline]
    fn remove(&mut self, bank: usize) {
        self.words[bank / 64] &= !(1 << (bank % 64));
    }

    #[inline]
    fn contains(&self, bank: usize) -> bool {
        self.words[bank / 64] & (1 << (bank % 64)) != 0
    }
}

/// A transaction-level DDR4 memory controller.
///
/// The controller owns one [`Bank`] model per global bank, a per-channel
/// data bus, and a per-rank refresh schedule. Demand requests are scheduled
/// FR-FCFS (row hits first under the open-page policy, otherwise
/// first-come-first-served) and maintenance operations take priority over
/// demand requests of the same bank.
///
/// All per-bank queues — demand transactions, maintenance operations, and
/// undelivered completions — live in three shared slab [`Arena`]s threaded
/// with intrusive per-bank FIFOs. Enqueue/dequeue touch no allocator after
/// warm-up, the FR-FCFS mid-queue removal is a pointer splice, and cloning
/// the controller (the `System::fork` snapshot primitive) copies a handful
/// of flat arrays instead of three `VecDeque`s per bank.
///
/// Events stream out rather than buffering up: activations issued during a
/// bank's scheduling visit are delivered to the caller's [`ActivationSink`]
/// as one per-bank batch (see [`ActivationSink::on_activation_batch`];
/// [`MemoryController::set_batched_drain`] switches back to per-event
/// delivery), and demand completions wait in a small per-bank queue (finish
/// times are monotone within a bank) until simulated time passes them, at
/// which point [`MemoryController::tick_into`] pushes them into the
/// caller's [`AccessSink`]. Nothing is drained or re-scanned per epoch.
///
/// The controller is `Clone`: a clone is an independent snapshot of the
/// whole memory system (bank states, queues, undelivered completions,
/// statistics), which the sharing-aware grid executor uses to fork
/// simulations at a divergence point.
#[derive(Debug, Clone)]
pub struct MemoryController {
    config: DramConfig,
    mapper: AddressMapper,
    banks: Vec<Bank>,
    /// Slab behind every bank's demand transaction queue.
    requests: Arena<PendingRequest>,
    queues: Vec<Fifo>,
    /// Slab behind every bank's maintenance queue.
    maint_arena: Arena<MaintenanceOp>,
    maintenance: Vec<Fifo>,
    bus_free_ns: Vec<Nanos>,
    next_refresh_ns: Vec<Nanos>,
    next_window_ns: Nanos,
    /// Slab behind every bank's undelivered-completion queue.
    done_arena: Arena<CompletedAccess>,
    completions: Vec<Fifo>,
    /// Exact count of undelivered completions across all banks, maintained
    /// incrementally so [`MemoryController::pending_completions`] — queried
    /// every drain step — never walks the queues.
    pending_completion_count: usize,
    /// Banks with queued demand or maintenance work: set on enqueue,
    /// cleared by the scheduling visit that drains the bank, so ticks can
    /// skip every unset bank.
    work_banks: BankSet,
    /// Lazy min-heap of `(wake_ns, bank)` scheduling alarms. Invariant:
    /// every bank in `work_banks` has at least one entry whose wake time is
    /// at or before the moment the bank can actually schedule, so a tick
    /// only pops the banks that are due instead of sweeping every bank with
    /// work. Entries are allowed to go stale (the bank drained, or a
    /// refresh pushed its busy time out); a stale pop is dropped or
    /// re-armed, never acted on.
    work_wakes: BinaryHeap<Reverse<(Nanos, u32)>>,
    /// Lazy min-heap of `(finish_ns, bank)` completion alarms: one live
    /// entry per bank with undelivered completions, keyed by the finish
    /// time at the front of that bank's (sorted) completion queue.
    done_wakes: BinaryHeap<Reverse<(Nanos, u32)>>,
    /// Scratch list of due bank indices for one tick, reused across ticks.
    /// The due set is sorted ascending before the banks are visited, so the
    /// visit order matches the full sweep (bank order is observable through
    /// the shared channel bus).
    due_scratch: Vec<u32>,
    /// Exact count of queued demand requests plus maintenance operations
    /// (the original `is_idle` definition, kept O(1)).
    outstanding_work: usize,
    /// Banks per channel, as a division with a power-of-two fast path (the
    /// channel lookup runs once per scheduled access).
    banks_per_channel: PowDiv,
    /// Dense mirror of each bank's busy-until time, updated alongside every
    /// occupancy change. The per-tick ready mask reads this contiguous
    /// array instead of striding through the banks.
    busy_mirror: Vec<Nanos>,
    /// Running minimum of the controller's next event time, recomputed from
    /// scratch on every [`MemoryController::tick_into`] and lowered by
    /// enqueues in between; see [`MemoryController::next_event_ns`].
    next_event_hint: Nanos,
    /// Scratch batch of activations issued by the bank currently being
    /// scheduled; flushed to the sink at the end of each bank visit. Always
    /// empty between ticks.
    act_batch: Vec<ActivationEvent>,
    /// Whether activations flush through `on_activation_batch` (default) or
    /// one `on_activation` call per event.
    batched_drain: bool,
    stats: ControllerStats,
    next_request_id: u64,
}

impl MemoryController {
    /// Create a controller for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`]; use
    /// [`MemoryController::try_new`] to handle invalid configurations
    /// gracefully.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        // The panic is part of this constructor's documented contract;
        // fallible callers use `try_new` instead.
        #[allow(clippy::expect_used)]
        Self::try_new(config).expect("valid DRAM configuration")
    }

    /// Create a controller, returning an error for invalid configurations.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn try_new(config: DramConfig) -> Result<Self, DramError> {
        config.validate()?;
        let total_banks = config.total_banks();
        let total_ranks = config.channels * config.ranks_per_channel;
        let mapper = AddressMapper::new(config.clone());
        Ok(Self {
            banks: vec![Bank::new(); total_banks],
            requests: Arena::with_capacity(total_banks * 4),
            queues: vec![Fifo::default(); total_banks],
            maint_arena: Arena::with_capacity(total_banks),
            maintenance: vec![Fifo::default(); total_banks],
            bus_free_ns: vec![0; config.channels],
            next_refresh_ns: vec![config.timing.t_refi; total_ranks],
            next_window_ns: config.refresh_window_ns,
            done_arena: Arena::with_capacity(total_banks * 4),
            completions: vec![Fifo::default(); total_banks],
            pending_completion_count: 0,
            work_banks: BankSet::new(total_banks),
            work_wakes: BinaryHeap::with_capacity(total_banks * 2),
            done_wakes: BinaryHeap::with_capacity(total_banks * 2),
            due_scratch: Vec::with_capacity(total_banks),
            outstanding_work: 0,
            banks_per_channel: PowDiv::new(
                (config.ranks_per_channel * config.banks_per_rank) as u64,
            ),
            busy_mirror: vec![0; total_banks],
            next_event_hint: config.timing.t_refi.min(config.refresh_window_ns),
            act_batch: Vec::with_capacity(16),
            batched_drain: true,
            stats: ControllerStats::default(),
            next_request_id: 0,
            mapper,
            config,
        })
    }

    /// The configuration of this controller.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The address mapper used by this controller.
    #[must_use]
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Toggle batched activation delivery (on by default).
    ///
    /// Per-event mode routes every activation through
    /// [`ActivationSink::on_activation`] individually, exactly as earlier
    /// revisions did. The equivalence suites and the throughput bench use
    /// it to pin the batched path bit-identical to per-event delivery.
    pub fn set_batched_drain(&mut self, batched: bool) {
        self.batched_drain = batched;
    }

    /// Number of requests currently queued for the given bank.
    #[must_use]
    pub fn queue_depth(&self, bank: BankId) -> usize {
        self.queues.get(bank.index()).map_or(0, Fifo::len)
    }

    /// Total requests queued across all banks.
    #[must_use]
    pub fn total_queued(&self) -> usize {
        self.queues.iter().map(Fifo::len).sum()
    }

    /// Whether the controller has any outstanding demand or maintenance work.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.outstanding_work == 0
    }

    /// Demand accesses that have been scheduled but whose finish time has
    /// not been reached by any `tick_into` call yet. O(1): the count is
    /// maintained incrementally instead of walking every bank's queue.
    #[must_use]
    pub fn pending_completions(&self) -> usize {
        self.pending_completion_count
    }

    /// Enqueue a demand request.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::QueueFull`] if the destination bank's queue has
    /// reached [`DramConfig::queue_capacity`].
    pub fn enqueue(&mut self, request: MemRequest) -> Result<RequestId, DramError> {
        let (bank, row) = self.mapper.bank_and_row(request.addr);
        self.enqueue_at(bank, row, request)
    }

    /// Enqueue a demand request whose destination the caller has already
    /// decoded — issuers that decode the address anyway (for row-swap
    /// translation) use this to avoid a second decode. `bank` and `row`
    /// must match what [`AddressMapper::bank_and_row`] would return for
    /// `request.addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::QueueFull`] if the destination bank's queue has
    /// reached [`DramConfig::queue_capacity`], or
    /// [`DramError::BankOutOfRange`] for an invalid bank.
    pub fn enqueue_at(
        &mut self,
        bank: BankId,
        row: RowId,
        request: MemRequest,
    ) -> Result<RequestId, DramError> {
        let idx = bank.index();
        if idx >= self.queues.len() {
            return Err(DramError::BankOutOfRange { bank: idx, total_banks: self.queues.len() });
        }
        if self.queues[idx].len() >= self.config.queue_capacity {
            return Err(DramError::QueueFull { bank: idx });
        }
        let id = RequestId(self.next_request_id);
        self.next_request_id += 1;
        self.requests.push_back(&mut self.queues[idx], PendingRequest { id, request, row });
        self.arm_work_bank(idx);
        self.outstanding_work += 1;
        // The bank becomes schedulable once free (possibly immediately; the
        // clamp in `next_event_ns` turns a past time into "next tick").
        self.next_event_hint = self.next_event_hint.min(self.busy_mirror[idx]);
        Ok(id)
    }

    /// Whether the bank a physical address maps to can accept another request.
    #[must_use]
    pub fn can_accept(&self, addr: PhysAddr) -> bool {
        let (bank, _) = self.mapper.bank_and_row(addr);
        self.can_accept_bank(bank)
    }

    /// Whether the given bank can accept another request.
    #[must_use]
    pub fn can_accept_bank(&self, bank: BankId) -> bool {
        self.queues[bank.index()].len() < self.config.queue_capacity
    }

    /// Enqueue a maintenance operation (executed with priority over demand
    /// requests of the same bank).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankOutOfRange`] if the bank index is invalid.
    pub fn enqueue_maintenance(&mut self, op: MaintenanceOp) -> Result<(), DramError> {
        let idx = op.bank.index();
        if idx >= self.banks.len() {
            return Err(DramError::BankOutOfRange { bank: idx, total_banks: self.banks.len() });
        }
        self.maint_arena.push_back(&mut self.maintenance[idx], op);
        self.arm_work_bank(idx);
        self.outstanding_work += 1;
        self.next_event_hint = self.next_event_hint.min(self.busy_mirror[idx]);
        Ok(())
    }

    /// Time until which a bank is busy — useful for backpressure decisions.
    #[must_use]
    pub fn bank_busy_until(&self, bank: BankId) -> Nanos {
        self.banks[bank.index()].busy_until()
    }

    /// The earliest time strictly after `now` at which this controller has
    /// something to do.
    ///
    /// This is the controller's half of the event-driven time-skip engine:
    /// after a [`MemoryController::tick_into`] at `now`, *nothing* in the
    /// controller changes state at any time before the returned instant, so
    /// a caller may jump its clock straight there. The minimum is taken
    /// over:
    ///
    /// * per-bank busy-until times of banks with queued demand or
    ///   maintenance work (the moment the bank can schedule again);
    /// * the finish time at the front of each per-bank completion queue
    ///   (the moment a completion becomes deliverable);
    /// * the next per-rank refresh deadline;
    /// * the next refresh-window rollover.
    ///
    /// A fully drained controller still reports the next refresh/rollover
    /// deadline (those recur forever), so the result is always defined.
    ///
    /// O(1): [`MemoryController::tick_into`] recomputes the underlying hint
    /// during its scheduling sweep (the busy times are already in hand
    /// there), and the enqueue paths lower it in between; this method only
    /// clamps the hint into the future. The hint never runs late (a missed
    /// event would change simulation results); at worst an enqueue to an
    /// already-free bank reports "next tick" once.
    #[must_use]
    pub fn next_event_ns(&self, now: Nanos) -> Nanos {
        self.next_event_hint.max(now + 1)
    }

    /// Advance the controller to time `now`, scheduling any work that can
    /// start at or before `now`. Activations issued while scheduling are
    /// delivered into `sink` as one batch per bank visit (or one call per
    /// event after [`MemoryController::set_batched_drain`]`(false)`), and
    /// every demand access whose finish time has been reached is delivered
    /// through `sink`.
    pub fn tick_into(&mut self, now: Nanos, sink: &mut (impl ActivationSink + AccessSink)) {
        self.handle_window_rollover(now);
        self.handle_refresh(now);
        // Scheduling, driven by the wake heap: pop every alarm that has
        // come due, then visit the due banks in ascending bank order (the
        // order the full sweep used — bank order is observable through the
        // shared channel bus). Banks that turn out not to be ready (a
        // refresh pushed their busy time past the alarm) re-arm at their
        // true wake time; alarms for drained banks are dropped.
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        while let Some(&Reverse((wake, bank))) = self.work_wakes.peek() {
            if wake > now {
                break;
            }
            self.work_wakes.pop();
            if self.work_banks.contains(bank as usize) {
                due.push(bank);
            }
        }
        if due.len() > 1 {
            due.sort_unstable();
            due.dedup();
        }
        for &bank in &due {
            let bank_idx = bank as usize;
            if self.busy_mirror[bank_idx] <= now {
                self.schedule_bank(bank_idx, now, sink);
            }
            if self.work_banks.contains(bank_idx) {
                // Work remains behind the bank's (possibly new) busy time.
                self.work_wakes.push(Reverse((self.busy_mirror[bank_idx], bank)));
            }
        }
        // Completion delivery, same due-alarm scheme keyed by each bank's
        // front finish time (finish times are kept sorted per bank).
        due.clear();
        while let Some(&Reverse((wake, bank))) = self.done_wakes.peek() {
            if wake > now {
                break;
            }
            self.done_wakes.pop();
            due.push(bank);
        }
        if due.len() > 1 {
            due.sort_unstable();
            due.dedup();
        }
        for &bank in &due {
            let bank_idx = bank as usize;
            let queue = &mut self.completions[bank_idx];
            while self.done_arena.front(queue).is_some_and(|c| c.finish_ns <= now) {
                let Some(done) = self.done_arena.pop_front(queue) else { break };
                self.pending_completion_count -= 1;
                sink.on_access(&done);
            }
            if let Some(pending) = self.done_arena.front(&self.completions[bank_idx]) {
                let finish = pending.finish_ns;
                self.done_wakes.push(Reverse((finish, bank)));
            }
        }
        self.due_scratch = due;
        // The next-event hint is the earliest surviving alarm (alarms never
        // run late — at worst a stale-early one costs a no-op visit), or
        // the next periodic deadline.
        let mut hint = self.next_window_ns;
        if let Some(&Reverse((wake, _))) = self.work_wakes.peek() {
            hint = hint.min(wake);
        }
        if let Some(&Reverse((wake, _))) = self.done_wakes.peek() {
            hint = hint.min(wake);
        }
        for &refresh in &self.next_refresh_ns {
            hint = hint.min(refresh);
        }
        self.next_event_hint = hint;
    }

    /// Mark a bank as having queued work and, on the no-work → work
    /// transition, arm a scheduling alarm at its current busy-until time.
    /// Banks already armed keep their existing (never-late) alarm.
    #[inline]
    fn arm_work_bank(&mut self, idx: usize) {
        if !self.work_banks.contains(idx) {
            self.work_banks.insert(idx);
            self.work_wakes.push(Reverse((self.busy_mirror[idx], idx as u32)));
        }
    }

    /// Convenience wrapper over [`MemoryController::tick_into`] that appends
    /// this tick's events to a caller-owned collector. The collector is
    /// reused across calls — nothing is allocated per tick — so clear it
    /// between calls when stale events are unwanted. Prefer `tick_into`
    /// with a streaming sink in simulation loops.
    pub fn tick(&mut self, now: Nanos, events: &mut EventCollector) {
        self.tick_into(now, events);
    }

    /// Advance until all queued demand and maintenance work has completed
    /// and every completion has been delivered through `sink`, returning the
    /// final time. Useful in tests and for draining attack traces that are
    /// not paced by a CPU model.
    pub fn drain_into(
        &mut self,
        mut now: Nanos,
        step_ns: Nanos,
        sink: &mut (impl ActivationSink + AccessSink),
    ) -> Nanos {
        let step = step_ns.max(1);
        loop {
            self.tick_into(now, sink);
            if self.is_idle() && self.pending_completions() == 0 {
                break;
            }
            now += step;
        }
        now
    }

    /// Convenience wrapper over [`MemoryController::drain_into`] that
    /// appends the drained events to a caller-owned (reusable) collector
    /// and returns the final time.
    pub fn drain(&mut self, now: Nanos, step_ns: Nanos, events: &mut EventCollector) -> Nanos {
        self.drain_into(now, step_ns, events)
    }

    fn handle_window_rollover(&mut self, now: Nanos) {
        while now >= self.next_window_ns {
            for bank in &mut self.banks {
                bank.start_new_window();
            }
            self.stats.windows_elapsed += 1;
            self.next_window_ns += self.config.refresh_window_ns;
        }
    }

    fn handle_refresh(&mut self, now: Nanos) {
        let t_rfc = self.config.timing.t_rfc;
        let t_refi = self.config.timing.t_refi;
        let banks_per_rank = self.config.banks_per_rank;
        for (rank_idx, next) in self.next_refresh_ns.iter_mut().enumerate() {
            while *next <= now {
                let start_bank = rank_idx * banks_per_rank;
                for b in start_bank..start_bank + banks_per_rank {
                    let until = self.banks[b].busy_until().max(*next) + t_rfc;
                    self.banks[b].occupy_until(until);
                    self.busy_mirror[b] = self.banks[b].busy_until();
                    self.banks[b].precharge();
                }
                self.stats.refreshes += 1;
                *next += t_refi;
            }
        }
    }

    fn schedule_bank(&mut self, bank_idx: usize, now: Nanos, sink: &mut impl ActivationSink) {
        loop {
            if !self.banks[bank_idx].is_free_at(now) {
                break;
            }
            // Maintenance has priority.
            if let Some(op) = self.maint_arena.pop_front(&mut self.maintenance[bank_idx]) {
                self.outstanding_work -= 1;
                self.execute_maintenance(bank_idx, &op, now);
                continue;
            }
            let Some(pending) = self.take_request(bank_idx) else { break };
            self.outstanding_work -= 1;
            self.execute_demand(bank_idx, pending, now);
        }
        if self.queues[bank_idx].is_empty() && self.maintenance[bank_idx].is_empty() {
            // Drained on every path (including "became busy mid-loop"), so
            // the work bits stay exact and drained-but-busy banks do not
            // keep waking the event engine at their busy-until times.
            self.work_banks.remove(bank_idx);
        }
        self.flush_activations(sink);
    }

    /// Deliver the activations accumulated during one bank's scheduling
    /// visit. Within a visit only this bank's events accumulate and they
    /// flush before the sweep moves to the next bank, so the global event
    /// order is identical to per-event streaming.
    fn flush_activations(&mut self, sink: &mut impl ActivationSink) {
        if self.act_batch.is_empty() {
            return;
        }
        if self.batched_drain {
            sink.on_activation_batch(&self.act_batch);
        } else {
            for event in &self.act_batch {
                sink.on_activation(event);
            }
        }
        self.act_batch.clear();
    }

    /// FR-FCFS: remove and return the oldest request that hits the open
    /// row, falling back to the oldest request overall. One walk of the
    /// bank's intrusive queue with a trailing predecessor makes the
    /// mid-queue removal an O(1) splice (the relative order of the
    /// remaining requests — the FCFS tiebreak — is untouched).
    fn take_request(&mut self, bank_idx: usize) -> Option<PendingRequest> {
        let queue = &mut self.queues[bank_idx];
        if queue.is_empty() {
            return None;
        }
        if self.config.page_policy == PagePolicy::OpenPage {
            if let Some(open) = self.banks[bank_idx].open_row() {
                let mut prev = NIL;
                let mut hit = NIL;
                for (handle, pending) in self.requests.iter(queue) {
                    if pending.row == open {
                        hit = handle;
                        break;
                    }
                    prev = handle;
                }
                if hit != NIL {
                    return Some(self.requests.remove(queue, prev, hit));
                }
            }
        }
        self.requests.pop_front(queue)
    }

    fn execute_maintenance(&mut self, bank_idx: usize, op: &MaintenanceOp, now: Nanos) {
        let start = self.banks[bank_idx].busy_until().max(now);
        let finish = start + op.duration_ns;
        self.banks[bank_idx].occupy_until(finish);
        self.busy_mirror[bank_idx] = self.banks[bank_idx].busy_until();
        // Maintenance leaves the bank precharged (row movements end with a
        // precharge of the last written row).
        self.banks[bank_idx].precharge();
        for &row in &op.activations {
            self.banks[bank_idx].activate(row);
            self.banks[bank_idx].precharge();
            self.act_batch.push(ActivationEvent {
                bank: BankId::new(bank_idx),
                row,
                logical_row: row,
                at_ns: start,
                maintenance: true,
                maintenance_kind: Some(op.label),
            });
        }
        self.stats.record_maintenance(op.label, op.duration_ns, op.activations.len() as u64);
    }

    fn execute_demand(&mut self, bank_idx: usize, pending: PendingRequest, now: Nanos) {
        let timing = self.config.timing;
        let channel = self.banks_per_channel.div(bank_idx as u64) as usize;
        let bank_ready = self.banks[bank_idx].busy_until().max(now).max(pending.request.arrival_ns);

        let (row_hit, service_latency) =
            match (self.config.page_policy, self.banks[bank_idx].open_row()) {
                (PagePolicy::OpenPage, Some(open)) if open == pending.row => {
                    (true, timing.row_hit_latency())
                }
                (PagePolicy::OpenPage, Some(_)) => (false, timing.row_conflict_latency()),
                (PagePolicy::OpenPage, None) | (PagePolicy::ClosedPage, _) => {
                    (false, timing.row_closed_latency())
                }
            };

        // The data burst must also win the channel bus.
        let bus_ready = self.bus_free_ns[channel];
        let start = bank_ready.max(bus_ready.saturating_sub(service_latency - timing.t_burst));
        let finish = start + service_latency;
        self.bus_free_ns[channel] = finish;

        // Row-cycle time lower-bounds back-to-back activations in a bank.
        let occupy_until = if row_hit { finish } else { finish.max(start + timing.t_rc) };
        self.banks[bank_idx].occupy_until(occupy_until);
        self.busy_mirror[bank_idx] = self.banks[bank_idx].busy_until();

        if !row_hit {
            self.banks[bank_idx].activate(pending.row);
            self.act_batch.push(ActivationEvent {
                bank: BankId::new(bank_idx),
                row: pending.row,
                logical_row: pending.request.logical_row.unwrap_or(pending.row),
                at_ns: start,
                maintenance: false,
                maintenance_kind: None,
            });
            self.stats.activations += 1;
            self.stats.row_misses += 1;
        } else {
            self.stats.row_hits += 1;
        }
        if self.config.page_policy == PagePolicy::ClosedPage {
            self.banks[bank_idx].precharge();
        }
        match pending.request.kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        let done = CompletedAccess {
            request_id: pending.id,
            request: pending.request,
            finish_ns: finish,
            row_hit,
        };
        self.stats.total_demand_latency_ns += done.latency_ns();
        // Within a bank, finish times are monotone (the next access starts
        // at or after the previous occupy time), so push_back keeps the
        // queue sorted; the ordered insert below is a safety net should a
        // future scheduling change break that property.
        let queue = &mut self.completions[bank_idx];
        // A completion alarm is keyed by the front finish time, so one is
        // armed exactly when this insert creates a new front.
        let becomes_front =
            self.done_arena.front(queue).is_none_or(|front| done.finish_ns < front.finish_ns);
        let finish_ns = done.finish_ns;
        match self.done_arena.back(queue) {
            Some(last) if last.finish_ns > done.finish_ns => {
                let mut prev = NIL;
                for (handle, queued) in self.done_arena.iter(queue) {
                    if queued.finish_ns > done.finish_ns {
                        break;
                    }
                    prev = handle;
                }
                self.done_arena.insert_after(queue, prev, done);
            }
            _ => {
                self.done_arena.push_back(queue, done);
            }
        }
        if becomes_front {
            self.done_wakes.push(Reverse((finish_ns, bank_idx as u32)));
        }
        self.pending_completion_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DramConfig {
        DramConfig {
            channels: 1,
            banks_per_rank: 2,
            rows_per_bank: 1024,
            queue_capacity: 8,
            ..DramConfig::default()
        }
    }

    fn addr_for(mc: &MemoryController, bank: usize, row: u64) -> PhysAddr {
        mc.mapper().address_of(BankId::new(bank), row).unwrap()
    }

    /// Drain into a fresh collector and return the completions.
    fn drain_completions(mc: &mut MemoryController, step: Nanos) -> Vec<CompletedAccess> {
        let mut events = EventCollector::new();
        mc.drain(0, step, &mut events);
        events.completions
    }

    #[test]
    fn single_read_completes_with_closed_page_latency() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 5);
        let id = mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        let done = drain_completions(&mut mc, 5);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].request_id, id);
        assert!(!done[0].row_hit);
        let expected = DramTimingHelper::closed_latency();
        assert_eq!(done[0].latency_ns(), expected);
        assert_eq!(mc.stats().reads, 1);
        assert_eq!(mc.stats().activations, 1);
    }

    struct DramTimingHelper;
    impl DramTimingHelper {
        fn closed_latency() -> Nanos {
            crate::config::DramTiming::default().row_closed_latency()
        }
    }

    #[test]
    fn closed_page_policy_never_reports_row_hits() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 5);
        for _ in 0..4 {
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        }
        let done = drain_completions(&mut mc, 5);
        assert_eq!(done.len(), 4);
        assert!(done.iter().all(|d| !d.row_hit));
        assert_eq!(mc.stats().activations, 4);
    }

    #[test]
    fn open_page_policy_hits_on_same_row() {
        let mut cfg = small_config();
        cfg.page_policy = PagePolicy::OpenPage;
        let mut mc = MemoryController::new(cfg);
        let addr = addr_for(&mc, 0, 5);
        for _ in 0..4 {
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        }
        let done = drain_completions(&mut mc, 5);
        assert_eq!(done.len(), 4);
        assert_eq!(done.iter().filter(|d| d.row_hit).count(), 3);
        assert_eq!(mc.stats().activations, 1);
    }

    #[test]
    fn queue_overflow_is_reported() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 1);
        for _ in 0..8 {
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        }
        assert!(!mc.can_accept(addr));
        assert!(matches!(
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)),
            Err(DramError::QueueFull { .. })
        ));
    }

    #[test]
    fn maintenance_blocks_bank_and_streams_latent_activations() {
        let mut mc = MemoryController::new(small_config());
        let swap_ns = mc.config().swap_latency_ns();
        mc.enqueue_maintenance(MaintenanceOp::new(
            BankId::new(0),
            swap_ns,
            vec![10, 20],
            MaintenanceKind::Swap,
        ))
        .unwrap();
        let addr = addr_for(&mc, 0, 10);
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        let mut events = EventCollector::new();
        mc.drain_into(0, 50, &mut events);
        // The demand access waits for the swap to finish.
        assert!(events.completions[0].latency_ns() >= swap_ns);
        let maint: Vec<_> = events.activations.iter().filter(|a| a.maintenance).collect();
        assert_eq!(maint.len(), 2);
        assert_eq!(maint[0].row, 10);
        assert_eq!(maint[1].row, 20);
        assert_eq!(mc.stats().maintenance_count(MaintenanceKind::Swap), 1);
        assert_eq!(mc.stats().maintenance_activations, 2);
    }

    #[test]
    fn activation_stream_reports_logical_rows() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 17);
        // The issuer remapped logical row 3 to physical row 17.
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0).with_logical_row(3)).unwrap();
        let mut events = EventCollector::new();
        mc.drain_into(0, 5, &mut events);
        assert_eq!(events.activations.len(), 1);
        assert_eq!(events.activations[0].row, 17);
        assert_eq!(events.activations[0].logical_row, 3);
        assert!(!events.activations[0].maintenance);
    }

    #[test]
    fn batched_and_per_event_drain_produce_the_same_stream() {
        // Same request sequence twice, once per delivery mode: the collected
        // event streams (activations and completions, in order) must match.
        let run = |batched: bool| {
            let mut cfg = small_config();
            cfg.page_policy = PagePolicy::OpenPage;
            let mut mc = MemoryController::new(cfg);
            mc.set_batched_drain(batched);
            let swap_ns = mc.config().swap_latency_ns();
            mc.enqueue_maintenance(MaintenanceOp::new(
                BankId::new(1),
                swap_ns,
                vec![40, 41],
                MaintenanceKind::Swap,
            ))
            .unwrap();
            for (bank, row) in [(0, 7), (0, 1), (1, 3), (0, 7), (1, 3)] {
                let addr = addr_for(&mc, bank, row);
                mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
            }
            let mut events = EventCollector::new();
            mc.drain_into(0, 5, &mut events);
            events
        };
        let batched = run(true);
        let per_event = run(false);
        assert_eq!(batched.activations, per_event.activations);
        assert_eq!(batched.completions.len(), per_event.completions.len());
        for (b, p) in batched.completions.iter().zip(&per_event.completions) {
            assert_eq!(
                (b.request_id, b.finish_ns, b.row_hit),
                (p.request_id, p.finish_ns, p.row_hit)
            );
        }
    }

    #[test]
    fn completions_stream_once_and_in_finish_order() {
        let mut mc = MemoryController::new(small_config());
        for row in 0..4 {
            let addr = addr_for(&mc, 0, row);
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        }
        let mut events = EventCollector::new();
        let end = mc.drain_into(0, 5, &mut events);
        assert_eq!(events.completions.len(), 4);
        assert!(events.completions.windows(2).all(|w| w[0].finish_ns <= w[1].finish_ns));
        assert_eq!(mc.pending_completions(), 0);
        // Ticking past the end produces nothing further.
        let mut more = EventCollector::new();
        mc.tick_into(end + 1_000, &mut more);
        assert!(more.completions.is_empty());
    }

    #[test]
    fn pending_completion_count_tracks_scheduled_but_undelivered_work() {
        let mut mc = MemoryController::new(small_config());
        for bank in 0..2 {
            let addr = addr_for(&mc, bank, 5);
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        }
        assert_eq!(mc.pending_completions(), 0);
        let mut events = EventCollector::new();
        mc.tick_into(0, &mut events);
        // Both accesses scheduled, neither finish time reached yet.
        assert_eq!(mc.pending_completions(), 2);
        mc.drain_into(0, 5, &mut events);
        assert_eq!(mc.pending_completions(), 0);
        assert_eq!(events.completions.len(), 2);
    }

    #[test]
    fn refresh_blocks_all_banks_in_rank() {
        let mut mc = MemoryController::new(small_config());
        let t_refi = mc.config().timing.t_refi;
        // Advance past one refresh interval with no work queued.
        mc.tick(t_refi + 1, &mut EventCollector::new());
        assert_eq!(mc.stats().refreshes, 1);
        // Banks are now busy until roughly t_refi + t_rfc.
        assert!(mc.bank_busy_until(BankId::new(0)) >= t_refi);
        assert!(mc.bank_busy_until(BankId::new(1)) >= t_refi);
    }

    #[test]
    fn window_rollover_resets_per_window_counts() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 3);
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        let mut events = EventCollector::new();
        let t = mc.drain(0, 5, &mut events);
        assert!(t < mc.config().refresh_window_ns);
        mc.tick(mc.config().refresh_window_ns + 1, &mut events);
        assert_eq!(mc.stats().windows_elapsed, 1);
    }

    #[test]
    fn requests_to_different_banks_proceed_in_parallel() {
        let mut mc = MemoryController::new(small_config());
        let a0 = addr_for(&mc, 0, 1);
        let a1 = addr_for(&mc, 1, 1);
        mc.enqueue(MemRequest::new(a0, AccessKind::Read, 0, 0)).unwrap();
        mc.enqueue(MemRequest::new(a1, AccessKind::Read, 0, 0)).unwrap();
        let done = drain_completions(&mut mc, 1);
        assert_eq!(done.len(), 2);
        // Bank-parallel accesses should not serialize on tRC; only the burst
        // serializes on the shared channel bus.
        let t = mc.config().timing;
        let max_finish = done.iter().map(|d| d.finish_ns).max().unwrap();
        assert!(max_finish <= t.row_closed_latency() + t.t_burst);
    }

    #[test]
    fn next_event_when_idle_is_the_refresh_deadline() {
        let mc = MemoryController::new(small_config());
        // Nothing queued: the only upcoming events are periodic maintenance,
        // and the per-rank refresh (tREFI) comes long before the 64 ms
        // window rollover.
        assert_eq!(mc.next_event_ns(0), mc.config().timing.t_refi);
        // The result is strictly in the future even when asked from a time
        // at or past the deadline.
        let refi = mc.config().timing.t_refi;
        assert_eq!(mc.next_event_ns(refi), refi + 1);
    }

    #[test]
    fn next_event_with_queued_demand_is_the_completion_time() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 5);
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        // Before any tick the bank is free with work queued: schedulable now.
        assert_eq!(mc.next_event_ns(0), 1);
        let mut events = EventCollector::new();
        mc.tick_into(0, &mut events);
        // The access is in flight; the next thing to happen is its
        // completion becoming deliverable.
        let expected = DramTimingHelper::closed_latency();
        assert_eq!(mc.next_event_ns(0), expected);
        // Deliver it; afterwards only refresh remains.
        mc.tick_into(expected, &mut events);
        assert_eq!(events.completions.len(), 1);
        assert_eq!(mc.next_event_ns(expected), mc.config().timing.t_refi);
    }

    #[test]
    fn next_event_with_maintenance_blocking_demand_is_the_bank_free_time() {
        let mut mc = MemoryController::new(small_config());
        let swap_ns = mc.config().swap_latency_ns();
        mc.enqueue_maintenance(MaintenanceOp::new(
            BankId::new(0),
            swap_ns,
            vec![],
            MaintenanceKind::Swap,
        ))
        .unwrap();
        let addr = addr_for(&mc, 0, 3);
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        let mut events = EventCollector::new();
        mc.tick_into(0, &mut events);
        // The swap occupies the bank; the queued demand request can only be
        // scheduled once the bank frees at the swap's finish time.
        assert_eq!(mc.next_event_ns(0), swap_ns);
        assert_eq!(mc.bank_busy_until(BankId::new(0)), swap_ns);
    }

    #[test]
    fn next_event_in_a_drained_system_is_refresh_dominated() {
        let mut mc = MemoryController::new(small_config());
        let t_refi = mc.config().timing.t_refi;
        let addr = addr_for(&mc, 0, 5);
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        let mut events = EventCollector::new();
        let end = mc.drain(0, 5, &mut events);
        // Fully drained: every reported event from here on is a refresh
        // deadline, until the window rollover overtakes them.
        let mut now = end;
        for _ in 0..4 {
            let next = mc.next_event_ns(now);
            assert_eq!(next % t_refi, 0, "expected a tREFI multiple, got {next}");
            mc.tick(next, &mut events);
            now = next;
        }
        assert!(mc.stats().refreshes >= 4);
    }

    #[test]
    fn frfcfs_row_hits_keep_fcfs_order_for_the_rest() {
        // Open-page: rows 7,1,7,2,7 queued on one bank. The open-row hits
        // (the 7s) are picked out of the middle; the remaining requests must
        // still complete in 1-before-2 order.
        let mut cfg = small_config();
        cfg.page_policy = PagePolicy::OpenPage;
        let mut mc = MemoryController::new(cfg);
        // Open row 7 first.
        mc.enqueue(MemRequest::new(addr_for(&mc, 0, 7), AccessKind::Read, 0, 0)).unwrap();
        let mut events = EventCollector::new();
        mc.tick_into(0, &mut events);
        for row in [1, 7, 2, 7] {
            mc.enqueue(MemRequest::new(addr_for(&mc, 0, row), AccessKind::Read, 0, 0)).unwrap();
        }
        mc.drain_into(0, 5, &mut events);
        let rows: Vec<RowId> =
            events.completions.iter().map(|c| mc.mapper().bank_and_row(c.request.addr).1).collect();
        assert_eq!(rows[0], 7, "first access opens the row");
        // Both hits on row 7 are served before the conflicting rows, and the
        // conflicting rows keep their FCFS order.
        assert_eq!(&rows[1..], &[7, 7, 1, 2]);
        assert_eq!(mc.stats().row_hits, 2);
    }

    #[test]
    fn bad_maintenance_bank_is_rejected() {
        let mut mc = MemoryController::new(small_config());
        let op = MaintenanceOp::new(BankId::new(999), 100, vec![], MaintenanceKind::Other);
        assert!(mc.enqueue_maintenance(op).is_err());
    }
}
