//! The memory controller: per-bank transaction queues, FR-FCFS scheduling,
//! refresh, maintenance (mitigation) operations and activation accounting.

use std::collections::VecDeque;

use crate::address::{AddressMapper, BankId, PhysAddr, PowDiv, RowId};
use crate::bank::Bank;
use crate::command::{
    AccessKind, ActivationEvent, CompletedAccess, MaintenanceOp, MemRequest, RequestId,
};
use crate::config::{DramConfig, PagePolicy};
use crate::error::DramError;
use crate::sink::{AccessSink, ActivationSink, EventCollector};
use crate::stats::ControllerStats;
use crate::Nanos;

/// A demand request waiting in a bank queue.
#[derive(Debug, Clone, Copy)]
struct PendingRequest {
    id: RequestId,
    request: MemRequest,
    row: RowId,
}

/// A per-bank FR-FCFS transaction queue.
///
/// FR-FCFS removes from the *middle* of the queue on row hits, and the
/// relative order of the remaining requests must be preserved (it is the
/// FCFS tiebreak). A plain `VecDeque::remove` preserves order by shuffling
/// up to half the queue per removal; this queue instead leaves a tombstone
/// (`None`) in place — O(1) — and reclaims tombstones when they reach the
/// front, plus an amortized compaction pass when they outnumber live
/// entries.
#[derive(Debug, Clone, Default)]
struct BankQueue {
    slots: VecDeque<Option<PendingRequest>>,
    live: usize,
}

impl BankQueue {
    /// Number of live (schedulable) requests.
    fn len(&self) -> usize {
        self.live
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn push_back(&mut self, pending: PendingRequest) {
        self.slots.push_back(Some(pending));
        self.live += 1;
    }

    /// Live requests in FCFS order, with their slot positions.
    fn iter_live(&self) -> impl Iterator<Item = (usize, &PendingRequest)> {
        self.slots.iter().enumerate().filter_map(|(i, slot)| slot.as_ref().map(|p| (i, p)))
    }

    /// The slot position of the oldest live request.
    fn front_pos(&self) -> Option<usize> {
        self.slots.iter().position(Option::is_some)
    }

    /// Remove and return the request at slot `pos`, leaving a tombstone if
    /// it is not at the front.
    fn take_at(&mut self, pos: usize) -> Option<PendingRequest> {
        let taken = self.slots.get_mut(pos)?.take()?;
        self.live -= 1;
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
        }
        // Keep tombstones from dominating the scan: once they outnumber the
        // live entries, compact in one order-preserving pass (amortized O(1)
        // per removal, since a pass of length n needs n/2 prior removals).
        if self.slots.len() > 2 * self.live + 4 {
            self.slots.retain(Option::is_some);
        }
        Some(taken)
    }
}

/// A dense bit set over bank indices, used to track which banks currently
/// have work queued or completions undelivered.
///
/// The simulator ticks the controller millions of times; sweeping every
/// bank's queues on every tick costs more than the actual scheduling. The
/// controller instead keeps these sets incrementally up to date so a tick
/// only touches banks with something to do. Iteration is in ascending bank
/// order — the same order the full sweep used — because bank order is
/// observable through the shared channel bus.
#[derive(Debug, Clone, Default)]
struct BankSet {
    words: Vec<u64>,
}

impl BankSet {
    fn new(banks: usize) -> Self {
        Self { words: vec![0; banks.div_ceil(64)] }
    }

    #[inline]
    fn insert(&mut self, bank: usize) {
        self.words[bank / 64] |= 1 << (bank % 64);
    }

    #[inline]
    fn remove(&mut self, bank: usize) {
        self.words[bank / 64] &= !(1 << (bank % 64));
    }
}

/// A transaction-level DDR4 memory controller.
///
/// The controller owns one [`Bank`] model and one transaction queue per
/// global bank, a per-channel data bus, and a per-rank refresh schedule.
/// Demand requests are scheduled FR-FCFS (row hits first under the open-page
/// policy, otherwise first-come-first-served) and maintenance operations
/// take priority over demand requests of the same bank.
///
/// Events stream out rather than buffering up: every `ACT` issued is pushed
/// into the caller's [`ActivationSink`] the moment it happens, and demand
/// completions wait in a small per-bank queue (finish times are monotone
/// within a bank) until simulated time passes them, at which point
/// [`MemoryController::tick_into`] pushes them into the caller's
/// [`AccessSink`]. Nothing is drained or re-scanned per epoch.
///
/// The controller is `Clone`: a clone is an independent snapshot of the
/// whole memory system (bank states, queues, undelivered completions,
/// statistics), which the sharing-aware grid executor uses to fork
/// simulations at a divergence point.
#[derive(Debug, Clone)]
pub struct MemoryController {
    config: DramConfig,
    mapper: AddressMapper,
    banks: Vec<Bank>,
    queues: Vec<BankQueue>,
    maintenance: Vec<VecDeque<MaintenanceOp>>,
    bus_free_ns: Vec<Nanos>,
    next_refresh_ns: Vec<Nanos>,
    next_window_ns: Nanos,
    completions: Vec<VecDeque<CompletedAccess>>,
    /// Banks with queued demand or maintenance work: set on enqueue,
    /// cleared by the scheduling visit that drains the bank, so ticks can
    /// skip every unset bank.
    work_banks: BankSet,
    /// Banks with undelivered completions.
    done_banks: BankSet,
    /// Exact count of queued demand requests plus maintenance operations
    /// (the original `is_idle` definition, kept O(1)).
    outstanding_work: usize,
    /// Banks per channel, as a division with a power-of-two fast path (the
    /// channel lookup runs once per scheduled access).
    banks_per_channel: PowDiv,
    /// Dense mirror of each bank's busy-until time, updated alongside every
    /// occupancy change. The per-tick ready mask reads this contiguous
    /// array instead of striding through the banks.
    busy_mirror: Vec<Nanos>,
    /// Running minimum of the controller's next event time, recomputed from
    /// scratch on every [`MemoryController::tick_into`] and lowered by
    /// enqueues in between; see [`MemoryController::next_event_ns`].
    next_event_hint: Nanos,
    stats: ControllerStats,
    next_request_id: u64,
}

impl MemoryController {
    /// Create a controller for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`]; use
    /// [`MemoryController::try_new`] to handle invalid configurations
    /// gracefully.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        Self::try_new(config).expect("valid DRAM configuration")
    }

    /// Create a controller, returning an error for invalid configurations.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn try_new(config: DramConfig) -> Result<Self, DramError> {
        config.validate()?;
        let total_banks = config.total_banks();
        let total_ranks = config.channels * config.ranks_per_channel;
        let mapper = AddressMapper::new(config.clone());
        Ok(Self {
            banks: vec![Bank::new(); total_banks],
            queues: vec![BankQueue::default(); total_banks],
            maintenance: vec![VecDeque::new(); total_banks],
            bus_free_ns: vec![0; config.channels],
            next_refresh_ns: vec![config.timing.t_refi; total_ranks],
            next_window_ns: config.refresh_window_ns,
            completions: vec![VecDeque::new(); total_banks],
            work_banks: BankSet::new(total_banks),
            done_banks: BankSet::new(total_banks),
            outstanding_work: 0,
            banks_per_channel: PowDiv::new(
                (config.ranks_per_channel * config.banks_per_rank) as u64,
            ),
            busy_mirror: vec![0; total_banks],
            next_event_hint: config.timing.t_refi.min(config.refresh_window_ns),
            stats: ControllerStats::default(),
            next_request_id: 0,
            mapper,
            config,
        })
    }

    /// The configuration of this controller.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The address mapper used by this controller.
    #[must_use]
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Number of requests currently queued for the given bank.
    #[must_use]
    pub fn queue_depth(&self, bank: BankId) -> usize {
        self.queues.get(bank.index()).map_or(0, BankQueue::len)
    }

    /// Total requests queued across all banks.
    #[must_use]
    pub fn total_queued(&self) -> usize {
        self.queues.iter().map(BankQueue::len).sum()
    }

    /// Whether the controller has any outstanding demand or maintenance work.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.outstanding_work == 0
    }

    /// Demand accesses that have been scheduled but whose finish time has
    /// not been reached by any `tick_into` call yet.
    #[must_use]
    pub fn pending_completions(&self) -> usize {
        self.completions.iter().map(VecDeque::len).sum()
    }

    /// Enqueue a demand request.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::QueueFull`] if the destination bank's queue has
    /// reached [`DramConfig::queue_capacity`].
    pub fn enqueue(&mut self, request: MemRequest) -> Result<RequestId, DramError> {
        let (bank, row) = self.mapper.bank_and_row(request.addr);
        self.enqueue_at(bank, row, request)
    }

    /// Enqueue a demand request whose destination the caller has already
    /// decoded — issuers that decode the address anyway (for row-swap
    /// translation) use this to avoid a second decode. `bank` and `row`
    /// must match what [`AddressMapper::bank_and_row`] would return for
    /// `request.addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::QueueFull`] if the destination bank's queue has
    /// reached [`DramConfig::queue_capacity`], or
    /// [`DramError::BankOutOfRange`] for an invalid bank.
    pub fn enqueue_at(
        &mut self,
        bank: BankId,
        row: RowId,
        request: MemRequest,
    ) -> Result<RequestId, DramError> {
        let idx = bank.index();
        if idx >= self.queues.len() {
            return Err(DramError::BankOutOfRange { bank: idx, total_banks: self.queues.len() });
        }
        let queue = &mut self.queues[idx];
        if queue.len() >= self.config.queue_capacity {
            return Err(DramError::QueueFull { bank: idx });
        }
        let id = RequestId(self.next_request_id);
        self.next_request_id += 1;
        queue.push_back(PendingRequest { id, request, row });
        self.work_banks.insert(idx);
        self.outstanding_work += 1;
        // The bank becomes schedulable once free (possibly immediately; the
        // clamp in `next_event_ns` turns a past time into "next tick").
        self.next_event_hint = self.next_event_hint.min(self.banks[idx].busy_until());
        Ok(id)
    }

    /// Whether the bank a physical address maps to can accept another request.
    #[must_use]
    pub fn can_accept(&self, addr: PhysAddr) -> bool {
        let (bank, _) = self.mapper.bank_and_row(addr);
        self.can_accept_bank(bank)
    }

    /// Whether the given bank can accept another request.
    #[must_use]
    pub fn can_accept_bank(&self, bank: BankId) -> bool {
        self.queues[bank.index()].len() < self.config.queue_capacity
    }

    /// Enqueue a maintenance operation (executed with priority over demand
    /// requests of the same bank).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankOutOfRange`] if the bank index is invalid.
    pub fn enqueue_maintenance(&mut self, op: MaintenanceOp) -> Result<(), DramError> {
        let idx = op.bank.index();
        if idx >= self.banks.len() {
            return Err(DramError::BankOutOfRange { bank: idx, total_banks: self.banks.len() });
        }
        self.maintenance[idx].push_back(op);
        self.work_banks.insert(idx);
        self.outstanding_work += 1;
        self.next_event_hint = self.next_event_hint.min(self.banks[idx].busy_until());
        Ok(())
    }

    /// Time until which a bank is busy — useful for backpressure decisions.
    #[must_use]
    pub fn bank_busy_until(&self, bank: BankId) -> Nanos {
        self.banks[bank.index()].busy_until()
    }

    /// The earliest time strictly after `now` at which this controller has
    /// something to do.
    ///
    /// This is the controller's half of the event-driven time-skip engine:
    /// after a [`MemoryController::tick_into`] at `now`, *nothing* in the
    /// controller changes state at any time before the returned instant, so
    /// a caller may jump its clock straight there. The minimum is taken
    /// over:
    ///
    /// * per-bank busy-until times of banks with queued demand or
    ///   maintenance work (the moment the bank can schedule again);
    /// * the finish time at the front of each per-bank completion queue
    ///   (the moment a completion becomes deliverable);
    /// * the next per-rank refresh deadline;
    /// * the next refresh-window rollover.
    ///
    /// A fully drained controller still reports the next refresh/rollover
    /// deadline (those recur forever), so the result is always defined.
    ///
    /// O(1): [`MemoryController::tick_into`] recomputes the underlying hint
    /// during its scheduling sweep (the busy times are already in hand
    /// there), and the enqueue paths lower it in between; this method only
    /// clamps the hint into the future. The hint never runs late (a missed
    /// event would change simulation results); at worst an enqueue to an
    /// already-free bank reports "next tick" once.
    #[must_use]
    pub fn next_event_ns(&self, now: Nanos) -> Nanos {
        self.next_event_hint.max(now + 1)
    }

    /// Advance the controller to time `now`, scheduling any work that can
    /// start at or before `now`. Every activation issued while scheduling is
    /// pushed into `sink` as it happens, and every demand access whose
    /// finish time has been reached is delivered through `sink`.
    pub fn tick_into(&mut self, now: Nanos, sink: &mut (impl ActivationSink + AccessSink)) {
        self.handle_window_rollover(now);
        self.handle_refresh(now);
        let mut hint = self.next_window_ns;
        // Scheduling sweep, in ascending bank order (bank order is
        // observable through the shared channel bus): only banks with work
        // need a look — free ones schedule, busy ones just contribute
        // their wake-up time to the next-event hint.
        for word_idx in 0..self.work_banks.words.len() {
            let base = word_idx * 64;
            let mut bits = self.work_banks.words[word_idx];
            while bits != 0 {
                let bank_idx = base + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.busy_mirror[bank_idx] <= now {
                    self.schedule_bank(bank_idx, now, sink);
                    if self.work_banks.words[word_idx] & (1 << (bank_idx - base)) == 0 {
                        continue;
                    }
                    // Work remains behind the bank's new busy time.
                }
                hint = hint.min(self.busy_mirror[bank_idx]);
            }
        }
        // Completion delivery, with the next undeliverable finish time (per
        // bank, the front: finish times are kept sorted) joining the hint.
        for word_idx in 0..self.done_banks.words.len() {
            let base = word_idx * 64;
            let mut bits = self.done_banks.words[word_idx];
            while bits != 0 {
                let bank_idx = base + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let queue = &mut self.completions[bank_idx];
                while queue.front().is_some_and(|c| c.finish_ns <= now) {
                    let done = queue.pop_front().expect("front was just checked");
                    sink.on_access(&done);
                }
                match self.completions[bank_idx].front() {
                    Some(pending) => hint = hint.min(pending.finish_ns),
                    None => self.done_banks.remove(bank_idx),
                }
            }
        }
        for &refresh in &self.next_refresh_ns {
            hint = hint.min(refresh);
        }
        self.next_event_hint = hint;
    }

    /// Convenience wrapper over [`MemoryController::tick_into`] that
    /// materializes the completions into a `Vec` (and discards activations).
    /// Prefer `tick_into` in simulation loops.
    pub fn tick(&mut self, now: Nanos) -> Vec<CompletedAccess> {
        let mut collector = EventCollector::new();
        self.tick_into(now, &mut collector);
        collector.completions
    }

    /// Advance until all queued demand and maintenance work has completed
    /// and every completion has been delivered through `sink`, returning the
    /// final time. Useful in tests and for draining attack traces that are
    /// not paced by a CPU model.
    pub fn drain_into(
        &mut self,
        mut now: Nanos,
        step_ns: Nanos,
        sink: &mut (impl ActivationSink + AccessSink),
    ) -> Nanos {
        let step = step_ns.max(1);
        loop {
            self.tick_into(now, sink);
            if self.is_idle() && self.pending_completions() == 0 {
                break;
            }
            now += step;
        }
        now
    }

    /// Convenience wrapper over [`MemoryController::drain_into`] returning
    /// the completions as a `Vec`.
    pub fn drain(&mut self, now: Nanos, step_ns: Nanos) -> (Vec<CompletedAccess>, Nanos) {
        let mut collector = EventCollector::new();
        let end = self.drain_into(now, step_ns, &mut collector);
        (collector.completions, end)
    }

    fn handle_window_rollover(&mut self, now: Nanos) {
        while now >= self.next_window_ns {
            for bank in &mut self.banks {
                bank.start_new_window();
            }
            self.stats.windows_elapsed += 1;
            self.next_window_ns += self.config.refresh_window_ns;
        }
    }

    fn handle_refresh(&mut self, now: Nanos) {
        let t_rfc = self.config.timing.t_rfc;
        let t_refi = self.config.timing.t_refi;
        let banks_per_rank = self.config.banks_per_rank;
        for (rank_idx, next) in self.next_refresh_ns.iter_mut().enumerate() {
            while *next <= now {
                let start_bank = rank_idx * banks_per_rank;
                for b in start_bank..start_bank + banks_per_rank {
                    let until = self.banks[b].busy_until().max(*next) + t_rfc;
                    self.banks[b].occupy_until(until);
                    self.busy_mirror[b] = self.banks[b].busy_until();
                    self.banks[b].precharge();
                }
                self.stats.refreshes += 1;
                *next += t_refi;
            }
        }
    }

    fn schedule_bank(&mut self, bank_idx: usize, now: Nanos, sink: &mut impl ActivationSink) {
        loop {
            if !self.banks[bank_idx].is_free_at(now) {
                break;
            }
            // Maintenance has priority.
            if let Some(op) = self.maintenance[bank_idx].pop_front() {
                self.outstanding_work -= 1;
                self.execute_maintenance(bank_idx, &op, now, sink);
                continue;
            }
            let Some(pos) = self.pick_request(bank_idx) else { break };
            let pending = self.queues[bank_idx].take_at(pos).expect("index valid");
            self.outstanding_work -= 1;
            self.execute_demand(bank_idx, pending, now, sink);
        }
        if self.queues[bank_idx].is_empty() && self.maintenance[bank_idx].is_empty() {
            // Drained on every path (including "became busy mid-loop"), so
            // the work bits stay exact and drained-but-busy banks do not
            // keep waking the event engine at their busy-until times.
            self.work_banks.remove(bank_idx);
        }
    }

    /// FR-FCFS: prefer the oldest request that hits the open row; otherwise
    /// the oldest request. Returns a slot position for [`BankQueue::take_at`].
    fn pick_request(&self, bank_idx: usize) -> Option<usize> {
        let queue = &self.queues[bank_idx];
        if queue.is_empty() {
            return None;
        }
        if self.config.page_policy == PagePolicy::OpenPage {
            if let Some(open) = self.banks[bank_idx].open_row() {
                if let Some((pos, _)) = queue.iter_live().find(|(_, p)| p.row == open) {
                    return Some(pos);
                }
            }
        }
        queue.front_pos()
    }

    fn execute_maintenance(
        &mut self,
        bank_idx: usize,
        op: &MaintenanceOp,
        now: Nanos,
        sink: &mut impl ActivationSink,
    ) {
        let start = self.banks[bank_idx].busy_until().max(now);
        let finish = start + op.duration_ns;
        self.banks[bank_idx].occupy_until(finish);
        self.busy_mirror[bank_idx] = self.banks[bank_idx].busy_until();
        // Maintenance leaves the bank precharged (row movements end with a
        // precharge of the last written row).
        self.banks[bank_idx].precharge();
        for &row in &op.activations {
            self.banks[bank_idx].activate(row);
            self.banks[bank_idx].precharge();
            sink.on_activation(&ActivationEvent {
                bank: BankId::new(bank_idx),
                row,
                logical_row: row,
                at_ns: start,
                maintenance: true,
                maintenance_kind: Some(op.label),
            });
        }
        self.stats.record_maintenance(op.label, op.duration_ns, op.activations.len() as u64);
    }

    fn execute_demand(
        &mut self,
        bank_idx: usize,
        pending: PendingRequest,
        now: Nanos,
        sink: &mut impl ActivationSink,
    ) {
        let timing = self.config.timing;
        let channel = self.banks_per_channel.div(bank_idx as u64) as usize;
        let bank_ready = self.banks[bank_idx].busy_until().max(now).max(pending.request.arrival_ns);

        let (row_hit, service_latency) =
            match (self.config.page_policy, self.banks[bank_idx].open_row()) {
                (PagePolicy::OpenPage, Some(open)) if open == pending.row => {
                    (true, timing.row_hit_latency())
                }
                (PagePolicy::OpenPage, Some(_)) => (false, timing.row_conflict_latency()),
                (PagePolicy::OpenPage, None) | (PagePolicy::ClosedPage, _) => {
                    (false, timing.row_closed_latency())
                }
            };

        // The data burst must also win the channel bus.
        let bus_ready = self.bus_free_ns[channel];
        let start = bank_ready.max(bus_ready.saturating_sub(service_latency - timing.t_burst));
        let finish = start + service_latency;
        self.bus_free_ns[channel] = finish;

        // Row-cycle time lower-bounds back-to-back activations in a bank.
        let occupy_until = if row_hit { finish } else { finish.max(start + timing.t_rc) };
        self.banks[bank_idx].occupy_until(occupy_until);
        self.busy_mirror[bank_idx] = self.banks[bank_idx].busy_until();

        if !row_hit {
            self.banks[bank_idx].activate(pending.row);
            sink.on_activation(&ActivationEvent {
                bank: BankId::new(bank_idx),
                row: pending.row,
                logical_row: pending.request.logical_row.unwrap_or(pending.row),
                at_ns: start,
                maintenance: false,
                maintenance_kind: None,
            });
            self.stats.activations += 1;
            self.stats.row_misses += 1;
        } else {
            self.stats.row_hits += 1;
        }
        if self.config.page_policy == PagePolicy::ClosedPage {
            self.banks[bank_idx].precharge();
        }
        match pending.request.kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        let done = CompletedAccess {
            request_id: pending.id,
            request: pending.request,
            finish_ns: finish,
            row_hit,
        };
        self.stats.total_demand_latency_ns += done.latency_ns();
        // Within a bank, finish times are monotone (the next access starts
        // at or after the previous occupy time), so push_back keeps the
        // queue sorted; the ordered insert below is a safety net should a
        // future scheduling change break that property.
        let queue = &mut self.completions[bank_idx];
        match queue.back() {
            Some(last) if last.finish_ns > done.finish_ns => {
                let pos = queue.partition_point(|c| c.finish_ns <= done.finish_ns);
                queue.insert(pos, done);
            }
            _ => queue.push_back(done),
        }
        self.done_banks.insert(bank_idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::MaintenanceKind;

    fn small_config() -> DramConfig {
        DramConfig {
            channels: 1,
            banks_per_rank: 2,
            rows_per_bank: 1024,
            queue_capacity: 8,
            ..DramConfig::default()
        }
    }

    fn addr_for(mc: &MemoryController, bank: usize, row: u64) -> PhysAddr {
        mc.mapper().address_of(BankId::new(bank), row).unwrap()
    }

    #[test]
    fn single_read_completes_with_closed_page_latency() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 5);
        let id = mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        let (done, _) = mc.drain(0, 5);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].request_id, id);
        assert!(!done[0].row_hit);
        let expected = DramTimingHelper::closed_latency();
        assert_eq!(done[0].latency_ns(), expected);
        assert_eq!(mc.stats().reads, 1);
        assert_eq!(mc.stats().activations, 1);
    }

    struct DramTimingHelper;
    impl DramTimingHelper {
        fn closed_latency() -> Nanos {
            crate::config::DramTiming::default().row_closed_latency()
        }
    }

    #[test]
    fn closed_page_policy_never_reports_row_hits() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 5);
        for _ in 0..4 {
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        }
        let (done, _) = mc.drain(0, 5);
        assert_eq!(done.len(), 4);
        assert!(done.iter().all(|d| !d.row_hit));
        assert_eq!(mc.stats().activations, 4);
    }

    #[test]
    fn open_page_policy_hits_on_same_row() {
        let mut cfg = small_config();
        cfg.page_policy = PagePolicy::OpenPage;
        let mut mc = MemoryController::new(cfg);
        let addr = addr_for(&mc, 0, 5);
        for _ in 0..4 {
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        }
        let (done, _) = mc.drain(0, 5);
        assert_eq!(done.len(), 4);
        assert_eq!(done.iter().filter(|d| d.row_hit).count(), 3);
        assert_eq!(mc.stats().activations, 1);
    }

    #[test]
    fn queue_overflow_is_reported() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 1);
        for _ in 0..8 {
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        }
        assert!(!mc.can_accept(addr));
        assert!(matches!(
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)),
            Err(DramError::QueueFull { .. })
        ));
    }

    #[test]
    fn maintenance_blocks_bank_and_streams_latent_activations() {
        let mut mc = MemoryController::new(small_config());
        let swap_ns = mc.config().swap_latency_ns();
        mc.enqueue_maintenance(MaintenanceOp::new(
            BankId::new(0),
            swap_ns,
            vec![10, 20],
            MaintenanceKind::Swap,
        ))
        .unwrap();
        let addr = addr_for(&mc, 0, 10);
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        let mut events = EventCollector::new();
        mc.drain_into(0, 50, &mut events);
        // The demand access waits for the swap to finish.
        assert!(events.completions[0].latency_ns() >= swap_ns);
        let maint: Vec<_> = events.activations.iter().filter(|a| a.maintenance).collect();
        assert_eq!(maint.len(), 2);
        assert_eq!(maint[0].row, 10);
        assert_eq!(maint[1].row, 20);
        assert_eq!(mc.stats().maintenance_count(MaintenanceKind::Swap), 1);
        assert_eq!(mc.stats().maintenance_activations, 2);
    }

    #[test]
    fn activation_stream_reports_logical_rows() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 17);
        // The issuer remapped logical row 3 to physical row 17.
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0).with_logical_row(3)).unwrap();
        let mut events = EventCollector::new();
        mc.drain_into(0, 5, &mut events);
        assert_eq!(events.activations.len(), 1);
        assert_eq!(events.activations[0].row, 17);
        assert_eq!(events.activations[0].logical_row, 3);
        assert!(!events.activations[0].maintenance);
    }

    #[test]
    fn completions_stream_once_and_in_finish_order() {
        let mut mc = MemoryController::new(small_config());
        for row in 0..4 {
            let addr = addr_for(&mc, 0, row);
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        }
        let mut events = EventCollector::new();
        let end = mc.drain_into(0, 5, &mut events);
        assert_eq!(events.completions.len(), 4);
        assert!(events.completions.windows(2).all(|w| w[0].finish_ns <= w[1].finish_ns));
        assert_eq!(mc.pending_completions(), 0);
        // Ticking past the end produces nothing further.
        let mut more = EventCollector::new();
        mc.tick_into(end + 1_000, &mut more);
        assert!(more.completions.is_empty());
    }

    #[test]
    fn refresh_blocks_all_banks_in_rank() {
        let mut mc = MemoryController::new(small_config());
        let t_refi = mc.config().timing.t_refi;
        // Advance past one refresh interval with no work queued.
        mc.tick(t_refi + 1);
        assert_eq!(mc.stats().refreshes, 1);
        // Banks are now busy until roughly t_refi + t_rfc.
        assert!(mc.bank_busy_until(BankId::new(0)) >= t_refi);
        assert!(mc.bank_busy_until(BankId::new(1)) >= t_refi);
    }

    #[test]
    fn window_rollover_resets_per_window_counts() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 3);
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        let (_, t) = mc.drain(0, 5);
        assert!(t < mc.config().refresh_window_ns);
        mc.tick(mc.config().refresh_window_ns + 1);
        assert_eq!(mc.stats().windows_elapsed, 1);
    }

    #[test]
    fn requests_to_different_banks_proceed_in_parallel() {
        let mut mc = MemoryController::new(small_config());
        let a0 = addr_for(&mc, 0, 1);
        let a1 = addr_for(&mc, 1, 1);
        mc.enqueue(MemRequest::new(a0, AccessKind::Read, 0, 0)).unwrap();
        mc.enqueue(MemRequest::new(a1, AccessKind::Read, 0, 0)).unwrap();
        let (done, _) = mc.drain(0, 1);
        assert_eq!(done.len(), 2);
        // Bank-parallel accesses should not serialize on tRC; only the burst
        // serializes on the shared channel bus.
        let t = mc.config().timing;
        let max_finish = done.iter().map(|d| d.finish_ns).max().unwrap();
        assert!(max_finish <= t.row_closed_latency() + t.t_burst);
    }

    #[test]
    fn next_event_when_idle_is_the_refresh_deadline() {
        let mc = MemoryController::new(small_config());
        // Nothing queued: the only upcoming events are periodic maintenance,
        // and the per-rank refresh (tREFI) comes long before the 64 ms
        // window rollover.
        assert_eq!(mc.next_event_ns(0), mc.config().timing.t_refi);
        // The result is strictly in the future even when asked from a time
        // at or past the deadline.
        let refi = mc.config().timing.t_refi;
        assert_eq!(mc.next_event_ns(refi), refi + 1);
    }

    #[test]
    fn next_event_with_queued_demand_is_the_completion_time() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 5);
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        // Before any tick the bank is free with work queued: schedulable now.
        assert_eq!(mc.next_event_ns(0), 1);
        let mut events = EventCollector::new();
        mc.tick_into(0, &mut events);
        // The access is in flight; the next thing to happen is its
        // completion becoming deliverable.
        let expected = DramTimingHelper::closed_latency();
        assert_eq!(mc.next_event_ns(0), expected);
        // Deliver it; afterwards only refresh remains.
        mc.tick_into(expected, &mut events);
        assert_eq!(events.completions.len(), 1);
        assert_eq!(mc.next_event_ns(expected), mc.config().timing.t_refi);
    }

    #[test]
    fn next_event_with_maintenance_blocking_demand_is_the_bank_free_time() {
        let mut mc = MemoryController::new(small_config());
        let swap_ns = mc.config().swap_latency_ns();
        mc.enqueue_maintenance(MaintenanceOp::new(
            BankId::new(0),
            swap_ns,
            vec![],
            MaintenanceKind::Swap,
        ))
        .unwrap();
        let addr = addr_for(&mc, 0, 3);
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        let mut events = EventCollector::new();
        mc.tick_into(0, &mut events);
        // The swap occupies the bank; the queued demand request can only be
        // scheduled once the bank frees at the swap's finish time.
        assert_eq!(mc.next_event_ns(0), swap_ns);
        assert_eq!(mc.bank_busy_until(BankId::new(0)), swap_ns);
    }

    #[test]
    fn next_event_in_a_drained_system_is_refresh_dominated() {
        let mut mc = MemoryController::new(small_config());
        let t_refi = mc.config().timing.t_refi;
        let addr = addr_for(&mc, 0, 5);
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        let (_, end) = mc.drain(0, 5);
        // Fully drained: every reported event from here on is a refresh
        // deadline, until the window rollover overtakes them.
        let mut now = end;
        for _ in 0..4 {
            let next = mc.next_event_ns(now);
            assert_eq!(next % t_refi, 0, "expected a tREFI multiple, got {next}");
            mc.tick(next);
            now = next;
        }
        assert!(mc.stats().refreshes >= 4);
    }

    #[test]
    fn frfcfs_row_hits_keep_fcfs_order_for_the_rest() {
        // Open-page: rows 7,1,7,2,7 queued on one bank. The open-row hits
        // (the 7s) are picked out of the middle; the remaining requests must
        // still complete in 1-before-2 order.
        let mut cfg = small_config();
        cfg.page_policy = PagePolicy::OpenPage;
        let mut mc = MemoryController::new(cfg);
        // Open row 7 first.
        mc.enqueue(MemRequest::new(addr_for(&mc, 0, 7), AccessKind::Read, 0, 0)).unwrap();
        let mut events = EventCollector::new();
        mc.tick_into(0, &mut events);
        for row in [1, 7, 2, 7] {
            mc.enqueue(MemRequest::new(addr_for(&mc, 0, row), AccessKind::Read, 0, 0)).unwrap();
        }
        mc.drain_into(0, 5, &mut events);
        let rows: Vec<RowId> =
            events.completions.iter().map(|c| mc.mapper().bank_and_row(c.request.addr).1).collect();
        assert_eq!(rows[0], 7, "first access opens the row");
        // Both hits on row 7 are served before the conflicting rows, and the
        // conflicting rows keep their FCFS order.
        assert_eq!(&rows[1..], &[7, 7, 1, 2]);
        assert_eq!(mc.stats().row_hits, 2);
    }

    #[test]
    fn bad_maintenance_bank_is_rejected() {
        let mut mc = MemoryController::new(small_config());
        let op = MaintenanceOp::new(BankId::new(999), 100, vec![], MaintenanceKind::Other);
        assert!(mc.enqueue_maintenance(op).is_err());
    }
}
