//! The memory controller: per-bank transaction queues, FR-FCFS scheduling,
//! refresh, maintenance (mitigation) operations and activation accounting.

use std::collections::VecDeque;

use crate::address::{AddressMapper, BankId, PhysAddr, RowId};
use crate::bank::Bank;
use crate::command::{
    AccessKind, ActivationEvent, CompletedAccess, MaintenanceOp, MemRequest, RequestId,
};
use crate::config::{DramConfig, PagePolicy};
use crate::error::DramError;
use crate::sink::{AccessSink, ActivationSink, EventCollector};
use crate::stats::ControllerStats;
use crate::Nanos;

/// A demand request waiting in a bank queue.
#[derive(Debug, Clone, Copy)]
struct PendingRequest {
    id: RequestId,
    request: MemRequest,
    row: RowId,
}

/// A transaction-level DDR4 memory controller.
///
/// The controller owns one [`Bank`] model and one transaction queue per
/// global bank, a per-channel data bus, and a per-rank refresh schedule.
/// Demand requests are scheduled FR-FCFS (row hits first under the open-page
/// policy, otherwise first-come-first-served) and maintenance operations
/// take priority over demand requests of the same bank.
///
/// Events stream out rather than buffering up: every `ACT` issued is pushed
/// into the caller's [`ActivationSink`] the moment it happens, and demand
/// completions wait in a small per-bank queue (finish times are monotone
/// within a bank) until simulated time passes them, at which point
/// [`MemoryController::tick_into`] pushes them into the caller's
/// [`AccessSink`]. Nothing is drained or re-scanned per epoch.
#[derive(Debug)]
pub struct MemoryController {
    config: DramConfig,
    mapper: AddressMapper,
    banks: Vec<Bank>,
    queues: Vec<VecDeque<PendingRequest>>,
    maintenance: Vec<VecDeque<MaintenanceOp>>,
    bus_free_ns: Vec<Nanos>,
    next_refresh_ns: Vec<Nanos>,
    next_window_ns: Nanos,
    completions: Vec<VecDeque<CompletedAccess>>,
    stats: ControllerStats,
    next_request_id: u64,
}

impl MemoryController {
    /// Create a controller for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`]; use
    /// [`MemoryController::try_new`] to handle invalid configurations
    /// gracefully.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        Self::try_new(config).expect("valid DRAM configuration")
    }

    /// Create a controller, returning an error for invalid configurations.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn try_new(config: DramConfig) -> Result<Self, DramError> {
        config.validate()?;
        let total_banks = config.total_banks();
        let total_ranks = config.channels * config.ranks_per_channel;
        let mapper = AddressMapper::new(config.clone());
        Ok(Self {
            banks: vec![Bank::new(); total_banks],
            queues: vec![VecDeque::new(); total_banks],
            maintenance: vec![VecDeque::new(); total_banks],
            bus_free_ns: vec![0; config.channels],
            next_refresh_ns: vec![config.timing.t_refi; total_ranks],
            next_window_ns: config.refresh_window_ns,
            completions: vec![VecDeque::new(); total_banks],
            stats: ControllerStats::default(),
            next_request_id: 0,
            mapper,
            config,
        })
    }

    /// The configuration of this controller.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The address mapper used by this controller.
    #[must_use]
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Number of requests currently queued for the given bank.
    #[must_use]
    pub fn queue_depth(&self, bank: BankId) -> usize {
        self.queues.get(bank.index()).map_or(0, VecDeque::len)
    }

    /// Total requests queued across all banks.
    #[must_use]
    pub fn total_queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Whether the controller has any outstanding demand or maintenance work.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.total_queued() == 0 && self.maintenance.iter().all(VecDeque::is_empty)
    }

    /// Demand accesses that have been scheduled but whose finish time has
    /// not been reached by any `tick_into` call yet.
    #[must_use]
    pub fn pending_completions(&self) -> usize {
        self.completions.iter().map(VecDeque::len).sum()
    }

    /// Enqueue a demand request.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::QueueFull`] if the destination bank's queue has
    /// reached [`DramConfig::queue_capacity`].
    pub fn enqueue(&mut self, request: MemRequest) -> Result<RequestId, DramError> {
        let (bank, row) = self.mapper.bank_and_row(request.addr);
        let queue = &mut self.queues[bank.index()];
        if queue.len() >= self.config.queue_capacity {
            return Err(DramError::QueueFull { bank: bank.index() });
        }
        let id = RequestId(self.next_request_id);
        self.next_request_id += 1;
        queue.push_back(PendingRequest { id, request, row });
        Ok(id)
    }

    /// Whether the bank a physical address maps to can accept another request.
    #[must_use]
    pub fn can_accept(&self, addr: PhysAddr) -> bool {
        let (bank, _) = self.mapper.bank_and_row(addr);
        self.queues[bank.index()].len() < self.config.queue_capacity
    }

    /// Enqueue a maintenance operation (executed with priority over demand
    /// requests of the same bank).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankOutOfRange`] if the bank index is invalid.
    pub fn enqueue_maintenance(&mut self, op: MaintenanceOp) -> Result<(), DramError> {
        let idx = op.bank.index();
        if idx >= self.banks.len() {
            return Err(DramError::BankOutOfRange { bank: idx, total_banks: self.banks.len() });
        }
        self.maintenance[idx].push_back(op);
        Ok(())
    }

    /// Time until which a bank is busy — useful for backpressure decisions.
    #[must_use]
    pub fn bank_busy_until(&self, bank: BankId) -> Nanos {
        self.banks[bank.index()].busy_until()
    }

    /// Advance the controller to time `now`, scheduling any work that can
    /// start at or before `now`. Every activation issued while scheduling is
    /// pushed into `sink` as it happens, and every demand access whose
    /// finish time has been reached is delivered through `sink`.
    pub fn tick_into(&mut self, now: Nanos, sink: &mut (impl ActivationSink + AccessSink)) {
        self.handle_window_rollover(now);
        self.handle_refresh(now);
        for bank_idx in 0..self.banks.len() {
            self.schedule_bank(bank_idx, now, sink);
        }
        for queue in &mut self.completions {
            while queue.front().is_some_and(|c| c.finish_ns <= now) {
                let done = queue.pop_front().expect("front was just checked");
                sink.on_access(&done);
            }
        }
    }

    /// Convenience wrapper over [`MemoryController::tick_into`] that
    /// materializes the completions into a `Vec` (and discards activations).
    /// Prefer `tick_into` in simulation loops.
    pub fn tick(&mut self, now: Nanos) -> Vec<CompletedAccess> {
        let mut collector = EventCollector::new();
        self.tick_into(now, &mut collector);
        collector.completions
    }

    /// Advance until all queued demand and maintenance work has completed
    /// and every completion has been delivered through `sink`, returning the
    /// final time. Useful in tests and for draining attack traces that are
    /// not paced by a CPU model.
    pub fn drain_into(
        &mut self,
        mut now: Nanos,
        step_ns: Nanos,
        sink: &mut (impl ActivationSink + AccessSink),
    ) -> Nanos {
        let step = step_ns.max(1);
        loop {
            self.tick_into(now, sink);
            if self.is_idle() && self.pending_completions() == 0 {
                break;
            }
            now += step;
        }
        now
    }

    /// Convenience wrapper over [`MemoryController::drain_into`] returning
    /// the completions as a `Vec`.
    pub fn drain(&mut self, now: Nanos, step_ns: Nanos) -> (Vec<CompletedAccess>, Nanos) {
        let mut collector = EventCollector::new();
        let end = self.drain_into(now, step_ns, &mut collector);
        (collector.completions, end)
    }

    fn handle_window_rollover(&mut self, now: Nanos) {
        while now >= self.next_window_ns {
            for bank in &mut self.banks {
                bank.start_new_window();
            }
            self.stats.windows_elapsed += 1;
            self.next_window_ns += self.config.refresh_window_ns;
        }
    }

    fn handle_refresh(&mut self, now: Nanos) {
        let t_rfc = self.config.timing.t_rfc;
        let t_refi = self.config.timing.t_refi;
        let banks_per_rank = self.config.banks_per_rank;
        for (rank_idx, next) in self.next_refresh_ns.iter_mut().enumerate() {
            while *next <= now {
                let start_bank = rank_idx * banks_per_rank;
                for b in start_bank..start_bank + banks_per_rank {
                    let until = self.banks[b].busy_until().max(*next) + t_rfc;
                    self.banks[b].occupy_until(until);
                    self.banks[b].precharge();
                }
                self.stats.refreshes += 1;
                *next += t_refi;
            }
        }
    }

    fn schedule_bank(&mut self, bank_idx: usize, now: Nanos, sink: &mut dyn ActivationSink) {
        loop {
            if !self.banks[bank_idx].is_free_at(now) {
                return;
            }
            // Maintenance has priority.
            if let Some(op) = self.maintenance[bank_idx].pop_front() {
                self.execute_maintenance(bank_idx, &op, now, sink);
                continue;
            }
            let Some(pos) = self.pick_request(bank_idx) else { return };
            let pending = self.queues[bank_idx].remove(pos).expect("index valid");
            self.execute_demand(bank_idx, pending, now, sink);
        }
    }

    /// FR-FCFS: prefer the oldest request that hits the open row; otherwise
    /// the oldest request.
    fn pick_request(&self, bank_idx: usize) -> Option<usize> {
        let queue = &self.queues[bank_idx];
        if queue.is_empty() {
            return None;
        }
        if self.config.page_policy == PagePolicy::OpenPage {
            if let Some(open) = self.banks[bank_idx].open_row() {
                if let Some(pos) = queue.iter().position(|p| p.row == open) {
                    return Some(pos);
                }
            }
        }
        Some(0)
    }

    fn execute_maintenance(
        &mut self,
        bank_idx: usize,
        op: &MaintenanceOp,
        now: Nanos,
        sink: &mut dyn ActivationSink,
    ) {
        let start = self.banks[bank_idx].busy_until().max(now);
        let finish = start + op.duration_ns;
        self.banks[bank_idx].occupy_until(finish);
        // Maintenance leaves the bank precharged (row movements end with a
        // precharge of the last written row).
        self.banks[bank_idx].precharge();
        for &row in &op.activations {
            self.banks[bank_idx].activate(row);
            self.banks[bank_idx].precharge();
            sink.on_activation(&ActivationEvent {
                bank: BankId::new(bank_idx),
                row,
                logical_row: row,
                at_ns: start,
                maintenance: true,
            });
        }
        self.stats.record_maintenance(op.label, op.duration_ns, op.activations.len() as u64);
    }

    fn execute_demand(
        &mut self,
        bank_idx: usize,
        pending: PendingRequest,
        now: Nanos,
        sink: &mut dyn ActivationSink,
    ) {
        let timing = self.config.timing;
        let channel = bank_idx / (self.config.ranks_per_channel * self.config.banks_per_rank);
        let bank_ready = self.banks[bank_idx].busy_until().max(now).max(pending.request.arrival_ns);

        let (row_hit, service_latency) =
            match (self.config.page_policy, self.banks[bank_idx].open_row()) {
                (PagePolicy::OpenPage, Some(open)) if open == pending.row => {
                    (true, timing.row_hit_latency())
                }
                (PagePolicy::OpenPage, Some(_)) => (false, timing.row_conflict_latency()),
                (PagePolicy::OpenPage, None) | (PagePolicy::ClosedPage, _) => {
                    (false, timing.row_closed_latency())
                }
            };

        // The data burst must also win the channel bus.
        let bus_ready = self.bus_free_ns[channel];
        let start = bank_ready.max(bus_ready.saturating_sub(service_latency - timing.t_burst));
        let finish = start + service_latency;
        self.bus_free_ns[channel] = finish;

        // Row-cycle time lower-bounds back-to-back activations in a bank.
        let occupy_until = if row_hit { finish } else { finish.max(start + timing.t_rc) };
        self.banks[bank_idx].occupy_until(occupy_until);

        if !row_hit {
            self.banks[bank_idx].activate(pending.row);
            sink.on_activation(&ActivationEvent {
                bank: BankId::new(bank_idx),
                row: pending.row,
                logical_row: pending.request.logical_row.unwrap_or(pending.row),
                at_ns: start,
                maintenance: false,
            });
            self.stats.activations += 1;
            self.stats.row_misses += 1;
        } else {
            self.stats.row_hits += 1;
        }
        if self.config.page_policy == PagePolicy::ClosedPage {
            self.banks[bank_idx].precharge();
        }
        match pending.request.kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        let done = CompletedAccess {
            request_id: pending.id,
            request: pending.request,
            finish_ns: finish,
            row_hit,
        };
        self.stats.total_demand_latency_ns += done.latency_ns();
        // Within a bank, finish times are monotone (the next access starts
        // at or after the previous occupy time), so push_back keeps the
        // queue sorted; the ordered insert below is a safety net should a
        // future scheduling change break that property.
        let queue = &mut self.completions[bank_idx];
        match queue.back() {
            Some(last) if last.finish_ns > done.finish_ns => {
                let pos = queue.partition_point(|c| c.finish_ns <= done.finish_ns);
                queue.insert(pos, done);
            }
            _ => queue.push_back(done),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::MaintenanceKind;

    fn small_config() -> DramConfig {
        DramConfig {
            channels: 1,
            banks_per_rank: 2,
            rows_per_bank: 1024,
            queue_capacity: 8,
            ..DramConfig::default()
        }
    }

    fn addr_for(mc: &MemoryController, bank: usize, row: u64) -> PhysAddr {
        mc.mapper().address_of(BankId::new(bank), row).unwrap()
    }

    #[test]
    fn single_read_completes_with_closed_page_latency() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 5);
        let id = mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        let (done, _) = mc.drain(0, 5);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].request_id, id);
        assert!(!done[0].row_hit);
        let expected = DramTimingHelper::closed_latency();
        assert_eq!(done[0].latency_ns(), expected);
        assert_eq!(mc.stats().reads, 1);
        assert_eq!(mc.stats().activations, 1);
    }

    struct DramTimingHelper;
    impl DramTimingHelper {
        fn closed_latency() -> Nanos {
            crate::config::DramTiming::default().row_closed_latency()
        }
    }

    #[test]
    fn closed_page_policy_never_reports_row_hits() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 5);
        for _ in 0..4 {
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        }
        let (done, _) = mc.drain(0, 5);
        assert_eq!(done.len(), 4);
        assert!(done.iter().all(|d| !d.row_hit));
        assert_eq!(mc.stats().activations, 4);
    }

    #[test]
    fn open_page_policy_hits_on_same_row() {
        let mut cfg = small_config();
        cfg.page_policy = PagePolicy::OpenPage;
        let mut mc = MemoryController::new(cfg);
        let addr = addr_for(&mc, 0, 5);
        for _ in 0..4 {
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        }
        let (done, _) = mc.drain(0, 5);
        assert_eq!(done.len(), 4);
        assert_eq!(done.iter().filter(|d| d.row_hit).count(), 3);
        assert_eq!(mc.stats().activations, 1);
    }

    #[test]
    fn queue_overflow_is_reported() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 1);
        for _ in 0..8 {
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        }
        assert!(!mc.can_accept(addr));
        assert!(matches!(
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)),
            Err(DramError::QueueFull { .. })
        ));
    }

    #[test]
    fn maintenance_blocks_bank_and_streams_latent_activations() {
        let mut mc = MemoryController::new(small_config());
        let swap_ns = mc.config().swap_latency_ns();
        mc.enqueue_maintenance(MaintenanceOp::new(
            BankId::new(0),
            swap_ns,
            vec![10, 20],
            MaintenanceKind::Swap,
        ))
        .unwrap();
        let addr = addr_for(&mc, 0, 10);
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        let mut events = EventCollector::new();
        mc.drain_into(0, 50, &mut events);
        // The demand access waits for the swap to finish.
        assert!(events.completions[0].latency_ns() >= swap_ns);
        let maint: Vec<_> = events.activations.iter().filter(|a| a.maintenance).collect();
        assert_eq!(maint.len(), 2);
        assert_eq!(maint[0].row, 10);
        assert_eq!(maint[1].row, 20);
        assert_eq!(mc.stats().maintenance_count(MaintenanceKind::Swap), 1);
        assert_eq!(mc.stats().maintenance_activations, 2);
    }

    #[test]
    fn activation_stream_reports_logical_rows() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 17);
        // The issuer remapped logical row 3 to physical row 17.
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0).with_logical_row(3)).unwrap();
        let mut events = EventCollector::new();
        mc.drain_into(0, 5, &mut events);
        assert_eq!(events.activations.len(), 1);
        assert_eq!(events.activations[0].row, 17);
        assert_eq!(events.activations[0].logical_row, 3);
        assert!(!events.activations[0].maintenance);
    }

    #[test]
    fn completions_stream_once_and_in_finish_order() {
        let mut mc = MemoryController::new(small_config());
        for row in 0..4 {
            let addr = addr_for(&mc, 0, row);
            mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        }
        let mut events = EventCollector::new();
        let end = mc.drain_into(0, 5, &mut events);
        assert_eq!(events.completions.len(), 4);
        assert!(events.completions.windows(2).all(|w| w[0].finish_ns <= w[1].finish_ns));
        assert_eq!(mc.pending_completions(), 0);
        // Ticking past the end produces nothing further.
        let mut more = EventCollector::new();
        mc.tick_into(end + 1_000, &mut more);
        assert!(more.completions.is_empty());
    }

    #[test]
    fn refresh_blocks_all_banks_in_rank() {
        let mut mc = MemoryController::new(small_config());
        let t_refi = mc.config().timing.t_refi;
        // Advance past one refresh interval with no work queued.
        mc.tick(t_refi + 1);
        assert_eq!(mc.stats().refreshes, 1);
        // Banks are now busy until roughly t_refi + t_rfc.
        assert!(mc.bank_busy_until(BankId::new(0)) >= t_refi);
        assert!(mc.bank_busy_until(BankId::new(1)) >= t_refi);
    }

    #[test]
    fn window_rollover_resets_per_window_counts() {
        let mut mc = MemoryController::new(small_config());
        let addr = addr_for(&mc, 0, 3);
        mc.enqueue(MemRequest::new(addr, AccessKind::Read, 0, 0)).unwrap();
        let (_, t) = mc.drain(0, 5);
        assert!(t < mc.config().refresh_window_ns);
        mc.tick(mc.config().refresh_window_ns + 1);
        assert_eq!(mc.stats().windows_elapsed, 1);
    }

    #[test]
    fn requests_to_different_banks_proceed_in_parallel() {
        let mut mc = MemoryController::new(small_config());
        let a0 = addr_for(&mc, 0, 1);
        let a1 = addr_for(&mc, 1, 1);
        mc.enqueue(MemRequest::new(a0, AccessKind::Read, 0, 0)).unwrap();
        mc.enqueue(MemRequest::new(a1, AccessKind::Read, 0, 0)).unwrap();
        let (done, _) = mc.drain(0, 1);
        assert_eq!(done.len(), 2);
        // Bank-parallel accesses should not serialize on tRC; only the burst
        // serializes on the shared channel bus.
        let t = mc.config().timing;
        let max_finish = done.iter().map(|d| d.finish_ns).max().unwrap();
        assert!(max_finish <= t.row_closed_latency() + t.t_burst);
    }

    #[test]
    fn bad_maintenance_bank_is_rejected() {
        let mut mc = MemoryController::new(small_config());
        let op = MaintenanceOp::new(BankId::new(999), 100, vec![], MaintenanceKind::Other);
        assert!(mc.enqueue_maintenance(op).is_err());
    }
}
