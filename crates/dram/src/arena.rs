//! A slab arena with intrusive FIFO lists, backing the controller's
//! per-bank queues.
//!
//! Earlier revisions stored every bank queue as its own `VecDeque`
//! (`VecDeque<Option<PendingRequest>>` with tombstones for the transaction
//! queues, plus a `VecDeque` each for maintenance and undelivered
//! completions). That is 3 × banks independently growing ring buffers:
//! every queue pays its own allocator traffic as it warms up, a clone of
//! the controller (the `System::fork` snapshot primitive) walks ~100 heap
//! blocks, and the FR-FCFS mid-queue removal needs tombstones plus an
//! amortized compaction pass to stay O(1).
//!
//! The arena replaces all of that with one flat slot array per payload
//! type: entries are indexed by `u32` handles, each per-bank queue is an
//! intrusive singly-linked FIFO threaded through a parallel `links` array,
//! and freed slots form a free list through the same links. Enqueue and
//! dequeue never touch the allocator after warm-up, mid-queue removal is a
//! pointer splice (no tombstones, no compaction), and a snapshot of all
//! queue state is the memcpy of two flat `Vec`s.

/// The null handle, terminating both queue chains and the free list.
pub(crate) const NIL: u32 = u32::MAX;

/// A vacant placeholder left in a freed slot, so non-`Copy` payloads drop
/// their heap allocations as soon as they leave the arena.
pub(crate) trait Vacant {
    /// The placeholder value stored in free slots.
    fn vacant() -> Self;
}

/// One intrusive FIFO threaded through an [`Arena`]'s link array.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fifo {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for Fifo {
    fn default() -> Self {
        Self { head: NIL, tail: NIL, len: 0 }
    }
}

impl Fifo {
    /// Number of entries queued.
    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the queue holds no entries.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The slab arena: flat payload storage plus one link word per slot.
#[derive(Debug, Clone)]
pub(crate) struct Arena<T> {
    slots: Vec<T>,
    /// `links[i]` is the next entry of whatever chain slot `i` is on: a
    /// FIFO's successor for live slots, the next free slot otherwise.
    links: Vec<u32>,
    free_head: u32,
}

impl<T: Vacant> Arena<T> {
    /// An empty arena with room for `capacity` entries before regrowing.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            links: Vec::with_capacity(capacity),
            free_head: NIL,
        }
    }

    /// Claim a slot for `value`: the free list if one is vacant, fresh
    /// growth otherwise (amortized — slots are never returned to the
    /// allocator, so a warmed-up arena allocates nothing).
    fn alloc(&mut self, value: T) -> u32 {
        if self.free_head == NIL {
            // Invariant: arena population is bounded by the controller's
            // per-bank queue capacities (enqueue returns `QueueFull` long
            // before this), so the u32 handle space cannot be exhausted;
            // the check is a defense against a future unbounded caller.
            #[allow(clippy::expect_used)]
            let idx = u32::try_from(self.slots.len()).expect("arena exceeds u32 handles");
            self.slots.push(value);
            self.links.push(NIL);
            idx
        } else {
            let idx = self.free_head;
            self.free_head = self.links[idx as usize];
            self.slots[idx as usize] = value;
            self.links[idx as usize] = NIL;
            idx
        }
    }

    /// Release a slot back to the free list, returning its payload.
    fn release(&mut self, idx: u32) -> T {
        let value = std::mem::replace(&mut self.slots[idx as usize], T::vacant());
        self.links[idx as usize] = self.free_head;
        self.free_head = idx;
        value
    }

    /// The payload of a live slot.
    #[inline]
    pub(crate) fn get(&self, idx: u32) -> &T {
        &self.slots[idx as usize]
    }

    /// The FIFO successor of a live slot.
    #[inline]
    pub(crate) fn next(&self, idx: u32) -> u32 {
        self.links[idx as usize]
    }

    /// Append `value` to `queue`, returning its handle.
    pub(crate) fn push_back(&mut self, queue: &mut Fifo, value: T) -> u32 {
        let idx = self.alloc(value);
        if queue.tail == NIL {
            queue.head = idx;
        } else {
            self.links[queue.tail as usize] = idx;
        }
        queue.tail = idx;
        queue.len += 1;
        idx
    }

    /// The payload at the front of `queue`, if any.
    pub(crate) fn front<'a>(&'a self, queue: &Fifo) -> Option<&'a T> {
        (queue.head != NIL).then(|| self.get(queue.head))
    }

    /// The payload at the back of `queue`, if any.
    pub(crate) fn back<'a>(&'a self, queue: &Fifo) -> Option<&'a T> {
        (queue.tail != NIL).then(|| self.get(queue.tail))
    }

    /// Pop the front of `queue`.
    pub(crate) fn pop_front(&mut self, queue: &mut Fifo) -> Option<T> {
        if queue.head == NIL {
            return None;
        }
        Some(self.remove(queue, NIL, queue.head))
    }

    /// Splice the entry `idx` (whose predecessor in `queue` is `prev`,
    /// `NIL` for the head) out of the queue, returning its payload.
    pub(crate) fn remove(&mut self, queue: &mut Fifo, prev: u32, idx: u32) -> T {
        let next = self.links[idx as usize];
        if prev == NIL {
            queue.head = next;
        } else {
            self.links[prev as usize] = next;
        }
        if queue.tail == idx {
            queue.tail = prev;
        }
        queue.len -= 1;
        self.release(idx)
    }

    /// Insert `value` after `prev` (`NIL` to insert at the head). Cold
    /// path: the controller's completion queues only take mid-queue
    /// insertions through the ordered-insert safety net.
    pub(crate) fn insert_after(&mut self, queue: &mut Fifo, prev: u32, value: T) -> u32 {
        let idx = self.alloc(value);
        if prev == NIL {
            self.links[idx as usize] = queue.head;
            if queue.head == NIL {
                queue.tail = idx;
            }
            queue.head = idx;
        } else {
            self.links[idx as usize] = self.links[prev as usize];
            self.links[prev as usize] = idx;
            if queue.tail == prev {
                queue.tail = idx;
            }
        }
        queue.len += 1;
        idx
    }

    /// The queue's entries in FIFO order, as `(handle, payload)` pairs.
    pub(crate) fn iter<'a>(&'a self, queue: &Fifo) -> ArenaIter<'a, T> {
        ArenaIter { arena: self, cursor: queue.head }
    }
}

/// Iterator over one FIFO's live entries.
pub(crate) struct ArenaIter<'a, T> {
    arena: &'a Arena<T>,
    cursor: u32,
}

impl<'a, T: Vacant> Iterator for ArenaIter<'a, T> {
    type Item = (u32, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let idx = self.cursor;
        self.cursor = self.arena.next(idx);
        Some((idx, self.arena.get(idx)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl Vacant for u64 {
        fn vacant() -> Self {
            0
        }
    }

    #[test]
    fn fifo_order_and_reuse() {
        let mut arena: Arena<u64> = Arena::with_capacity(4);
        let mut q = Fifo::default();
        for v in 10..14 {
            arena.push_back(&mut q, v);
        }
        assert_eq!(q.len(), 4);
        assert_eq!(arena.front(&q), Some(&10));
        assert_eq!(arena.back(&q), Some(&13));
        assert_eq!(arena.pop_front(&mut q), Some(10));
        assert_eq!(arena.pop_front(&mut q), Some(11));
        // Freed slots are recycled before the arena grows.
        let slots_before = arena.slots.len();
        arena.push_back(&mut q, 14);
        assert_eq!(arena.slots.len(), slots_before);
        let order: Vec<u64> = arena.iter(&q).map(|(_, &v)| v).collect();
        assert_eq!(order, vec![12, 13, 14]);
    }

    #[test]
    fn mid_queue_removal_splices() {
        let mut arena: Arena<u64> = Arena::with_capacity(4);
        let mut q = Fifo::default();
        let handles: Vec<u32> = (0..5).map(|v| arena.push_back(&mut q, v)).collect();
        // Remove the middle entry (prev = handle of 1).
        assert_eq!(arena.remove(&mut q, handles[1], handles[2]), 2);
        // Remove the head.
        assert_eq!(arena.remove(&mut q, NIL, handles[0]), 0);
        // Remove the tail (prev = handle of 3).
        assert_eq!(arena.remove(&mut q, handles[3], handles[4]), 4);
        let order: Vec<u64> = arena.iter(&q).map(|(_, &v)| v).collect();
        assert_eq!(order, vec![1, 3]);
        assert_eq!(arena.back(&q), Some(&3));
        // The spliced queue keeps working as a FIFO.
        arena.push_back(&mut q, 9);
        assert_eq!(arena.pop_front(&mut q), Some(1));
        assert_eq!(arena.pop_front(&mut q), Some(3));
        assert_eq!(arena.pop_front(&mut q), Some(9));
        assert_eq!(arena.pop_front(&mut q), None);
        assert!(q.is_empty());
    }

    #[test]
    fn insert_after_covers_head_middle_and_tail() {
        let mut arena: Arena<u64> = Arena::with_capacity(4);
        let mut q = Fifo::default();
        let b = arena.push_back(&mut q, 2);
        arena.insert_after(&mut q, NIL, 1); // head
        arena.insert_after(&mut q, b, 4); // tail (after 2)
        arena.insert_after(&mut q, b, 3); // middle (after 2, before 4)
        let order: Vec<u64> = arena.iter(&q).map(|(_, &v)| v).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
        assert_eq!(arena.back(&q), Some(&4));
        // Insert at the head of an empty queue.
        let mut empty = Fifo::default();
        arena.insert_after(&mut empty, NIL, 7);
        assert_eq!(arena.front(&empty), Some(&7));
        assert_eq!(arena.back(&empty), Some(&7));
    }

    #[test]
    fn independent_queues_share_one_arena() {
        let mut arena: Arena<u64> = Arena::with_capacity(8);
        let mut a = Fifo::default();
        let mut b = Fifo::default();
        for v in 0..4 {
            arena.push_back(&mut a, v);
            arena.push_back(&mut b, 100 + v);
        }
        assert_eq!(arena.pop_front(&mut a), Some(0));
        assert_eq!(arena.pop_front(&mut b), Some(100));
        let a_order: Vec<u64> = arena.iter(&a).map(|(_, &v)| v).collect();
        let b_order: Vec<u64> = arena.iter(&b).map(|(_, &v)| v).collect();
        assert_eq!(a_order, vec![1, 2, 3]);
        assert_eq!(b_order, vec![101, 102, 103]);
    }
}
