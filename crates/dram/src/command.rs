//! Memory requests, completions, activation events and maintenance operations.

use serde::{Deserialize, Serialize};

use crate::address::{BankId, PhysAddr, RowId};
use crate::Nanos;

/// Identifier handed back when a request is enqueued, used to match
/// completions to requests.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Whether a demand access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A demand read (load miss or fetch miss).
    Read,
    /// A demand write (dirty writeback).
    Write,
}

/// A demand memory request issued by the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Physical address of the access (line-aligned by the controller).
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// The core that generated the request (for per-core statistics).
    pub core: usize,
    /// Time at which the request arrived at the memory controller.
    pub arrival_ns: Nanos,
    /// The row address *as issued by the system*, before any row-swap
    /// defense remapped it to a different chip location. Carried through so
    /// the [`ActivationEvent`] stream can report activations in the address
    /// space the aggressor trackers reason about. `None` when the issuer
    /// performs no remapping.
    pub logical_row: Option<RowId>,
    /// Opaque completion token of the agent waiting on this access, carried
    /// through the controller and handed back with the [`CompletedAccess`].
    /// `None` when nothing waits (writes, prefetches). Riding inside the
    /// request keeps the issuer from needing a side table keyed by
    /// [`RequestId`] on the per-access hot path.
    pub wait_token: Option<u64>,
}

impl MemRequest {
    /// Create a new demand request.
    #[must_use]
    pub fn new(addr: PhysAddr, kind: AccessKind, core: usize, arrival_ns: Nanos) -> Self {
        Self { addr, kind, core, arrival_ns, logical_row: None, wait_token: None }
    }

    /// Tag the request with the pre-remap (logical) row address.
    #[must_use]
    pub fn with_logical_row(mut self, row: RowId) -> Self {
        self.logical_row = Some(row);
        self
    }

    /// Attach the issuing agent's completion token.
    #[must_use]
    pub fn with_wait_token(mut self, token: u64) -> Self {
        self.wait_token = Some(token);
        self
    }
}

/// A completed demand access, reported by [`crate::MemoryController::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedAccess {
    /// The identifier returned by `enqueue`.
    pub request_id: RequestId,
    /// The request that completed.
    pub request: MemRequest,
    /// Completion time.
    pub finish_ns: Nanos,
    /// Whether the access hit in an open row buffer.
    pub row_hit: bool,
}

impl CompletedAccess {
    /// End-to-end latency of the access, from arrival to completion.
    #[must_use]
    pub fn latency_ns(&self) -> Nanos {
        self.finish_ns.saturating_sub(self.request.arrival_ns)
    }
}

/// One row activation (`ACT`) observed at a bank.
///
/// These events are the raw material of Row Hammer accounting: the aggressor
/// trackers count them and the attack models reason about them. Activations
/// caused by mitigation operations (swap, unswap, place-back) are flagged so
/// the latent-activation analysis of the Juggernaut attack can be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationEvent {
    /// Global bank the activation occurred in.
    pub bank: BankId,
    /// The physical row (chip location) that was activated.
    pub row: RowId,
    /// The row address as issued by the system (equal to [`Self::row`] when
    /// the request carried no remap tag, and for maintenance activations,
    /// which operate directly on chip locations).
    pub logical_row: RowId,
    /// Time of the activation.
    pub at_ns: Nanos,
    /// `true` if the activation was issued on behalf of a maintenance
    /// (mitigation) operation rather than a demand access.
    pub maintenance: bool,
    /// The kind of maintenance operation that issued this activation, or
    /// `None` for demand activations. Lets observers separate row-movement
    /// activations (the latent-activation channel of the Juggernaut attack)
    /// from counter-table traffic, whose rows live in a reserved region.
    pub maintenance_kind: Option<MaintenanceKind>,
}

/// A maintenance operation requested by a Row Hammer mitigation.
///
/// The controller executes maintenance with priority over demand requests of
/// the same bank: it blocks the bank for `duration_ns` and logs one
/// [`ActivationEvent`] per entry of `activations`. The set of activations is
/// decided by the mitigation — this is exactly where the *latent activations*
/// exploited by the Juggernaut attack enter the model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenanceOp {
    /// Bank the operation occupies.
    pub bank: BankId,
    /// Total bank-occupancy time of the operation.
    pub duration_ns: Nanos,
    /// Physical rows activated while performing the operation.
    pub activations: Vec<RowId>,
    /// Human-readable label (`"swap"`, `"unswap-swap"`, `"place-back"`, ...),
    /// used only for statistics.
    pub label: MaintenanceKind,
}

/// The kind of maintenance operation, for statistics and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MaintenanceKind {
    /// An initial swap of two rows.
    Swap,
    /// An unswap of a previously swapped pair followed by a fresh swap (RRS).
    UnswapSwap,
    /// A lazy place-back (SRS/Scale-SRS eviction of a stale RIT entry).
    PlaceBack,
    /// An access to a counter row holding per-row swap-tracking counters.
    CounterAccess,
    /// Any other mitigation-initiated bank occupancy.
    Other,
}

impl std::fmt::Display for MaintenanceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MaintenanceKind::Swap => "swap",
            MaintenanceKind::UnswapSwap => "unswap-swap",
            MaintenanceKind::PlaceBack => "place-back",
            MaintenanceKind::CounterAccess => "counter-access",
            MaintenanceKind::Other => "other",
        };
        f.write_str(s)
    }
}

impl MaintenanceOp {
    /// Create a new maintenance operation.
    #[must_use]
    pub fn new(
        bank: BankId,
        duration_ns: Nanos,
        activations: Vec<RowId>,
        label: MaintenanceKind,
    ) -> Self {
        Self { bank, duration_ns, activations, label }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completed_access_latency() {
        let req = MemRequest::new(PhysAddr::new(64), AccessKind::Read, 0, 100);
        let done = CompletedAccess {
            request_id: RequestId(1),
            request: req,
            finish_ns: 160,
            row_hit: false,
        };
        assert_eq!(done.latency_ns(), 60);
    }

    #[test]
    fn latency_saturates_rather_than_underflows() {
        let req = MemRequest::new(PhysAddr::new(64), AccessKind::Write, 0, 500);
        let done = CompletedAccess {
            request_id: RequestId(2),
            request: req,
            finish_ns: 400,
            row_hit: true,
        };
        assert_eq!(done.latency_ns(), 0);
    }

    #[test]
    fn maintenance_kind_display() {
        assert_eq!(MaintenanceKind::UnswapSwap.to_string(), "unswap-swap");
        assert_eq!(MaintenanceKind::Swap.to_string(), "swap");
    }

    #[test]
    fn request_id_display() {
        assert_eq!(RequestId(42).to_string(), "req42");
    }
}
