//! Streaming observers for memory-system events.
//!
//! Earlier revisions of the controller buffered every [`ActivationEvent`]
//! and [`CompletedAccess`] in `Vec`s that the simulation loop drained and
//! re-scanned each tick. At the activation rates a Row Hammer study
//! generates (every demand row miss plus every mitigation-induced row
//! movement), that buffer churn dominated the hot loop. The controller now
//! *pushes* each event into an observer the moment it is produced, so
//! trackers and defenses consume the stream in place with no intermediate
//! allocation; state that scales with traffic lives per bank
//! ([`crate::MemoryController`] keeps one completion queue per bank, the
//! simulator shards its activation accounting per bank).
//!
//! Implement [`ActivationSink`] to observe `ACT` commands and [`AccessSink`]
//! to observe demand completions. [`EventCollector`] is the Vec-backed
//! implementation for tests and offline analysis; [`NullSink`] discards
//! everything.

use crate::command::{ActivationEvent, CompletedAccess};

/// Observer of row activations (`ACT` commands), called synchronously by the
/// controller as each activation is issued.
pub trait ActivationSink {
    /// One row was activated.
    fn on_activation(&mut self, event: &ActivationEvent);

    /// A batch of row activations issued by one bank during one scheduling
    /// visit, in issue order.
    ///
    /// The controller's batched drain delivers activations through this
    /// method — one virtual call per bank per visit instead of one per
    /// event. The default forwards every event to
    /// [`ActivationSink::on_activation`], so existing sinks observe the
    /// identical per-event stream; hot-path sinks override it to hoist
    /// per-event dispatch and loop-invariant checks out of the inner loop.
    fn on_activation_batch(&mut self, events: &[ActivationEvent]) {
        for event in events {
            self.on_activation(event);
        }
    }
}

/// Observer of completed demand accesses, called by the controller as
/// simulated time passes each access's finish time.
pub trait AccessSink {
    /// One demand access completed.
    fn on_access(&mut self, access: &CompletedAccess);
}

/// A sink that discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ActivationSink for NullSink {
    fn on_activation(&mut self, _event: &ActivationEvent) {}

    fn on_activation_batch(&mut self, _events: &[ActivationEvent]) {}
}

impl AccessSink for NullSink {
    fn on_access(&mut self, _access: &CompletedAccess) {}
}

/// A sink that records every event, for tests and offline analysis.
///
/// This reintroduces exactly the buffering the streaming interface removes
/// from the hot path — use it only where a materialized event list is the
/// point (assertions, trace dumps).
#[derive(Debug, Clone, Default)]
pub struct EventCollector {
    /// Every activation observed, in issue order.
    pub activations: Vec<ActivationEvent>,
    /// Every completion observed, in delivery order.
    pub completions: Vec<CompletedAccess>,
}

impl EventCollector {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl ActivationSink for EventCollector {
    fn on_activation(&mut self, event: &ActivationEvent) {
        self.activations.push(*event);
    }

    fn on_activation_batch(&mut self, events: &[ActivationEvent]) {
        self.activations.extend_from_slice(events);
    }
}

impl AccessSink for EventCollector {
    fn on_access(&mut self, access: &CompletedAccess) {
        self.completions.push(*access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::BankId;
    use crate::command::{AccessKind, MemRequest, RequestId};
    use crate::PhysAddr;

    #[test]
    fn collector_records_both_event_kinds() {
        let mut collector = EventCollector::new();
        let event = ActivationEvent {
            bank: BankId::new(1),
            row: 7,
            logical_row: 9,
            at_ns: 5,
            maintenance: false,
            maintenance_kind: None,
        };
        collector.on_activation(&event);
        let access = CompletedAccess {
            request_id: RequestId(3),
            request: MemRequest::new(PhysAddr::new(64), AccessKind::Read, 0, 0),
            finish_ns: 99,
            row_hit: false,
        };
        collector.on_access(&access);
        assert_eq!(collector.activations, vec![event]);
        assert_eq!(collector.completions.len(), 1);
        assert_eq!(collector.completions[0].request_id, RequestId(3));
    }

    #[test]
    fn null_sink_accepts_events() {
        let mut sink = NullSink;
        let event = ActivationEvent {
            bank: BankId::new(0),
            row: 1,
            logical_row: 1,
            at_ns: 0,
            maintenance: true,
            maintenance_kind: Some(crate::command::MaintenanceKind::Swap),
        };
        sink.on_activation(&event);
    }
}
