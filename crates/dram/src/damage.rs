//! Row damage state and the ECC model: the substrate of the end-to-end
//! fault-injection layer.
//!
//! Security results elsewhere in the repo are stated in terms of the
//! TRH-crossing *proxy* (`max_victim_pressure >= TRH`). This module models
//! the causal step the proxy elides: a crossing flips concrete bits in a
//! concrete row, ECC may or may not catch them, and a later read of that
//! row serves corrupted data. The [`DamageStore`] keeps flipped-bit
//! positions keyed by **logical** row, so a row that is swapped away by a
//! defense carries its damage with it — exactly as real DRAM cells would.
//!
//! The store is purely observational: it never adds latency or traffic, so
//! enabling fault injection cannot perturb the timing (and therefore the
//! performance or security) of a simulation.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::address::RowId;

/// Which error-correcting code protects the modelled DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EccKind {
    /// No ECC: every flipped bit in a read line is served silently.
    #[default]
    None,
    /// SECDED per 8-byte word: one flipped bit is corrected, two are
    /// detected but uncorrectable, three or more alias into a valid
    /// codeword and are served silently.
    Secded,
    /// A chipkill-flavoured symbol code per 8-byte word: one bad 8-bit
    /// symbol is corrected regardless of how many bits inside it flipped,
    /// two bad symbols are detected, three or more are served silently.
    ChipkillLite,
}

impl EccKind {
    /// Stable lower-case label used in specs, reports and JSON.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EccKind::None => "none",
            EccKind::Secded => "secded",
            EccKind::ChipkillLite => "chipkill-lite",
        }
    }

    /// Parse a [`EccKind::label`] back into the kind.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "none" => Some(EccKind::None),
            "secded" => Some(EccKind::Secded),
            "chipkill-lite" => Some(EccKind::ChipkillLite),
            _ => None,
        }
    }

    /// The [`EccModel`] implementing this kind's per-word decode.
    #[must_use]
    pub fn model(&self) -> &'static dyn EccModel {
        match self {
            EccKind::None => &NoEcc,
            EccKind::Secded => &Secded,
            EccKind::ChipkillLite => &ChipkillLite,
        }
    }
}

/// What an ECC decode of one line (or word) produced, ordered from best to
/// worst so `max` folds word outcomes into a line outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EccOutcome {
    /// No flipped bits in the read data.
    Clean,
    /// Flips present but fully corrected; the consumer sees good data.
    Corrected,
    /// Flips detected but uncorrectable (a DUE): the consumer gets a
    /// machine-check instead of wrong data.
    DetectedUncorrectable,
    /// Flips aliased past the code: corrupted data served as if it were
    /// good. This is the outcome Rowhammer attacks are after.
    Silent,
}

/// One error-correcting code, decoding a single 64-bit word.
///
/// The fault layer works on flipped-bit *positions* rather than data
/// values, so a model classifies a word from the positions of its bad bits
/// (bit indices are word-relative, `0..64`).
pub trait EccModel: Sync {
    /// Classify one word given the word-relative positions of flipped bits
    /// (never empty: clean words are not presented to the model).
    fn classify_word(&self, bad_bits: &[u32]) -> EccOutcome;
}

/// No ECC: any flipped bit is served silently.
struct NoEcc;

impl EccModel for NoEcc {
    fn classify_word(&self, _bad_bits: &[u32]) -> EccOutcome {
        EccOutcome::Silent
    }
}

/// SECDED (single-error-correct, double-error-detect) per 64-bit word.
struct Secded;

impl EccModel for Secded {
    fn classify_word(&self, bad_bits: &[u32]) -> EccOutcome {
        match bad_bits.len() {
            0 => EccOutcome::Clean,
            1 => EccOutcome::Corrected,
            2 => EccOutcome::DetectedUncorrectable,
            _ => EccOutcome::Silent,
        }
    }
}

/// Symbol-based correction per 64-bit word: bits are grouped into 8-bit
/// symbols and the code corrects one bad symbol, detects two.
struct ChipkillLite;

impl EccModel for ChipkillLite {
    fn classify_word(&self, bad_bits: &[u32]) -> EccOutcome {
        let mut symbols = 0u8;
        for &bit in bad_bits {
            symbols |= 1 << (bit / 8).min(7);
        }
        match symbols.count_ones() {
            0 => EccOutcome::Clean,
            1 => EccOutcome::Corrected,
            2 => EccOutcome::DetectedUncorrectable,
            _ => EccOutcome::Silent,
        }
    }
}

const WORD_BITS: u32 = 64;

/// Flipped-bit positions for every damaged row, keyed by (global bank,
/// **logical** row).
///
/// Rows are damaged at their physical location (the blast radius of an
/// aggressor's activations) but read back by logical address; keying by the
/// logical occupant at flip time means a subsequent swap, unswap or
/// place-back moves the damage along with the data, with no bookkeeping at
/// swap time. A `BTreeMap` keeps iteration (and therefore scrubbing and
/// reporting) deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DamageStore {
    rows: BTreeMap<(usize, RowId), Vec<u32>>,
    bits_per_line: u32,
}

impl DamageStore {
    /// An empty store for rows read in lines of `line_size_bytes`.
    #[must_use]
    pub fn new(line_size_bytes: u64) -> Self {
        Self { rows: BTreeMap::new(), bits_per_line: (line_size_bytes as u32).max(1) * 8 }
    }

    /// Whether no row carries damage (the hot-path early-out).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of rows carrying at least one flipped bit.
    #[must_use]
    pub fn damaged_rows(&self) -> usize {
        self.rows.len()
    }

    /// Record a flipped bit at a row-relative position. Returns `true` if
    /// the bit was not already flipped (damage is one-way: a second flip of
    /// the same cell is absorbed rather than toggling it back).
    pub fn add_flip(&mut self, bank: usize, row: RowId, bit: u32) -> bool {
        let bits = self.rows.entry((bank, row)).or_default();
        match bits.binary_search(&bit) {
            Ok(_) => false,
            Err(at) => {
                bits.insert(at, bit);
                true
            }
        }
    }

    /// The flipped bits falling inside one line of a row, as line-relative
    /// positions (empty if the row or line is clean).
    #[must_use]
    pub fn line_flips(&self, bank: usize, row: RowId, line: u64) -> Vec<u32> {
        let Some(bits) = self.rows.get(&(bank, row)) else {
            return Vec::new();
        };
        let start = (line as u32).saturating_mul(self.bits_per_line);
        let end = start.saturating_add(self.bits_per_line);
        bits.iter().filter(|&&b| b >= start && b < end).map(|&b| b - start).collect()
    }

    /// Drop the damage inside one line of a row (a write overwrites the
    /// stored data, healing it). Returns how many bits were cleared.
    pub fn clear_line(&mut self, bank: usize, row: RowId, line: u64) -> usize {
        let Some(bits) = self.rows.get_mut(&(bank, row)) else {
            return 0;
        };
        let start = (line as u32).saturating_mul(self.bits_per_line);
        let end = start.saturating_add(self.bits_per_line);
        let before = bits.len();
        bits.retain(|&b| b < start || b >= end);
        let cleared = before - bits.len();
        if bits.is_empty() {
            self.rows.remove(&(bank, row));
        }
        cleared
    }

    /// Classify the damage inside one line under `ecc`: the worst per-word
    /// outcome across the line's 64-bit words.
    #[must_use]
    pub fn classify_line(ecc: EccKind, line_flips: &[u32]) -> EccOutcome {
        if line_flips.is_empty() {
            return EccOutcome::Clean;
        }
        let model = ecc.model();
        let mut sorted = line_flips.to_vec();
        sorted.sort_unstable();
        let mut outcome = EccOutcome::Clean;
        let mut word_bits: Vec<u32> = Vec::with_capacity(4);
        let mut word = u32::MAX;
        for bit in sorted {
            if bit / WORD_BITS != word {
                if !word_bits.is_empty() {
                    outcome = outcome.max(model.classify_word(&word_bits));
                }
                word = bit / WORD_BITS;
                word_bits.clear();
            }
            word_bits.push(bit % WORD_BITS);
        }
        if !word_bits.is_empty() {
            outcome = outcome.max(model.classify_word(&word_bits));
        }
        outcome
    }

    /// One scrub pass: visit every damaged line, correct what `ecc` can
    /// correct (removing those bits), and count what it can only detect.
    /// Returns `(lines_corrected, lines_detected_uncorrectable)`. Silent
    /// damage is invisible to the scrubber and stays in place, as does
    /// detected-but-uncorrectable damage.
    pub fn scrub(&mut self, ecc: EccKind) -> (u64, u64) {
        let mut corrected = 0u64;
        let mut detected = 0u64;
        let bits_per_line = self.bits_per_line;
        for bits in self.rows.values_mut() {
            let mut keep: Vec<u32> = Vec::with_capacity(bits.len());
            let mut i = 0;
            while i < bits.len() {
                let line = bits[i] / bits_per_line;
                let mut j = i;
                while j < bits.len() && bits[j] / bits_per_line == line {
                    j += 1;
                }
                let line_bits: Vec<u32> = bits[i..j].iter().map(|b| b % bits_per_line).collect();
                match Self::classify_line(ecc, &line_bits) {
                    EccOutcome::Corrected => corrected += 1,
                    EccOutcome::DetectedUncorrectable => {
                        detected += 1;
                        keep.extend_from_slice(&bits[i..j]);
                    }
                    _ => keep.extend_from_slice(&bits[i..j]),
                }
                i = j;
            }
            *bits = keep;
        }
        self.rows.retain(|_, bits| !bits.is_empty());
        (corrected, detected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecc_labels_round_trip() {
        for kind in [EccKind::None, EccKind::Secded, EccKind::ChipkillLite] {
            assert_eq!(EccKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(EccKind::from_label("parity"), None);
    }

    #[test]
    fn secded_corrects_one_bit_detects_two_misses_three() {
        assert_eq!(DamageStore::classify_line(EccKind::Secded, &[3]), EccOutcome::Corrected);
        assert_eq!(
            DamageStore::classify_line(EccKind::Secded, &[3, 9]),
            EccOutcome::DetectedUncorrectable
        );
        assert_eq!(DamageStore::classify_line(EccKind::Secded, &[3, 9, 40]), EccOutcome::Silent);
        // One bit per word stays correctable even with many words hit.
        assert_eq!(
            DamageStore::classify_line(EccKind::Secded, &[3, 64 + 9, 128 + 40]),
            EccOutcome::Corrected
        );
    }

    #[test]
    fn chipkill_tolerates_a_whole_symbol() {
        // Five flips inside one 8-bit symbol: one bad symbol, corrected.
        assert_eq!(
            DamageStore::classify_line(EccKind::ChipkillLite, &[8, 9, 10, 11, 12]),
            EccOutcome::Corrected
        );
        // Two symbols hit: detected.
        assert_eq!(
            DamageStore::classify_line(EccKind::ChipkillLite, &[8, 16]),
            EccOutcome::DetectedUncorrectable
        );
        // Three symbols hit: silent.
        assert_eq!(
            DamageStore::classify_line(EccKind::ChipkillLite, &[0, 8, 16]),
            EccOutcome::Silent
        );
    }

    #[test]
    fn no_ecc_serves_everything_silently() {
        assert_eq!(DamageStore::classify_line(EccKind::None, &[0]), EccOutcome::Silent);
        assert_eq!(DamageStore::classify_line(EccKind::None, &[]), EccOutcome::Clean);
    }

    #[test]
    fn flips_are_per_line_and_writes_heal() {
        let mut store = DamageStore::new(64);
        assert!(store.add_flip(0, 7, 5));
        assert!(!store.add_flip(0, 7, 5), "re-flipping a cell is absorbed");
        assert!(store.add_flip(0, 7, 512 + 3));
        assert_eq!(store.line_flips(0, 7, 0), vec![5]);
        assert_eq!(store.line_flips(0, 7, 1), vec![3]);
        assert!(store.line_flips(0, 7, 2).is_empty());
        assert!(store.line_flips(1, 7, 0).is_empty());
        assert_eq!(store.clear_line(0, 7, 0), 1);
        assert!(store.line_flips(0, 7, 0).is_empty());
        assert_eq!(store.damaged_rows(), 1);
        assert_eq!(store.clear_line(0, 7, 1), 1);
        assert!(store.is_empty());
    }

    #[test]
    fn scrub_corrects_single_bits_and_keeps_due_damage() {
        let mut store = DamageStore::new(64);
        store.add_flip(0, 1, 0); // one bit in one word: correctable
        store.add_flip(0, 2, 0); // two bits in one word: DUE, stays
        store.add_flip(0, 2, 1);
        store.add_flip(0, 3, 0); // three bits in one word: silent, stays
        store.add_flip(0, 3, 1);
        store.add_flip(0, 3, 2);
        let (corrected, detected) = store.scrub(EccKind::Secded);
        assert_eq!((corrected, detected), (1, 1));
        assert_eq!(store.damaged_rows(), 2, "DUE and silent damage survive the scrub");
        assert!(store.line_flips(0, 1, 0).is_empty());
        // A second scrub finds the same DUE again and corrects nothing new.
        assert_eq!(store.scrub(EccKind::Secded), (0, 1));
        // Without ECC a scrub is blind.
        let mut blind = DamageStore::new(64);
        blind.add_flip(0, 1, 0);
        assert_eq!(blind.scrub(EccKind::None), (0, 0));
        assert_eq!(blind.damaged_rows(), 1);
    }
}
