//! Aggregate statistics collected by the memory controller.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::command::MaintenanceKind;
use crate::Nanos;

/// Statistics accumulated by a [`crate::MemoryController`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Number of demand reads serviced.
    pub reads: u64,
    /// Number of demand writes serviced.
    pub writes: u64,
    /// Demand accesses that hit in an open row buffer.
    pub row_hits: u64,
    /// Demand accesses that required activating a row (closed or conflict).
    pub row_misses: u64,
    /// Total row activations, demand plus maintenance.
    pub activations: u64,
    /// Row activations issued by maintenance (mitigation) operations only.
    pub maintenance_activations: u64,
    /// Number of maintenance operations executed, by kind.
    pub maintenance_ops: HashMap<MaintenanceKind, u64>,
    /// Total bank-occupancy time consumed by maintenance operations.
    pub maintenance_busy_ns: Nanos,
    /// Number of refresh (REF) commands issued.
    pub refreshes: u64,
    /// Sum of demand-access latencies, for computing the average.
    pub total_demand_latency_ns: Nanos,
    /// Number of refresh windows (64 ms epochs) that have elapsed.
    pub windows_elapsed: u64,
}

impl ControllerStats {
    /// Total demand accesses serviced.
    #[must_use]
    pub fn demand_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Average demand-access latency in nanoseconds, or 0 if no accesses.
    #[must_use]
    pub fn average_latency_ns(&self) -> f64 {
        if self.demand_accesses() == 0 {
            0.0
        } else {
            self.total_demand_latency_ns as f64 / self.demand_accesses() as f64
        }
    }

    /// Row-buffer hit rate over demand accesses, in [0, 1].
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Total maintenance operations of a given kind.
    #[must_use]
    pub fn maintenance_count(&self, kind: MaintenanceKind) -> u64 {
        self.maintenance_ops.get(&kind).copied().unwrap_or(0)
    }

    /// Record one maintenance operation of the given kind.
    pub(crate) fn record_maintenance(&mut self, kind: MaintenanceKind, busy_ns: Nanos, acts: u64) {
        *self.maintenance_ops.entry(kind).or_insert(0) += 1;
        self.maintenance_busy_ns += busy_ns;
        self.maintenance_activations += acts;
        self.activations += acts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_empty_stats() {
        let s = ControllerStats::default();
        assert_eq!(s.average_latency_ns(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.demand_accesses(), 0);
    }

    #[test]
    fn maintenance_recording_accumulates() {
        let mut s = ControllerStats::default();
        s.record_maintenance(MaintenanceKind::Swap, 2700, 2);
        s.record_maintenance(MaintenanceKind::Swap, 2700, 2);
        s.record_maintenance(MaintenanceKind::PlaceBack, 1350, 1);
        assert_eq!(s.maintenance_count(MaintenanceKind::Swap), 2);
        assert_eq!(s.maintenance_count(MaintenanceKind::PlaceBack), 1);
        assert_eq!(s.maintenance_count(MaintenanceKind::UnswapSwap), 0);
        assert_eq!(s.maintenance_busy_ns, 6750);
        assert_eq!(s.maintenance_activations, 5);
        assert_eq!(s.activations, 5);
    }

    #[test]
    fn hit_rate_and_latency_math() {
        let s = ControllerStats {
            reads: 3,
            writes: 1,
            row_hits: 1,
            row_misses: 3,
            total_demand_latency_ns: 400,
            ..ControllerStats::default()
        };
        assert_eq!(s.demand_accesses(), 4);
        assert!((s.average_latency_ns() - 100.0).abs() < f64::EPSILON);
        assert!((s.row_hit_rate() - 0.25).abs() < f64::EPSILON);
    }
}
