//! Error types for the DRAM model.

use std::error::Error;
use std::fmt;

/// Errors produced by the DRAM device and memory-controller model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// A physical address decoded to a row outside the configured bank.
    RowOutOfRange {
        /// The decoded row index.
        row: u64,
        /// The number of rows per bank in the configuration.
        rows_per_bank: u64,
    },
    /// A bank index was outside the configured geometry.
    BankOutOfRange {
        /// The offending global bank index.
        bank: usize,
        /// Total number of banks in the system.
        total_banks: usize,
    },
    /// The per-bank transaction queue is full and cannot accept new requests.
    QueueFull {
        /// The global bank index whose queue overflowed.
        bank: usize,
    },
    /// The configuration is internally inconsistent (e.g. zero banks).
    InvalidConfig(String),
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::RowOutOfRange { row, rows_per_bank } => {
                write!(f, "row {row} out of range for bank with {rows_per_bank} rows")
            }
            DramError::BankOutOfRange { bank, total_banks } => {
                write!(f, "bank {bank} out of range for system with {total_banks} banks")
            }
            DramError::QueueFull { bank } => {
                write!(f, "transaction queue full for bank {bank}")
            }
            DramError::InvalidConfig(msg) => write!(f, "invalid DRAM configuration: {msg}"),
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = DramError::RowOutOfRange { row: 200_000, rows_per_bank: 131_072 };
        let s = e.to_string();
        assert!(s.contains("200000"));
        assert!(s.contains("131072"));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }

    #[test]
    fn queue_full_display() {
        assert_eq!(
            DramError::QueueFull { bank: 3 }.to_string(),
            "transaction queue full for bank 3"
        );
    }
}
