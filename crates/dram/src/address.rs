//! Physical addresses and their mapping onto DRAM geometry.
//!
//! The mapper uses the interleaving typical of USIMM-style configurations:
//! the cache-line offset occupies the lowest bits, followed by channel,
//! bank, column (line-within-row), then row — so consecutive cache lines
//! stripe across channels, and consecutive rows of a bank are far apart in
//! the physical address space.

use serde::{Deserialize, Serialize};

use crate::config::DramConfig;
use crate::error::DramError;

/// A physical byte address as seen by the memory controller.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Create a physical address from a raw byte address.
    #[must_use]
    pub fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// The raw byte address.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// The address of the cache line containing this byte, for a given line size.
    #[must_use]
    pub fn line_aligned(self, line_size: u64) -> Self {
        Self(self.0 / line_size * line_size)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

impl From<PhysAddr> for u64 {
    fn from(a: PhysAddr) -> Self {
        a.0
    }
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A row index within one bank.
pub type RowId = u64;

/// A global bank identifier, flattening channel, rank and bank.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BankId(usize);

impl BankId {
    /// Create a global bank id from a flat index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// Flat index of this bank across the whole memory system.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for BankId {
    fn from(v: usize) -> Self {
        Self(v)
    }
}

impl std::fmt::Display for BankId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

/// A fully decoded DRAM coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramAddress {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: RowId,
    /// Column (cache-line index within the row).
    pub column: u64,
}

impl DramAddress {
    /// The global bank id for this coordinate under the given configuration.
    #[must_use]
    pub fn bank_id(&self, config: &DramConfig) -> BankId {
        let per_channel = config.ranks_per_channel * config.banks_per_rank;
        BankId::new(self.channel * per_channel + self.rank * config.banks_per_rank + self.bank)
    }
}

/// A divisor with a precomputed power-of-two fast path.
///
/// Address decoding runs twice per simulated memory operation, and every
/// realistic DRAM geometry (Table III included) is a power of two in all
/// dimensions — a shift-and-mask beats the div/mod chain by an order of
/// magnitude. Non-power-of-two geometries keep the exact div/mod semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct PowDiv {
    divisor: u64,
    shift: u32,
    pow2: bool,
}

impl PowDiv {
    pub(crate) fn new(divisor: u64) -> Self {
        Self { divisor, shift: divisor.trailing_zeros(), pow2: divisor.is_power_of_two() }
    }

    #[inline]
    pub(crate) fn div(self, v: u64) -> u64 {
        if self.pow2 {
            v >> self.shift
        } else {
            v / self.divisor
        }
    }

    #[inline]
    pub(crate) fn rem(self, v: u64) -> u64 {
        if self.pow2 {
            v & (self.divisor - 1)
        } else {
            v % self.divisor
        }
    }
}

/// Maps physical addresses to DRAM coordinates and back.
///
/// Bit layout, from least significant to most significant:
/// `line offset | column | channel | bank (within rank) | rank | row`
/// — USIMM's default row-interleaved scheme, in which a contiguous 8 KB
/// region of the physical address space maps onto a single DRAM row of a
/// single bank. This is the mapping the paper's hot-row behaviour (and the
/// Row Hammer attack surface) assumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddressMapper {
    config: DramConfig,
    line: PowDiv,
    lines_per_row: PowDiv,
    channels: PowDiv,
    banks_per_rank: PowDiv,
    ranks_per_channel: PowDiv,
    rows_per_bank: PowDiv,
}

impl AddressMapper {
    /// Create a mapper for the given configuration.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        Self {
            line: PowDiv::new(config.line_size_bytes),
            lines_per_row: PowDiv::new(config.lines_per_row()),
            channels: PowDiv::new(config.channels as u64),
            banks_per_rank: PowDiv::new(config.banks_per_rank as u64),
            ranks_per_channel: PowDiv::new(config.ranks_per_channel as u64),
            rows_per_bank: PowDiv::new(config.rows_per_bank),
            config,
        }
    }

    /// The configuration this mapper was built from.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Decode a physical address into its DRAM coordinate.
    ///
    /// Addresses beyond the configured capacity wrap around, which mirrors
    /// the behaviour of address-interleaving hardware when fed a truncated
    /// address and keeps synthetic trace generation simple.
    #[must_use]
    pub fn decode(&self, addr: PhysAddr) -> DramAddress {
        let mut v = self.line.div(addr.value());
        let column = self.lines_per_row.rem(v);
        v = self.lines_per_row.div(v);
        let channel = self.channels.rem(v) as usize;
        v = self.channels.div(v);
        let bank = self.banks_per_rank.rem(v) as usize;
        v = self.banks_per_rank.div(v);
        let rank = self.ranks_per_channel.rem(v) as usize;
        v = self.ranks_per_channel.div(v);
        let row = self.rows_per_bank.rem(v);
        DramAddress { channel, rank, bank, row, column }
    }

    /// Encode a DRAM coordinate back into a physical address.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] or [`DramError::BankOutOfRange`]
    /// if the coordinate does not fit the configured geometry.
    pub fn encode(&self, addr: &DramAddress) -> Result<PhysAddr, DramError> {
        let c = &self.config;
        if addr.row >= c.rows_per_bank {
            return Err(DramError::RowOutOfRange { row: addr.row, rows_per_bank: c.rows_per_bank });
        }
        if addr.channel >= c.channels
            || addr.rank >= c.ranks_per_channel
            || addr.bank >= c.banks_per_rank
        {
            return Err(DramError::BankOutOfRange {
                bank: addr.bank_id(c).index(),
                total_banks: c.total_banks(),
            });
        }
        let mut v = addr.row;
        v = v * c.ranks_per_channel as u64 + addr.rank as u64;
        v = v * c.banks_per_rank as u64 + addr.bank as u64;
        v = v * c.channels as u64 + addr.channel as u64;
        v = v * c.lines_per_row() + (addr.column % c.lines_per_row());
        Ok(PhysAddr::new(v * c.line_size_bytes))
    }

    /// Convenience: the (global bank, row) pair a physical address maps to.
    #[must_use]
    pub fn bank_and_row(&self, addr: PhysAddr) -> (BankId, RowId) {
        let d = self.decode(addr);
        (d.bank_id(&self.config), d.row)
    }

    /// Build the physical address of the first line of `row` in global `bank`.
    ///
    /// # Errors
    ///
    /// Returns an error if `bank` or `row` are out of range.
    pub fn address_of(&self, bank: BankId, row: RowId) -> Result<PhysAddr, DramError> {
        let c = &self.config;
        let total = c.total_banks();
        if bank.index() >= total {
            return Err(DramError::BankOutOfRange { bank: bank.index(), total_banks: total });
        }
        let per_channel = c.ranks_per_channel * c.banks_per_rank;
        let channel = bank.index() / per_channel;
        let within = bank.index() % per_channel;
        let rank = within / c.banks_per_rank;
        let bank_in_rank = within % c.banks_per_rank;
        self.encode(&DramAddress { channel, rank, bank: bank_in_rank, row, column: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper() -> AddressMapper {
        AddressMapper::new(DramConfig::default())
    }

    #[test]
    fn decode_encode_round_trip() {
        let m = mapper();
        for raw in [0u64, 64, 4096, 1 << 20, (1 << 34) + 8192, 0xdead_bee0] {
            let a = PhysAddr::new(raw).line_aligned(64);
            let d = m.decode(a);
            let back = m.encode(&d).unwrap();
            assert_eq!(m.decode(back), d, "raw = {raw:#x}");
        }
    }

    #[test]
    fn consecutive_lines_stay_within_one_row() {
        let m = mapper();
        let a = m.decode(PhysAddr::new(0));
        let b = m.decode(PhysAddr::new(64));
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
        assert_eq!(b.column, a.column + 1);
    }

    #[test]
    fn row_sized_regions_switch_channel_or_bank() {
        // An 8 KB contiguous region is exactly one DRAM row; the next region
        // lands in a different channel (or bank) per the interleaving order.
        let m = mapper();
        let cfg = DramConfig::default();
        let a = m.decode(PhysAddr::new(0));
        let b = m.decode(PhysAddr::new(cfg.row_size_bytes));
        assert_ne!((a.channel, a.bank, a.row), (b.channel, b.bank, b.row));
        assert_ne!(a.channel, b.channel);
    }

    #[test]
    fn address_of_maps_back_to_same_bank_row() {
        let m = mapper();
        let bank = BankId::new(17);
        let row = 77_777;
        let addr = m.address_of(bank, row).unwrap();
        let (b, r) = m.bank_and_row(addr);
        assert_eq!(b, bank);
        assert_eq!(r, row);
    }

    #[test]
    fn address_of_rejects_bad_bank() {
        let m = mapper();
        let total = DramConfig::default().total_banks();
        assert!(m.address_of(BankId::new(total), 0).is_err());
    }

    #[test]
    fn encode_rejects_bad_row() {
        let m = mapper();
        let bad = DramAddress { channel: 0, rank: 0, bank: 0, row: u64::MAX, column: 0 };
        assert!(matches!(m.encode(&bad), Err(DramError::RowOutOfRange { .. })));
    }

    #[test]
    fn bank_id_is_dense_and_unique() {
        let cfg = DramConfig::default();
        let mut seen = std::collections::HashSet::new();
        for ch in 0..cfg.channels {
            for rk in 0..cfg.ranks_per_channel {
                for bk in 0..cfg.banks_per_rank {
                    let d = DramAddress { channel: ch, rank: rk, bank: bk, row: 0, column: 0 };
                    let id = d.bank_id(&cfg).index();
                    assert!(id < cfg.total_banks());
                    assert!(seen.insert(id), "duplicate bank id {id}");
                }
            }
        }
        assert_eq!(seen.len(), cfg.total_banks());
    }

    #[test]
    fn phys_addr_display_is_hex() {
        assert_eq!(PhysAddr::new(255).to_string(), "0xff");
    }
}
