//! # srs-dram
//!
//! A DDR4-style DRAM device and memory-controller timing model, built as the
//! evaluation substrate for the *Scalable and Secure Row-Swap* (Scale-SRS)
//! reproduction. The model follows the structure of the USIMM memory-system
//! simulator used by the paper: independent channels, ranks, and banks, a
//! row-buffer per bank, open/closed page policies, FR-FCFS scheduling,
//! periodic refresh, and — crucially for Row Hammer studies — precise
//! *activation accounting* for every `ACT` command issued on every row,
//! including those issued on behalf of mitigation (row-swap) operations.
//!
//! The model is transaction-level rather than cycle-accurate: every demand
//! access and maintenance operation is charged bank-occupancy and data-bus
//! time in nanoseconds derived from the DDR4 timing parameters of Table III
//! of the paper. This captures the quantities the paper reports (extra
//! activations, bank blocking from swaps, queueing delay, normalized IPC)
//! without simulating individual DRAM clock ticks.
//!
//! ## Example
//!
//! ```
//! use srs_dram::{AccessKind, DramConfig, EventCollector, MemRequest, MemoryController, PhysAddr};
//!
//! let config = DramConfig::default();
//! let mut mc = MemoryController::new(config);
//! let req = MemRequest::new(PhysAddr::new(0x4000), AccessKind::Read, 0, 0);
//! let id = mc.enqueue(req).expect("queue accepts request");
//! // Advance time until the request completes; activations and completions
//! // stream into the sink as they happen.
//! let mut events = EventCollector::new();
//! let mut now = 0;
//! while events.completions.is_empty() {
//!     now += 10;
//!     mc.tick_into(now, &mut events);
//! }
//! assert_eq!(events.completions[0].request_id, id);
//! assert_eq!(events.activations.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Hot-path crates must not panic on capacity or decode surprises: every
// remaining unwrap/expect needs a stated invariant (see the per-site
// allows) or a test-only context.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod address;
pub(crate) mod arena;
pub mod bank;
pub mod command;
pub mod config;
pub mod controller;
pub mod damage;
pub mod error;
pub mod sink;
pub mod stats;

pub use address::{AddressMapper, BankId, DramAddress, PhysAddr, RowId};
pub use bank::{Bank, BankState};
pub use command::{
    AccessKind, ActivationEvent, CompletedAccess, MaintenanceKind, MaintenanceOp, MemRequest,
    RequestId,
};
pub use config::{DramConfig, DramTiming, PagePolicy};
pub use controller::MemoryController;
pub use damage::{DamageStore, EccKind, EccModel, EccOutcome};
pub use error::DramError;
pub use sink::{AccessSink, ActivationSink, EventCollector, NullSink};
pub use stats::ControllerStats;

/// Nanoseconds, the time base used throughout the memory model.
pub type Nanos = u64;
