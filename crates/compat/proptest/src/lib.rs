//! Offline shim for `proptest`.
//!
//! The build environment cannot reach a crate registry, so this crate
//! re-implements the slice of proptest the workspace's property tests use:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, integer-range /
//! tuple / boolean / `sample::select` / `collection::vec` strategies, and a
//! deterministic per-test RNG. There is no shrinking — when a case fails,
//! the full generated input is printed instead, which is workable because
//! the workspace's strategies generate small values.

#![forbid(unsafe_code)]

/// Number of random cases each `proptest!` test runs.
pub const DEFAULT_CASES: u32 = 64;

/// The deterministic RNG driving case generation.
pub mod test_runner {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// SplitMix64 generator seeded from the test name, so every run of a
    /// given test explores the same cases (reproducible CI).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test's name.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut hasher = DefaultHasher::new();
            name.hash(&mut hasher);
            Self { state: hasher.finish() | 1 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample empty range");
            self.next_u64() % bound
        }
    }
}

/// The strategy abstraction: how to generate one value of a type.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng), self.3.sample(rng))
        }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// The uniform boolean strategy.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Sampling from explicit value sets (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy picking uniformly from a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Pick uniformly from `options`.
    ///
    /// Panics at sample time if `options` is empty.
    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Optional-value strategies (`prop::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `None` a quarter of the time and `Some(inner)`
    /// otherwise (mirrors proptest's default weighting).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generate `Option` values whose payload comes from `inner`.
    #[must_use]
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generate vectors whose length is drawn from `len` and whose elements
    /// come from `element`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = Strategy::sample(&self.len, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// The `prop::...` path alias proptest users write.
    pub mod prop {
        pub use crate::{bool, collection, option, sample};
    }
}

/// Assert inside a `proptest!` body; failures report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`DEFAULT_CASES`] deterministic random cases.
/// When a case fails, the generated inputs are printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..$crate::DEFAULT_CASES {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || $body,
                    ));
                    if let Err(panic) = outcome {
                        let message = panic
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| panic.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!(
                            "property failed at case {}/{} with inputs [{}]: {}",
                            case + 1,
                            $crate::DEFAULT_CASES,
                            inputs.trim_end_matches(", "),
                            message
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 10u64..20,
            flags in crate::collection::vec(prop::bool::ANY, 0..8),
            pick in prop::sample::select(vec![1u32, 2, 3]),
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(flags.len() < 8);
            prop_assert!((1..=3).contains(&pick));
        }

        #[test]
        fn tuples_compose(pair in (0u32..4, (0u64..9, prop::bool::ANY))) {
            let (a, (b, _flag)) = pair;
            prop_assert!(a < 4);
            prop_assert_eq!(b.min(8), b);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
