//! Offline shim for `criterion`.
//!
//! Implements the `bench_function` / `criterion_group!` / `criterion_main!`
//! surface the micro-benchmarks use. Instead of criterion's statistical
//! machinery it times adaptively-sized batches (doubling until the batch
//! takes long enough to swamp timer overhead) and prints the mean ns/iter —
//! enough to compare hot-path revisions of the simulator locally.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each benchmark function.
pub struct Criterion {
    min_batch_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `SRS_BENCH_SMOKE=1` (the workspace-wide bench smoke switch) cuts
        // the per-benchmark batch target so CI can execute every harness
        // end to end without pretending its wall times are stable numbers.
        let smoke = std::env::var_os("SRS_BENCH_SMOKE").is_some_and(|v| v == "1");
        let millis = if smoke { 10 } else { 200 };
        Self { min_batch_time: Duration::from_millis(millis) }
    }
}

impl Criterion {
    /// Time `f` and print a `name ... ns/iter` line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { iters: 1_000, elapsed: Duration::ZERO };
        loop {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed >= self.min_batch_time || bencher.iters >= 1 << 24 {
                break;
            }
            bencher.iters *= 2;
        }
        let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        println!("{name:<40} {ns_per_iter:>12.1} ns/iter ({} iters)", bencher.iters);
        self
    }
}

/// Runs the measured closure a batch of iterations at a time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure one batch of calls to `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declare a function that runs a group of benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion { min_batch_time: Duration::from_micros(10) };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        assert!(calls >= 1_000);
    }
}
