//! Offline shim for `fxhash`.
//!
//! Implements the Fx multiply-rotate hash (the non-cryptographic hasher the
//! Rust compiler uses for its internal tables) and the `FxHashMap` /
//! `FxHashSet` aliases. Unlike `std`'s SipHash `RandomState`, `FxHasher`
//! carries **no per-instance random seed**: two maps built in different
//! processes — or two simulator engines built in the same process — hash
//! identically, which the simulator relies on for run-to-run determinism on
//! its per-activation hot paths.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit Fx seed (the golden-ratio-derived constant rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher.
///
/// Every written word is folded in with a rotate-xor-multiply step. Do not
/// use where an attacker chooses the keys: the simulator's keys are row
/// indices and request ids it generates itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Builds [`FxHasher`]s; a zero-sized, seedless `BuildHasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash a single hashable value with the Fx hasher (parity with the
/// crates.io `fxhash::hash64`).
pub fn hash64<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_across_instances() {
        let a = hash64(&0xDEAD_BEEFu64);
        let b = hash64(&0xDEAD_BEEFu64);
        assert_eq!(a, b);
        assert_ne!(hash64(&1u64), hash64(&2u64));
    }

    #[test]
    fn maps_with_same_inserts_iterate_identically() {
        let build = |keys: &[u64]| -> Vec<u64> {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for &k in keys {
                m.insert(k, k * 2);
            }
            m.keys().copied().collect()
        };
        let keys: Vec<u64> = (0..1_000).map(|i| i * 37 % 997).collect();
        assert_eq!(build(&keys), build(&keys), "iteration order must be reproducible");
    }

    #[test]
    fn byte_writes_cover_tail_chunks() {
        let mut h = FxHasher::default();
        h.write(b"0123456789abc");
        let long = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(b"0123456789abd");
        assert_ne!(long, h2.finish());
    }

    #[test]
    fn set_alias_works() {
        let mut s: FxHashSet<(usize, u64)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.contains(&(1, 2)));
    }
}
