//! Offline shim for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal stand-in: `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! expand to empty marker-trait impls (the shim `serde` traits carry no
//! methods). The derive input is scanned token-by-token — no `syn`/`quote`
//! dependency — which is sufficient because every derived type in this
//! workspace is a plain non-generic struct or enum.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name from a derive input, returning `None` when the type
/// is generic (the shim then emits no impl at all, which is fine because the
/// marker traits are never used as bounds).
fn non_generic_type_name(input: &TokenStream) -> Option<String> {
    let mut iter = input.clone().into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return match iter.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == '<' => None,
                        _ => Some(name.to_string()),
                    };
                }
            }
        }
    }
    None
}

/// Derive the `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match non_generic_type_name(&input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}

/// Derive the `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match non_generic_type_name(&input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}
