//! Offline shim for `bytes`.
//!
//! Provides cheaply-cloneable immutable byte buffers (`Bytes`), a growable
//! builder (`BytesMut`), and the big-endian `Buf`/`BufMut` cursor methods
//! that the trace binary codec uses. `Bytes` shares one `Arc<[u8]>`
//! allocation across clones and slices, like the real crate.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self { data: Arc::from(&[][..]), start: 0, end: 0 }
    }

    /// Number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice of the buffer sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: Arc::from(v.into_boxed_slice()), start: 0, end }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Read cursor over a byte buffer; integers are big-endian, matching the
/// real `bytes` crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consume and return one byte.
    fn get_u8(&mut self) -> u8;

    /// Consume and return a big-endian `u32`.
    fn get_u32(&mut self) -> u32;

    /// Consume and return a big-endian `u64`.
    fn get_u64(&mut self) -> u64;

    /// Consume `len` bytes and return them as a `Bytes`.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let b = self.data[self.start];
        self.start += 1;
        b
    }

    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow");
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(&self.data[self.start..self.start + 4]);
        self.start += 4;
        u32::from_be_bytes(bytes)
    }

    fn get_u64(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "buffer underflow");
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.data[self.start..self.start + 8]);
        self.start += 8;
        u64::from_be_bytes(bytes)
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

/// Write cursor appending to a growable buffer; integers are big-endian.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);

    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// A growable byte buffer that freezes into a [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with pre-reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"hi");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 15);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(b.copy_to_bytes(2).to_vec(), b"hi");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slices_share_data_and_bound_check() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(b.len(), 5);
        let nested = s.slice(1..2);
        assert_eq!(nested.to_vec(), vec![3]);
    }

    #[test]
    fn empty_and_equality() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![1, 2]), Bytes::from(vec![1, 2]).slice(0..2));
    }
}
