//! Offline shim for `crossbeam`.
//!
//! Supplies the multi-producer/multi-consumer unbounded channel the
//! experiment runner's worker pool uses. A `Mutex<VecDeque>` plus `Condvar`
//! is slower than crossbeam's lock-free queue, but channel traffic in this
//! workspace is one message per *simulation job* (milliseconds to seconds of
//! work each), so the lock is nowhere near the hot path.

#![forbid(unsafe_code)]

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cond: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cond: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueue a message, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel lock");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.cond.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.cond.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives, failing once the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.cond.wait(state).expect("channel lock");
            }
        }

        /// An iterator yielding messages until the channel closes.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().expect("channel lock").receivers -= 1;
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_fan_in_delivers_everything() {
        let (tx, rx) = channel::unbounded::<u64>();
        let (out_tx, out_rx) = channel::unbounded::<u64>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rx = rx.clone();
                let out_tx = out_tx.clone();
                scope.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        out_tx.send(v * 2).unwrap();
                    }
                });
            }
        });
        drop(out_tx);
        let mut got: Vec<u64> = out_rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn recv_fails_once_senders_are_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_once_receivers_are_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(9).is_err());
    }
}
