//! Offline shim for `rand`.
//!
//! The build environment cannot reach a crate registry, so this crate
//! supplies the rand-0.9-flavoured surface the workspace uses —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `RngExt` extension
//! with `random::<T>()` / `random_range(..)` — on top of a SplitMix64
//! generator. SplitMix64 passes BigCrush on its 64-bit output and is more
//! than adequate for driving synthetic workload generation and the
//! defenses' swap-target selection; determinism per seed is the property the
//! experiments actually rely on.

#![forbid(unsafe_code)]

/// A source of 64-bit random words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// Panics if the range is empty, matching real rand.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// The inherent-method extension trait (`random`, `random_range`), blanket
/// implemented for every generator.
pub trait RngExt: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(0u32..=6);
            assert!(y <= 6);
            let z = rng.random_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert!(same < 4);
    }
}
