//! Offline shim for `serde`.
//!
//! The build environment cannot reach a crate registry, so this crate
//! provides the sliver of serde the workspace actually exercises: the
//! `Serialize` / `Deserialize` trait names (as empty marker traits) and the
//! matching derives. The workspace derives the traits on its result and
//! config types so that a future PR can swap in real serde (and gain JSON
//! output) without touching any call site — only this shim goes away.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
