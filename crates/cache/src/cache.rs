//! A generic set-associative write-back cache with LRU replacement and
//! support for pinned lines.

use serde::{Deserialize, Serialize};

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cache-line size in bytes.
    pub line_size: u64,
}

impl CacheConfig {
    /// A 32 KB, 8-way L1 data cache.
    #[must_use]
    pub fn l1_32kb() -> Self {
        Self { size_bytes: 32 * 1024, ways: 8, line_size: 64 }
    }

    /// A 256 KB, 8-way private L2 cache.
    #[must_use]
    pub fn l2_256kb() -> Self {
        Self { size_bytes: 256 * 1024, ways: 8, line_size: 64 }
    }

    /// The paper's shared LLC: 8 MB, 16-way, 64-byte lines (Table III).
    #[must_use]
    pub fn llc_8mb() -> Self {
        Self { size_bytes: 8 * 1024 * 1024, ways: 16, line_size: 64 }
    }

    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn sets(&self) -> usize {
        (self.size_bytes / self.line_size / self.ways as u64).max(1) as usize
    }
}

/// The result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// Whether the line was already resident.
    pub hit: bool,
    /// Whether the access hit a pinned line.
    pub pinned_hit: bool,
    /// A dirty victim line (by line-aligned address) that must be written
    /// back to the next level, if the fill evicted one.
    pub writeback: Option<u64>,
}

/// Hit/miss statistics for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
    /// Number of dirty evictions (writebacks generated).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses observed.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in [0, 1]; 0 when no accesses were made.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    pinned: bool,
    last_use: u64,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// Pinned lines are never chosen as eviction victims; they are installed and
/// released through [`SetAssociativeCache::pin_line`] and
/// [`SetAssociativeCache::unpin_all`], which is how the Scale-SRS pin-buffer
/// reserves LLC space for outlier DRAM rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetAssociativeCache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    tick: u64,
}

impl SetAssociativeCache {
    /// Create an empty cache with the given geometry.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![vec![Line::default(); config.ways]; config.sets()];
        Self { config, sets, stats: CacheStats::default(), tick: 0 }
    }

    /// The geometry of this cache.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of currently pinned lines.
    #[must_use]
    pub fn pinned_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|l| l.valid && l.pinned).count()
    }

    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_size;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        (tag * self.sets.len() as u64 + set as u64) * self.config.line_size
    }

    /// Access the line containing `addr`, allocating it on a miss.
    ///
    /// `is_write` marks the line dirty so that its eventual eviction produces
    /// a writeback.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.tick += 1;
        let (set_idx, tag) = self.index_and_tag(addr);
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.tick;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return AccessOutcome { hit: true, pinned_hit: line.pinned, writeback: None };
        }
        self.stats.misses += 1;
        let victim_idx = Self::choose_victim(set);
        let Some(victim_idx) = victim_idx else {
            // Every way is pinned: the access bypasses the cache entirely.
            return AccessOutcome { hit: false, pinned_hit: false, writeback: None };
        };
        let victim = set[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some(self.line_addr(set_idx, victim.tag))
        } else {
            None
        };
        self.sets[set_idx][victim_idx] =
            Line { tag, valid: true, dirty: is_write, pinned: false, last_use: self.tick };
        AccessOutcome { hit: false, pinned_hit: false, writeback }
    }

    /// Probe for residency without updating replacement state or statistics.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index_and_tag(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Install the line containing `addr` as *pinned*: it will hit on every
    /// subsequent access and will never be selected as an eviction victim.
    ///
    /// Returns the writeback of a dirty victim, if the installation evicted
    /// one, and `false` as the first element if the set had no unpinned way
    /// left to install into.
    pub fn pin_line(&mut self, addr: u64) -> (bool, Option<u64>) {
        self.tick += 1;
        let (set_idx, tag) = self.index_and_tag(addr);
        if let Some(line) = self.sets[set_idx].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.pinned = true;
            line.last_use = self.tick;
            return (true, None);
        }
        let Some(victim_idx) = Self::choose_victim(&self.sets[set_idx]) else {
            return (false, None);
        };
        let victim = self.sets[set_idx][victim_idx];
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some(self.line_addr(set_idx, victim.tag))
        } else {
            None
        };
        self.sets[set_idx][victim_idx] =
            Line { tag, valid: true, dirty: false, pinned: true, last_use: self.tick };
        (true, writeback)
    }

    /// Release every pinned line (end of a refresh interval in Scale-SRS).
    pub fn unpin_all(&mut self) {
        for line in self.sets.iter_mut().flatten() {
            line.pinned = false;
        }
    }

    /// Invalidate the entire cache, dropping dirty state.
    pub fn flush(&mut self) {
        for line in self.sets.iter_mut().flatten() {
            *line = Line::default();
        }
    }

    fn choose_victim(set: &[Line]) -> Option<usize> {
        if let Some(idx) = set.iter().position(|l| !l.valid) {
            return Some(idx);
        }
        set.iter()
            .enumerate()
            .filter(|(_, l)| !l.pinned)
            .min_by_key(|(_, l)| l.last_use)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssociativeCache {
        // 4 sets x 2 ways x 64B lines = 512B.
        SetAssociativeCache::new(CacheConfig { size_bytes: 512, ways: 2, line_size: 64 })
    }

    #[test]
    fn geometry_helpers() {
        assert_eq!(CacheConfig::llc_8mb().sets(), 8192);
        assert_eq!(CacheConfig::l1_32kb().sets(), 64);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x0, false).hit);
        assert!(c.access(0x0, false).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets * line = 256B).
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // touch 0x000 so 0x100 is LRU
        c.access(0x200, false); // evicts 0x100
        assert!(c.contains(0x000));
        assert!(!c.contains(0x100));
        assert!(c.contains(0x200));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x100, false);
        let out = c.access(0x200, false); // evicts dirty 0x000
        assert_eq!(out.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn pinned_lines_survive_eviction_pressure() {
        let mut c = tiny();
        let (ok, _) = c.pin_line(0x000);
        assert!(ok);
        for i in 1..10 {
            c.access(0x100 * i, false);
        }
        assert!(c.contains(0x000));
        let out = c.access(0x000, false);
        assert!(out.hit && out.pinned_hit);
        assert_eq!(c.pinned_lines(), 1);
        c.unpin_all();
        assert_eq!(c.pinned_lines(), 0);
    }

    #[test]
    fn fully_pinned_set_bypasses_fills() {
        let mut c = tiny();
        assert!(c.pin_line(0x000).0);
        assert!(c.pin_line(0x100).0);
        // Set 0 is now fully pinned; a third distinct line cannot be pinned
        // or allocated there.
        assert!(!c.pin_line(0x200).0);
        let out = c.access(0x300, false);
        assert!(!out.hit);
        assert!(!c.contains(0x300));
        assert!(c.contains(0x000) && c.contains(0x100));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.access(0x40, true);
        c.flush();
        assert!(!c.contains(0x40));
    }

    #[test]
    fn contains_does_not_change_stats() {
        let mut c = tiny();
        c.access(0x40, false);
        let before = *c.stats();
        let _ = c.contains(0x40);
        let _ = c.contains(0x80);
        assert_eq!(before, *c.stats());
    }

    #[test]
    fn stats_miss_rate() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        assert!((c.stats().miss_rate() - 2.0 / 3.0).abs() < 1e-9);
    }
}
