//! A three-level cache hierarchy: per-core L1 and L2 filters plus a shared
//! LLC with the Scale-SRS pin-buffer in front of it.

use serde::{Deserialize, Serialize};

use crate::cache::{CacheConfig, CacheStats, SetAssociativeCache};
use crate::pin::{PinBuffer, PinBufferConfig};

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Number of cores (each gets a private L1 and L2).
    pub cores: usize,
    /// Per-core L1 geometry.
    pub l1: CacheConfig,
    /// Per-core L2 geometry.
    pub l2: CacheConfig,
    /// Shared LLC geometry.
    pub llc: CacheConfig,
    /// Pin-buffer in front of the LLC.
    pub pin_buffer: PinBufferConfig,
}

impl HierarchyConfig {
    /// The paper's configuration: 8 cores, 32 KB L1, 256 KB L2, 8 MB shared
    /// 16-way LLC (Table III).
    #[must_use]
    pub fn paper_default(cores: usize) -> Self {
        Self {
            cores: cores.max(1),
            l1: CacheConfig::l1_32kb(),
            l2: CacheConfig::l2_256kb(),
            llc: CacheConfig::llc_8mb(),
            pin_buffer: PinBufferConfig::default(),
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::paper_default(8)
    }
}

/// A memory-side access the hierarchy needs the DRAM system to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemorySideAccess {
    /// Line-aligned physical address.
    pub addr: u64,
    /// `true` for a writeback, `false` for a fill (read).
    pub is_writeback: bool,
}

/// The full cache hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1: Vec<SetAssociativeCache>,
    l2: Vec<SetAssociativeCache>,
    llc: SetAssociativeCache,
    pin_buffer: PinBuffer,
    pinned_hits: u64,
}

impl CacheHierarchy {
    /// Create an empty hierarchy.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            l1: (0..config.cores).map(|_| SetAssociativeCache::new(config.l1)).collect(),
            l2: (0..config.cores).map(|_| SetAssociativeCache::new(config.l2)).collect(),
            llc: SetAssociativeCache::new(config.llc),
            pin_buffer: PinBuffer::new(config.pin_buffer),
            pinned_hits: 0,
            config,
        }
    }

    /// The hierarchy configuration.
    #[must_use]
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Statistics of the shared LLC.
    #[must_use]
    pub fn llc_stats(&self) -> &CacheStats {
        self.llc.stats()
    }

    /// Statistics of one core's L1.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn l1_stats(&self, core: usize) -> &CacheStats {
        self.l1[core].stats()
    }

    /// Number of LLC hits served from pinned lines.
    #[must_use]
    pub fn pinned_hits(&self) -> u64 {
        self.pinned_hits
    }

    /// The pin-buffer guarding the LLC.
    #[must_use]
    pub fn pin_buffer(&self) -> &PinBuffer {
        &self.pin_buffer
    }

    /// Perform a demand access from `core`. Returns the memory-side accesses
    /// (fill and/or writebacks) that must be sent to DRAM; an empty vector
    /// means the access was satisfied entirely within the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range for the configured core count.
    pub fn access(&mut self, core: usize, addr: u64, is_write: bool) -> Vec<MemorySideAccess> {
        assert!(core < self.config.cores, "core {core} out of range");
        let line = addr / self.config.l1.line_size * self.config.l1.line_size;
        let mut memory_side = Vec::new();

        let l1_out = self.l1[core].access(line, is_write);
        if l1_out.hit {
            return memory_side;
        }
        if let Some(wb) = l1_out.writeback {
            // L1 writeback is absorbed by the L2 (write-allocate).
            let out = self.l2[core].access(wb, true);
            if let Some(wb2) = out.writeback {
                self.llc_access(wb2, true, &mut memory_side);
            }
        }
        let l2_out = self.l2[core].access(line, false);
        if l2_out.hit {
            return memory_side;
        }
        if let Some(wb) = l2_out.writeback {
            self.llc_access(wb, true, &mut memory_side);
        }
        self.llc_access(line, false, &mut memory_side);
        memory_side
    }

    fn llc_access(&mut self, line: u64, is_write: bool, memory_side: &mut Vec<MemorySideAccess>) {
        let out = self.llc.access(line, is_write);
        if out.hit {
            if out.pinned_hit || self.pin_buffer.is_pinned(line) {
                self.pinned_hits += 1;
            }
            return;
        }
        if let Some(wb) = out.writeback {
            memory_side.push(MemorySideAccess { addr: wb, is_writeback: true });
        }
        if !is_write {
            memory_side.push(MemorySideAccess { addr: line, is_writeback: false });
        } else {
            // A writeback that misses the LLC still goes to memory.
            memory_side.push(MemorySideAccess { addr: line, is_writeback: true });
        }
    }

    /// Pin the DRAM row containing `addr` in the LLC (Scale-SRS outlier
    /// mitigation). Returns the number of lines installed, or `None` if the
    /// pin-buffer was full or the row was already pinned. Fills for the
    /// pinned lines are charged to DRAM by the caller.
    pub fn pin_row(&mut self, addr: u64) -> Option<usize> {
        let lines = self.pin_buffer.pin(addr)?;
        let mut installed = 0;
        for line in lines {
            if self.llc.pin_line(line).0 {
                installed += 1;
            }
        }
        Some(installed)
    }

    /// Release all pinned rows (end of the refresh interval).
    pub fn release_pins(&mut self) {
        self.pin_buffer.clear();
        self.llc.unpin_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig {
            cores: 2,
            l1: CacheConfig { size_bytes: 1024, ways: 2, line_size: 64 },
            l2: CacheConfig { size_bytes: 4096, ways: 4, line_size: 64 },
            llc: CacheConfig { size_bytes: 16 * 1024, ways: 4, line_size: 64 },
            pin_buffer: PinBufferConfig {
                entries: 4,
                row_size_bytes: 1024,
                ..PinBufferConfig::default()
            },
        })
    }

    #[test]
    fn cold_miss_goes_to_memory_then_filters() {
        let mut h = tiny_hierarchy();
        let mem = h.access(0, 0x1000, false);
        assert_eq!(mem.len(), 1);
        assert!(!mem[0].is_writeback);
        // Second access hits in L1: no memory traffic.
        assert!(h.access(0, 0x1000, false).is_empty());
    }

    #[test]
    fn different_cores_do_not_share_l1() {
        let mut h = tiny_hierarchy();
        assert_eq!(h.access(0, 0x2000, false).len(), 1);
        // Core 1 misses its private L1/L2 but hits the shared LLC.
        assert!(h.access(1, 0x2000, false).is_empty());
        assert_eq!(h.llc_stats().hits, 1);
    }

    #[test]
    fn pinned_row_hits_and_counts() {
        let mut h = tiny_hierarchy();
        let installed = h.pin_row(0x8000).expect("pin succeeds");
        assert!(installed > 0);
        // Accesses anywhere in the pinned row hit the LLC.
        assert!(h.access(0, 0x8000, false).is_empty());
        assert!(h.access(1, 0x8040, false).is_empty());
        assert!(h.pinned_hits() >= 2);
        h.release_pins();
        assert!(h.pin_buffer().is_empty());
    }

    #[test]
    fn writes_eventually_produce_writebacks() {
        let mut h = tiny_hierarchy();
        // Write a large footprint so dirty lines spill out of the LLC.
        let mut writebacks = 0;
        for i in 0..4096u64 {
            for m in h.access(0, i * 64, true) {
                if m.is_writeback {
                    writebacks += 1;
                }
            }
        }
        assert!(writebacks > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        let mut h = tiny_hierarchy();
        let _ = h.access(5, 0, false);
    }
}
