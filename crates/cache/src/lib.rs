//! # srs-cache
//!
//! Set-associative cache models for the Scale-SRS reproduction: per-core
//! L1/L2 filter caches, a shared last-level cache (LLC), and the Scale-SRS
//! **pin-buffer** that allows whole DRAM rows to be pinned inside the LLC so
//! that outlier aggressor rows stop generating DRAM activations for the rest
//! of a refresh window (Section V-C of the paper).
//!
//! ## Example
//!
//! ```
//! use srs_cache::{CacheConfig, SetAssociativeCache};
//!
//! let mut llc = SetAssociativeCache::new(CacheConfig::llc_8mb());
//! assert!(!llc.access(0x1000, false).hit);  // cold miss
//! assert!(llc.access(0x1000, false).hit);   // now resident
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod pin;

pub use cache::{AccessOutcome, CacheConfig, CacheStats, SetAssociativeCache};
pub use hierarchy::{CacheHierarchy, HierarchyConfig, MemorySideAccess};
pub use pin::{PinBuffer, PinBufferConfig};
