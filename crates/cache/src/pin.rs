//! The Scale-SRS pin-buffer.
//!
//! Scale-SRS pins outlier DRAM rows (rows whose swap-tracking counter shows
//! three or more swaps in an epoch) inside the LLC for the remainder of the
//! refresh interval. Because the LLC indexes by physical address, the rows
//! could conflict in a single set; the paper therefore places a small
//! *pin-buffer* in front of the LLC that records the pinned row addresses and
//! redirects them to dedicated, contiguous groups of sets (16 sets per 8 KB
//! row for a 16-way, 64 B-line LLC). All LLC look-ups flow through the
//! pin-buffer.

use serde::{Deserialize, Serialize};

/// Configuration of the pin-buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinBufferConfig {
    /// Maximum number of DRAM rows that can be pinned simultaneously.
    ///
    /// The paper provisions 66 entries: up to 3 outlier rows in each of 11
    /// banks per channel, times 2 channels (Section V-C).
    pub entries: usize,
    /// DRAM row size in bytes (8 KB by default).
    pub row_size_bytes: u64,
    /// LLC line size in bytes.
    pub line_size_bytes: u64,
    /// Physical-address width in bits, used to size each entry's tag.
    pub phys_addr_bits: u32,
}

impl Default for PinBufferConfig {
    fn default() -> Self {
        Self { entries: 66, row_size_bytes: 8 * 1024, line_size_bytes: 64, phys_addr_bits: 48 }
    }
}

impl PinBufferConfig {
    /// Number of bits per pin-buffer entry: the row-aligned physical address.
    ///
    /// For a 48-bit physical address and 8 KB rows this is 35 bits, matching
    /// the paper.
    #[must_use]
    pub fn entry_bits(&self) -> u32 {
        self.phys_addr_bits - self.row_size_bytes.trailing_zeros()
    }

    /// Total pin-buffer storage in bits.
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        self.entries as u64 * u64::from(self.entry_bits())
    }

    /// Number of cache lines per pinned row.
    #[must_use]
    pub fn lines_per_row(&self) -> u64 {
        self.row_size_bytes / self.line_size_bytes
    }
}

/// A pin-buffer tracking which DRAM rows are currently pinned in the LLC.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PinBuffer {
    config: PinBufferConfig,
    rows: Vec<u64>,
}

impl PinBuffer {
    /// Create an empty pin-buffer.
    #[must_use]
    pub fn new(config: PinBufferConfig) -> Self {
        Self { config, rows: Vec::new() }
    }

    /// The pin-buffer configuration.
    #[must_use]
    pub fn config(&self) -> &PinBufferConfig {
        &self.config
    }

    /// Row-align a physical address.
    #[must_use]
    pub fn row_base(&self, addr: u64) -> u64 {
        addr / self.config.row_size_bytes * self.config.row_size_bytes
    }

    /// Whether the row containing `addr` is currently pinned.
    #[must_use]
    pub fn is_pinned(&self, addr: u64) -> bool {
        let base = self.row_base(addr);
        self.rows.contains(&base)
    }

    /// Number of rows currently pinned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows are pinned (the common case: most refresh intervals
    /// never see an outlier).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Pin the row containing `addr`. Returns an iterator over the
    /// line-aligned addresses of the row so the caller can install them in
    /// the LLC, or `None` if the buffer is full or the row is already pinned.
    pub fn pin(&mut self, addr: u64) -> Option<Vec<u64>> {
        let base = self.row_base(addr);
        if self.rows.contains(&base) || self.rows.len() >= self.config.entries {
            return None;
        }
        self.rows.push(base);
        let lines = self.config.lines_per_row();
        Some((0..lines).map(|i| base + i * self.config.line_size_bytes).collect())
    }

    /// Clear all pins (called at the end of each refresh interval).
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// The currently pinned row base addresses.
    #[must_use]
    pub fn pinned_rows(&self) -> &[u64] {
        &self.rows
    }

    /// Fraction of an LLC of `llc_bytes` capacity consumed by the current
    /// pins.
    #[must_use]
    pub fn capacity_fraction(&self, llc_bytes: u64) -> f64 {
        if llc_bytes == 0 {
            return 0.0;
        }
        (self.rows.len() as u64 * self.config.row_size_bytes) as f64 / llc_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_is_35_bits_for_default_config() {
        let c = PinBufferConfig::default();
        assert_eq!(c.entry_bits(), 35);
        assert_eq!(c.lines_per_row(), 128);
        // 66 entries * 35 bits ≈ 289 bytes, the Table IV pin-buffer size.
        assert_eq!(c.storage_bits().div_ceil(8), 289);
    }

    #[test]
    fn pin_and_query() {
        let mut pb = PinBuffer::new(PinBufferConfig::default());
        assert!(pb.is_empty());
        let lines = pb.pin(0x12345).expect("first pin succeeds");
        assert_eq!(lines.len(), 128);
        assert!(pb.is_pinned(0x12345));
        assert!(pb.is_pinned(0x12000)); // same 8KB row
        assert!(!pb.is_pinned(0x20000));
        assert_eq!(pb.len(), 1);
    }

    #[test]
    fn double_pin_is_rejected() {
        let mut pb = PinBuffer::new(PinBufferConfig::default());
        assert!(pb.pin(0x4000).is_some());
        assert!(pb.pin(0x4100).is_none()); // same row
    }

    #[test]
    fn capacity_limit_is_enforced() {
        let mut pb = PinBuffer::new(PinBufferConfig { entries: 2, ..PinBufferConfig::default() });
        assert!(pb.pin(0x0000).is_some());
        assert!(pb.pin(0x2000).is_some());
        assert!(pb.pin(0x4000).is_none());
        pb.clear();
        assert!(pb.pin(0x4000).is_some());
    }

    #[test]
    fn three_rows_use_small_fraction_of_llc() {
        let mut pb = PinBuffer::new(PinBufferConfig::default());
        for i in 0..3 {
            pb.pin(i * 0x2000).unwrap();
        }
        let frac = pb.capacity_fraction(8 * 1024 * 1024);
        // 3 * 8KB of an 8MB LLC ≈ 0.3%; the paper quotes 48KB ≈ 0.57% for
        // 6 rows across 2 channels — same order of magnitude.
        assert!(frac < 0.01, "fraction = {frac}");
    }

    #[test]
    fn sixty_six_rows_is_about_six_percent_of_llc() {
        let mut pb = PinBuffer::new(PinBufferConfig::default());
        for i in 0..66 {
            assert!(pb.pin(i * 0x2000).is_some());
        }
        let frac = pb.capacity_fraction(8 * 1024 * 1024);
        assert!(frac > 0.05 && frac < 0.07, "fraction = {frac}");
    }
}
