//! The multiple-bank attack variant (Section III-C).
//!
//! Instead of concentrating on a single bank, the attacker can hammer
//! several banks "in parallel". Because all the activations still share the
//! channel's command bandwidth and each bank's swaps serialize behind its
//! own row migrations, the per-bank activation budget shrinks roughly with
//! the number of banks attacked, which sharply reduces the attack's potency
//! (the paper quotes 4 hours going to 9.9 years when all 16 banks of a
//! channel are targeted).

use serde::{Deserialize, Serialize};

use crate::juggernaut::{best_attack, JuggernautOutcome, SECONDS_PER_DAY};
use crate::params::AttackParams;

/// Result of the multi-bank analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiBankOutcome {
    /// Number of banks attacked simultaneously.
    pub banks: u64,
    /// The per-bank outcome with the reduced activation budget.
    pub per_bank: JuggernautOutcome,
    /// Expected time until *any* of the attacked banks is broken, in seconds.
    pub expected_time_seconds: f64,
}

impl MultiBankOutcome {
    /// Expected attack time in days.
    #[must_use]
    pub fn expected_time_days(&self) -> f64 {
        self.expected_time_seconds / SECONDS_PER_DAY
    }
}

/// Evaluate the Juggernaut attack when `banks` banks are attacked at once.
///
/// Returns `None` if even a single round plus the guess phase no longer fits
/// the per-bank time budget.
#[must_use]
pub fn evaluate(params: &AttackParams, banks: u64) -> Option<MultiBankOutcome> {
    let banks = banks.max(1);
    // Each bank only receives 1/banks of the attacker's activation slots;
    // model this by shrinking the usable window proportionally.
    let mut per_bank_params = *params;
    per_bank_params.refresh_window_ns = params.refresh_window_ns;
    per_bank_params.refreshes_per_window = params.refreshes_per_window;
    // Scale the effective activation cost so the per-window budget divides
    // across the attacked banks.
    per_bank_params.t_rc_ns = params.t_rc_ns.saturating_mul(banks).max(1);
    per_bank_params.t_swap_ns = params.t_swap_ns;
    per_bank_params.t_reswap_ns = params.t_reswap_ns;

    let per_bank = best_attack(&per_bank_params)?;
    // The attack succeeds when any one bank succeeds.
    let p_any = 1.0 - (1.0 - per_bank.window_success_probability).powi(banks as i32);
    let expected_time_seconds =
        if p_any > 0.0 { params.refresh_window_ns as f64 / 1e9 / p_any } else { f64::INFINITY };
    Some(MultiBankOutcome { banks, per_bank, expected_time_seconds })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attacking_one_bank_reduces_to_the_plain_model() {
        let params = AttackParams::rrs(4800, 6);
        let single = evaluate(&params, 1).unwrap();
        let plain = best_attack(&params).unwrap();
        let ratio = single.expected_time_seconds / plain.expected_time_seconds;
        assert!(ratio > 0.99 && ratio < 1.01);
    }

    #[test]
    fn attacking_all_banks_is_much_slower() {
        let params = AttackParams::rrs(4800, 6);
        let single = evaluate(&params, 1).unwrap();
        let all = evaluate(&params, 16).unwrap();
        // The paper reports a swing from hours to years; require at least
        // two orders of magnitude.
        assert!(
            all.expected_time_seconds > 100.0 * single.expected_time_seconds,
            "single {} vs 16-bank {}",
            single.expected_time_seconds,
            all.expected_time_seconds
        );
    }

    #[test]
    fn banks_zero_is_clamped_to_one() {
        let params = AttackParams::rrs(4800, 6);
        assert_eq!(evaluate(&params, 0).unwrap().banks, 1);
    }
}
