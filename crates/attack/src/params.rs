//! Parameters of the attack analyses (Table II of the paper).

use serde::{Deserialize, Serialize};
use srs_dram::DramConfig;

/// The memory controller's row-buffer policy as seen by the attacker.
///
/// The paper assumes a closed-page policy (Section III-B); the Discussion
/// section studies how an open-page policy blunts Juggernaut by making every
/// attacker activation more expensive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AttackPagePolicy {
    /// Closed-page: every access to the target row costs one `tRC`.
    #[default]
    ClosedPage,
    /// Open-page: the attacker must alternate conflicting rows to force
    /// activations, roughly doubling the cost of each one.
    OpenPage,
}

/// Parameters used by the analytical and Monte-Carlo attack models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackParams {
    /// Row Hammer threshold `TRH`.
    pub t_rh: u64,
    /// Swap threshold `TS` (the defense swaps a row every `TS` activations).
    pub t_s: u64,
    /// Rows per bank, `R`.
    pub rows_per_bank: u64,
    /// Row cycle time `tRC` in nanoseconds.
    pub t_rc_ns: u64,
    /// Refresh cycle time `tRFC` in nanoseconds.
    pub t_rfc_ns: u64,
    /// Refresh window (retention interval) in nanoseconds.
    pub refresh_window_ns: u64,
    /// Number of REF commands per refresh window (8192 for DDR4).
    pub refreshes_per_window: u64,
    /// Swap latency `tswap` in nanoseconds.
    pub t_swap_ns: u64,
    /// Unswap-swap latency `treswap` in nanoseconds.
    pub t_reswap_ns: u64,
    /// Latent activations per unswap-swap round `L` (1.5 on average for RRS
    /// with swap buffers, 0 for SRS).
    pub latent_per_round: f64,
    /// The attacker's view of the page policy.
    pub page_policy: AttackPagePolicy,
}

impl AttackParams {
    /// Parameters for attacking **RRS** at a given `TRH` and swap rate on
    /// the paper's DDR4 system.
    #[must_use]
    pub fn rrs(t_rh: u64, swap_rate: u64) -> Self {
        Self::from_dram(&DramConfig::default(), t_rh, swap_rate, 1.5)
    }

    /// Parameters for attacking **SRS / Scale-SRS**: identical timing but no
    /// latent activations per round, because there are no unswap-swaps.
    #[must_use]
    pub fn srs(t_rh: u64, swap_rate: u64) -> Self {
        Self::from_dram(&DramConfig::default(), t_rh, swap_rate, 0.0)
    }

    /// Build parameters from an arbitrary DRAM configuration.
    #[must_use]
    pub fn from_dram(dram: &DramConfig, t_rh: u64, swap_rate: u64, latent_per_round: f64) -> Self {
        Self {
            t_rh,
            t_s: (t_rh / swap_rate.max(1)).max(1),
            rows_per_bank: dram.rows_per_bank,
            t_rc_ns: dram.timing.t_rc,
            t_rfc_ns: dram.timing.t_rfc,
            refresh_window_ns: dram.refresh_window_ns,
            refreshes_per_window: 8192,
            t_swap_ns: 2_700,
            t_reswap_ns: 5_400,
            latent_per_round,
            page_policy: AttackPagePolicy::ClosedPage,
        }
    }

    /// The swap rate `TRH / TS` implied by these parameters.
    #[must_use]
    pub fn swap_rate(&self) -> u64 {
        self.t_rh / self.t_s.max(1)
    }

    /// Effective cost of one attacker-issued activation in nanoseconds.
    #[must_use]
    pub fn activation_cost_ns(&self) -> u64 {
        match self.page_policy {
            AttackPagePolicy::ClosedPage => self.t_rc_ns,
            AttackPagePolicy::OpenPage => 2 * self.t_rc_ns,
        }
    }

    /// Equation 4: the time per refresh window actually usable by the
    /// attacker once refresh operations are discounted, in nanoseconds.
    #[must_use]
    pub fn usable_window_ns(&self) -> f64 {
        self.refresh_window_ns as f64 - (self.t_rfc_ns * self.refreshes_per_window) as f64
    }

    /// A DDR5-style variant of these parameters: refresh operations run
    /// twice as often, halving the refresh window (Discussion §5).
    #[must_use]
    pub fn with_ddr5_refresh(mut self) -> Self {
        self.refresh_window_ns /= 2;
        self.refreshes_per_window /= 2;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rrs_defaults_match_table_ii() {
        let p = AttackParams::rrs(4800, 6);
        assert_eq!(p.t_s, 800);
        assert_eq!(p.rows_per_bank, 128 * 1024);
        assert_eq!(p.t_rc_ns, 45);
        assert_eq!(p.t_swap_ns, 2_700);
        assert_eq!(p.t_reswap_ns, 5_400);
        assert!((p.latent_per_round - 1.5).abs() < f64::EPSILON);
    }

    #[test]
    fn srs_has_no_latent_activations() {
        let p = AttackParams::srs(4800, 6);
        assert_eq!(p.latent_per_round, 0.0);
        assert_eq!(p.swap_rate(), 6);
    }

    #[test]
    fn usable_window_is_about_61ms() {
        let p = AttackParams::rrs(4800, 6);
        let usable = p.usable_window_ns();
        assert!(usable > 60.0e6 && usable < 62.0e6, "usable = {usable}");
    }

    #[test]
    fn open_page_doubles_activation_cost() {
        let mut p = AttackParams::rrs(4800, 6);
        assert_eq!(p.activation_cost_ns(), 45);
        p.page_policy = AttackPagePolicy::OpenPage;
        assert_eq!(p.activation_cost_ns(), 90);
    }

    #[test]
    fn ddr5_variant_halves_the_window() {
        let p = AttackParams::rrs(4800, 6).with_ddr5_refresh();
        assert_eq!(p.refresh_window_ns, 32_000_000);
        assert_eq!(p.refreshes_per_window, 4096);
    }
}
