//! The outlier-appearance model behind Scale-SRS's reduced swap rate
//! (Section V-B, Figure 13).
//!
//! Even under continuous attack only `ACT_max / TS` rows can be hammered to
//! the swap threshold per refresh window, and each swap lands on a random
//! one of the bank's `R` locations. The expected number of locations chosen
//! `k` times is therefore `R * p_k` with `p_k` binomial, and the number of
//! such locations in a window is Poisson-distributed. Windows containing
//! `M` locations with `k` or more swaps are exceedingly rare — rare enough
//! that pinning those few rows in the LLC is cheap.

use serde::{Deserialize, Serialize};

use crate::params::AttackParams;
use crate::prob::{binomial_sf, poisson_pmf};

/// Outcome of the outlier analysis for one swap rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutlierOutcome {
    /// Swap threshold `TS` implied by the swap rate.
    pub t_s: u64,
    /// Number of rows the attacker can push to `TS` activations per window.
    pub hammerable_rows: u64,
    /// Expected number of locations receiving at least `k` swaps in one
    /// window (`R_K` in the paper's footnote).
    pub expected_outliers: f64,
    /// Expected time, in days, until a window contains at least `m`
    /// simultaneous outlier locations, for `m` = 1..=4.
    pub days_until_m_outliers: [f64; 4],
}

/// Analyze the appearance of outlier locations (rows hit by `k_swaps` or
/// more swaps) at a given swap rate.
#[must_use]
pub fn evaluate(params: &AttackParams, k_swaps: u64) -> OutlierOutcome {
    let ts = params.t_s;
    let act_cost = params.activation_cost_ns() as f64;
    // How many rows the attacker can drive to TS activations in one window.
    let per_row_cost = act_cost * ts as f64 + params.t_swap_ns as f64;
    let hammerable = (params.usable_window_ns() / per_row_cost).floor().max(0.0) as u64;
    let p_row = 1.0 / params.rows_per_bank as f64;
    // Probability that one specific location is chosen k or more times.
    let p_k = binomial_sf(hammerable, k_swaps, p_row);
    let expected_outliers = params.rows_per_bank as f64 * p_k;

    let window_days = params.refresh_window_ns as f64 / 1e9 / crate::juggernaut::SECONDS_PER_DAY;
    let mut days = [f64::INFINITY; 4];
    for (idx, m) in (1..=4u64).enumerate() {
        // P[at least m outliers in one window] via the Poisson tail.
        let mut tail = 1.0;
        for j in 0..m {
            tail -= poisson_pmf(expected_outliers, j);
        }
        let tail = tail.max(0.0);
        days[idx] = if tail > 0.0 { window_days / tail } else { f64::INFINITY };
    }
    OutlierOutcome {
        t_s: ts,
        hammerable_rows: hammerable,
        expected_outliers,
        days_until_m_outliers: days,
    }
}

/// Figure 13's y-axis: time until `m` simultaneous outlier rows appear, for
/// a given `TRH` and swap rate, in days. An "outlier" is a location chosen
/// at least `swap_rate` times — the count at which it would become dangerous
/// under that swap rate.
#[must_use]
pub fn days_until_outliers(t_rh: u64, swap_rate: u64, m: usize) -> f64 {
    let params = AttackParams::srs(t_rh, swap_rate);
    let outcome = evaluate(&params, swap_rate);
    outcome.days_until_m_outliers[m.clamp(1, 4) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hammerable_rows_match_the_papers_estimate() {
        // Section V-B: at TS = 1200 the attacker can hammer about 1134 rows.
        let params = AttackParams::srs(3600, 3); // TS = 1200
        let o = evaluate(&params, 3);
        assert!(
            o.hammerable_rows > 1_000 && o.hammerable_rows < 1_200,
            "rows = {}",
            o.hammerable_rows
        );
    }

    #[test]
    fn three_outliers_take_on_the_order_of_a_month_at_swap_rate_3() {
        // Figure 13: one window every ~31 days shows 3 outlier rows.
        let days = days_until_outliers(4800, 3, 3);
        assert!(days > 5.0 && days < 200.0, "days = {days}");
    }

    #[test]
    fn four_outliers_take_many_years_at_swap_rate_3() {
        // Figure 13: at least ~64 years for 4 simultaneous outliers.
        let days = days_until_outliers(4800, 3, 4);
        assert!(days > 365.0 * 20.0, "days = {days}");
    }

    #[test]
    fn higher_swap_rates_make_outliers_rarer() {
        let rate3 = days_until_outliers(4800, 3, 3);
        let rate6 = days_until_outliers(4800, 6, 3);
        assert!(rate6 > rate3);
    }

    #[test]
    fn one_outlier_is_common_enough_to_need_detection() {
        // A single location with 3 swaps shows up within days, which is why
        // Scale-SRS needs the detector at swap rate 3.
        let days = days_until_outliers(4800, 3, 1);
        assert!(days < 10.0, "days = {days}");
    }
}
