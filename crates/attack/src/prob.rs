//! Small probability helpers used by the attack models.
//!
//! The binomial probabilities of Equation 8 involve `G` in the tens of
//! thousands and `k` up to the swap rate, so everything is computed in
//! log-space to stay inside `f64` range.

/// Natural log of `n!` via the log-gamma function (Stirling/Lanczos-free
/// implementation that is exact for small `n` and accurate to ~1e-10 above).
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    if n < 32 {
        (2..=n).map(|i| (i as f64).ln()).sum()
    } else {
        let x = n as f64;
        // Stirling series with the first two correction terms.
        x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
            - 1.0 / (360.0 * x * x * x)
    }
}

/// Natural log of the binomial coefficient `C(n, k)`.
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Probability mass `P[X = k]` of a Binomial(n, p).
#[must_use]
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    if k > n {
        return 0.0;
    }
    let ln = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln.exp()
}

/// Upper tail `P[X >= k]` of a Binomial(n, p), summed directly (the tail is
/// short for the parameters used here).
#[must_use]
pub fn binomial_sf(n: u64, k: u64, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let mut total = 0.0;
    // Terms decay geometrically once k > n*p, so a few hundred terms suffice;
    // cap the summation to keep the cost bounded.
    let upper = n.min(k + 512);
    for i in k..=upper {
        total += binomial_pmf(n, i, p);
    }
    total.min(1.0)
}

/// Probability mass `P[X = k]` of a Poisson(lambda).
#[must_use]
pub fn poisson_pmf(lambda: f64, k: u64) -> f64 {
    if lambda <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    (k as f64 * lambda.ln() - lambda - ln_factorial(k)).exp()
}

/// Draw a Poisson(lambda) sample using inversion by sequential search —
/// adequate for the small lambdas (< 1) used by the Monte-Carlo model.
pub fn poisson_sample<R: rand::RngExt + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    let limit = (-lambda).exp();
    let mut product: f64 = 1.0;
    let mut count = 0u64;
    loop {
        product *= rng.random::<f64>();
        if product <= limit {
            return count;
        }
        count += 1;
        if count > 10_000 {
            return count; // pathological lambda; avoid an unbounded loop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn factorial_matches_exact_values() {
        assert!((ln_factorial(0) - 0.0).abs() < 1e-12);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        // 50! via Stirling vs the exact ln value.
        let exact: f64 = (2..=50u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(50) - exact).abs() < 1e-8);
    }

    #[test]
    fn choose_small_cases() {
        assert!((ln_choose(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_choose(10, 0).exp() - 1.0).abs() < 1e-9);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_pmf_sums_to_one_for_small_n() {
        let total: f64 = (0..=20).map(|k| binomial_pmf(20, k, 0.3)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binomial_sf_is_monotone_in_k() {
        let n = 50_000;
        let p = 1.0 / 131_072.0;
        let mut last = 1.0;
        for k in 0..6 {
            let sf = binomial_sf(n, k, p);
            assert!(sf <= last + 1e-15, "sf must not increase with k");
            last = sf;
        }
    }

    #[test]
    fn poisson_matches_binomial_for_rare_events() {
        let n = 100_000u64;
        let p = 2e-5;
        let lambda = n as f64 * p;
        for k in 0..5u64 {
            let b = binomial_pmf(n, k, p);
            let q = poisson_pmf(lambda, k);
            assert!((b - q).abs() / q.max(1e-300) < 0.01, "k={k}: {b} vs {q}");
        }
    }

    #[test]
    fn poisson_sampler_has_correct_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let lambda = 0.5;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| poisson_sample(&mut rng, lambda)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.02, "mean = {mean}");
    }
}
