//! The untargeted ("birthday paradox") attack originally analyzed by RRS,
//! used for Figure 1a of the paper.
//!
//! The attacker continuously hammers randomly chosen rows `TS` times each,
//! hoping that *some* chip location ends up being targeted `swap_rate` times
//! within one refresh window. Unlike Juggernaut there is no biasing phase,
//! and any of the `R` rows of the bank can be the lucky one, so the success
//! probability of a window is roughly `R` times the single-row probability.

use serde::{Deserialize, Serialize};

use crate::params::AttackParams;
use crate::prob::binomial_sf;

/// Outcome of the untargeted attack analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BirthdayOutcome {
    /// Random rows the attacker can hammer per refresh window.
    pub guesses_per_window: u64,
    /// Number of times a single location must be hit (the swap rate).
    pub required_hits: u64,
    /// Probability that at least one row of the bank is hit often enough in
    /// one refresh window.
    pub window_success_probability: f64,
    /// Expected attack time in seconds.
    pub expected_time_seconds: f64,
}

impl BirthdayOutcome {
    /// Expected attack time in days.
    #[must_use]
    pub fn expected_time_days(&self) -> f64 {
        self.expected_time_seconds / crate::juggernaut::SECONDS_PER_DAY
    }
}

/// Evaluate the untargeted attack against a swap-based defense.
#[must_use]
pub fn evaluate(params: &AttackParams) -> BirthdayOutcome {
    let ts = params.t_s as f64;
    let act_cost = params.activation_cost_ns() as f64;
    let guess_cost = act_cost * (ts - 1.0) + params.t_swap_ns as f64;
    let guesses = (params.usable_window_ns() / guess_cost).floor().max(0.0) as u64;
    let required = params.swap_rate();
    let p_row = 1.0 / params.rows_per_bank as f64;
    let p_single = binomial_sf(guesses, required, p_row);
    // Union bound over all rows of the bank (tight because p_single is tiny).
    let p_window = (params.rows_per_bank as f64 * p_single).min(1.0);
    let expected_time_seconds = if p_window > 0.0 {
        params.refresh_window_ns as f64 / 1e9 / p_window
    } else {
        f64::INFINITY
    };
    BirthdayOutcome {
        guesses_per_window: guesses,
        required_hits: required,
        window_success_probability: p_window,
        expected_time_seconds,
    }
}

/// Time to break RRS with the untargeted attack, in days (Figure 1a).
#[must_use]
pub fn time_to_break_days(t_rh: u64, swap_rate: u64) -> f64 {
    evaluate(&AttackParams::rrs(t_rh, swap_rate)).expected_time_days()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rrs_default_point_takes_years() {
        // Figure 1: TRH 4800, swap rate 6 -> more than 10^3 days (~3 years).
        let days = time_to_break_days(4800, 6);
        assert!(days > 1_000.0, "days = {days}");
        assert!(days < 100_000.0, "days = {days}");
    }

    #[test]
    fn higher_swap_rate_is_harder_to_break() {
        let six = time_to_break_days(4800, 6);
        let eight = time_to_break_days(4800, 8);
        assert!(eight > six);
    }

    #[test]
    fn lower_threshold_is_easier_to_break() {
        let hi = time_to_break_days(9600, 6);
        let lo = time_to_break_days(1200, 6);
        assert!(lo < hi);
    }

    #[test]
    fn outcome_reports_plausible_guess_counts() {
        let o = evaluate(&AttackParams::rrs(4800, 6));
        // ~61 ms / ~38.7 us per guess ~ 1580 guesses.
        assert!(o.guesses_per_window > 1_000 && o.guesses_per_window < 2_500);
        assert_eq!(o.required_hits, 6);
        assert!(o.window_success_probability > 0.0);
    }
}
