//! The analytical model of the Juggernaut attack pattern (Section III-B).
//!
//! Juggernaut has two phases. Phase 1 biases one aggressor row towards a
//! high activation count by forcing the defense to keep unswap-swapping it,
//! harvesting the *latent activations* each mitigation performs at the
//! aggressor's original chip location (Equations 1-2). Phase 2 is a
//! random-guess attack that repeatedly activates randomly chosen rows `TS`
//! times each, hoping to land on the aggressor's original location the few
//! remaining times needed to cross `TRH` (Equations 3-10).
//!
//! The same machinery evaluates Secure Row-Swap by setting the latent
//! activations per round to zero (Equation 11-12), which is what makes SRS
//! robust: the attacker is pushed back to needing `swap_rate - 2` correct
//! guesses instead of 2.

use serde::{Deserialize, Serialize};

use crate::params::AttackParams;
use crate::prob::binomial_sf;

/// Seconds per day, used to express attack times the way the paper does.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// The outcome of evaluating the analytical model at one number of attack
/// rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JuggernautOutcome {
    /// Number of unswap-swap rounds `N` used to bias the aggressor row.
    pub attack_rounds: u64,
    /// Activations accumulated on the aggressor's original location after
    /// phase 1 (Equation 1).
    pub biased_activations: f64,
    /// Additional activations still needed (Equation 2).
    pub activations_left: f64,
    /// Correct random guesses required, `k` (Equation 3).
    pub required_guesses: u64,
    /// Random guesses available per refresh window, `G` (Equation 7).
    pub guesses_per_window: u64,
    /// Success probability of one refresh window (Equation 8, upper tail).
    pub window_success_probability: f64,
    /// Expected attack time in seconds (Equations 9-10).
    pub expected_time_seconds: f64,
}

impl JuggernautOutcome {
    /// Expected attack time in days.
    #[must_use]
    pub fn expected_time_days(&self) -> f64 {
        self.expected_time_seconds / SECONDS_PER_DAY
    }

    /// Whether the attack succeeds within a single refresh window using the
    /// latent activations alone.
    #[must_use]
    pub fn single_window_break(&self) -> bool {
        self.required_guesses == 0
    }
}

/// Evaluate the analytical model for a given number of attack rounds `N`.
///
/// Returns `None` if the chosen number of rounds does not leave the attacker
/// any time for the random-guess phase within a refresh window (Equation 6
/// went non-positive while guesses were still required).
#[must_use]
pub fn evaluate(params: &AttackParams, attack_rounds: u64) -> Option<JuggernautOutcome> {
    let ts = params.t_s as f64;
    let act_cost = params.activation_cost_ns() as f64;

    // Equation 1: initial 2*TS - 1 demand activations plus one latent
    // activation from the initial swap, plus L latent activations per round.
    let biased = 2.0 * ts + params.latent_per_round * attack_rounds as f64;
    // Equation 2.
    let left = (params.t_rh as f64 - biased).max(0.0);
    // Equation 3.
    let required = (left / ts).ceil() as u64;

    // Equation 4.
    let t_actual = params.usable_window_ns();
    // Equation 5: each round costs TS-1 additional demand activations plus
    // the unswap-swap the defense performs.
    let t_aggr = ((ts - 1.0) * act_cost + params.t_reswap_ns as f64) * attack_rounds as f64;
    // Equation 6: subtract the initial 2*TS-1 activations and their swap.
    let t_initial = act_cost * (2.0 * ts - 1.0) + params.t_swap_ns as f64;
    let t_left = t_actual - t_aggr - t_initial;

    if required == 0 {
        // Latent activations alone crossed TRH: one refresh window suffices
        // (provided the rounds themselves fit, which `t_left >= 0` checks).
        if t_left < 0.0 {
            return None;
        }
        return Some(JuggernautOutcome {
            attack_rounds,
            biased_activations: biased,
            activations_left: left,
            required_guesses: 0,
            guesses_per_window: 0,
            window_success_probability: 1.0,
            expected_time_seconds: params.refresh_window_ns as f64 / 1e9,
        });
    }
    if t_left <= 0.0 {
        return None;
    }

    // Equation 7.
    let guess_cost = act_cost * (ts - 1.0) + params.t_swap_ns as f64;
    let guesses = (t_left / guess_cost).floor() as u64;
    if guesses == 0 {
        return None;
    }

    // Equation 8 (upper tail: landing at least k times succeeds).
    let p_row = 1.0 / params.rows_per_bank as f64;
    let p_window = binomial_sf(guesses, required, p_row);
    if p_window <= 0.0 {
        return None;
    }

    // Equations 9-10.
    let iterations = 1.0 / p_window;
    let expected_time_seconds = iterations * params.refresh_window_ns as f64 / 1e9;
    Some(JuggernautOutcome {
        attack_rounds,
        biased_activations: biased,
        activations_left: left,
        required_guesses: required,
        guesses_per_window: guesses,
        window_success_probability: p_window,
        expected_time_seconds,
    })
}

/// The maximum number of attack rounds that still fit in one refresh window.
#[must_use]
pub fn max_attack_rounds(params: &AttackParams) -> u64 {
    let act_cost = params.activation_cost_ns() as f64;
    let ts = params.t_s as f64;
    let t_initial = act_cost * (2.0 * ts - 1.0) + params.t_swap_ns as f64;
    let per_round = (ts - 1.0) * act_cost + params.t_reswap_ns as f64;
    ((params.usable_window_ns() - t_initial) / per_round).floor().max(0.0) as u64
}

/// Sweep the attack rounds and return the outcome that minimizes the
/// expected attack time (how the paper picks `N`, Section III-C).
#[must_use]
pub fn best_attack(params: &AttackParams) -> Option<JuggernautOutcome> {
    let max_rounds = max_attack_rounds(params);
    let step = (max_rounds / 512).max(1);
    let mut best: Option<JuggernautOutcome> = None;
    let mut n = 0;
    while n <= max_rounds {
        if let Some(outcome) = evaluate(params, n) {
            let better = match &best {
                Some(b) => outcome.expected_time_seconds < b.expected_time_seconds,
                None => true,
            };
            if better {
                best = Some(outcome);
            }
        }
        n += step;
    }
    best
}

/// Time to break **RRS** with Juggernaut at a given `TRH` and swap rate, in
/// days (the headline numbers of Figure 6 / Figure 10).
#[must_use]
pub fn time_to_break_rrs_days(t_rh: u64, swap_rate: u64) -> f64 {
    best_attack(&AttackParams::rrs(t_rh, swap_rate))
        .map_or(f64::INFINITY, |o| o.expected_time_days())
}

/// Time to break **SRS / Scale-SRS** with Juggernaut at a given `TRH` and
/// swap rate, in days. Because SRS has no latent activations, biasing rounds
/// never help and the best strategy is the pure random-guess attack.
#[must_use]
pub fn time_to_break_srs_days(t_rh: u64, swap_rate: u64) -> f64 {
    best_attack(&AttackParams::srs(t_rh, swap_rate))
        .map_or(f64::INFINITY, |o| o.expected_time_days())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equations_1_to_3_match_the_papers_worked_example() {
        // Section III-A: TRH 4800, TS 800, 800 rounds -> 1601 latent + 800
        // initial activations ~ 2401 total, needing 3 more correct guesses.
        let params = AttackParams::rrs(4800, 6);
        let o = evaluate(&params, 800).expect("800 rounds must be feasible");
        assert!((o.biased_activations - (1600.0 + 1.5 * 800.0)).abs() < 1e-9);
        assert_eq!(o.required_guesses, 3);
    }

    #[test]
    fn rrs_breaks_in_under_a_day_at_trh_4800() {
        let days = time_to_break_rrs_days(4800, 6);
        // The paper reports ~4 hours; allow the model some slack but require
        // well under one day.
        assert!(days < 1.0, "days = {days}");
        assert!(days > 0.01, "days = {days}");
    }

    #[test]
    fn rrs_breaks_within_one_window_at_low_thresholds() {
        let best = best_attack(&AttackParams::rrs(1200, 6)).unwrap();
        assert!(best.single_window_break(), "latent activations alone must suffice at TRH 1200");
        assert!(best.expected_time_seconds <= 0.065);
    }

    #[test]
    fn srs_resists_for_years_at_trh_4800() {
        let days = time_to_break_srs_days(4800, 6);
        // Paper: > 2 years.
        assert!(days > 730.0, "days = {days}");
    }

    #[test]
    fn srs_is_orders_of_magnitude_stronger_than_rrs() {
        for &t_rh in &[2400u64, 4800] {
            let rrs = time_to_break_rrs_days(t_rh, 6);
            let srs = time_to_break_srs_days(t_rh, 6);
            assert!(srs > 100.0 * rrs, "TRH {t_rh}: srs {srs} vs rrs {rrs}");
        }
    }

    #[test]
    fn increasing_swap_rate_does_not_save_rrs() {
        // Figure 10: RRS stays breakable in < 1 day regardless of swap rate.
        for swap_rate in 6..=10 {
            let days = time_to_break_rrs_days(4800, swap_rate);
            assert!(days < 1.0, "swap rate {swap_rate}: {days} days");
        }
    }

    #[test]
    fn increasing_swap_rate_strengthens_srs() {
        let six = time_to_break_srs_days(4800, 6);
        let ten = time_to_break_srs_days(4800, 10);
        assert!(ten > six);
    }

    #[test]
    fn required_guesses_decrease_with_attack_rounds() {
        // Figure 7: more biasing rounds -> fewer correct guesses needed.
        let params = AttackParams::rrs(4800, 6);
        let few = evaluate(&params, 100).unwrap().required_guesses;
        let many = evaluate(&params, 1200).unwrap().required_guesses;
        assert!(many < few);
    }

    #[test]
    fn too_many_rounds_leave_no_time_for_guessing() {
        let params = AttackParams::rrs(4800, 6);
        let max = max_attack_rounds(&params);
        assert!(
            evaluate(&params, max + 10).is_none()
                || evaluate(&params, max + 10).unwrap().required_guesses == 0
        );
        assert!(max > 1_000 && max < 2_000, "max rounds = {max}");
    }

    #[test]
    fn open_page_policy_slows_juggernaut_down() {
        let closed = best_attack(&AttackParams::rrs(4800, 6)).unwrap().expected_time_seconds;
        let mut params = AttackParams::rrs(4800, 6);
        params.page_policy = crate::params::AttackPagePolicy::OpenPage;
        let open = best_attack(&params).unwrap().expected_time_seconds;
        assert!(open > closed);
    }

    #[test]
    fn ddr5_refresh_still_leaves_rrs_vulnerable_at_low_trh() {
        // Discussion §5: even with 2x refresh, TRH <= 3100 breaks in < 1 day.
        let params = AttackParams::rrs(3000, 10).with_ddr5_refresh();
        let best = best_attack(&params).unwrap();
        assert!(best.expected_time_days() < 1.0);
    }
}
