//! Generational search over the attack-pattern IR.
//!
//! This module is the evolutionary half of the adaptive attack-search
//! subsystem: it owns the genome (an [`AttackPattern`] plus an attacker
//! seed), the mutation/crossover operators over that genome, the
//! deterministic fitness order, and the generational state machine. It
//! deliberately knows nothing about the simulator — scoring is the
//! caller's job (the `srs-sim` crate warms one `System` to steady state
//! and forks it once per candidate), which keeps the dependency direction
//! `sim -> attack` intact and makes the loop trivially testable with a
//! synthetic evaluator.
//!
//! Everything here is deterministic per `u64` seed: the breeding RNG for
//! generation `g` is derived from `seed ^ mix(g)` alone, so a resumed
//! search needs only the current population, the generation index and the
//! best-so-far record to continue bit-identically.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::engine::{AttackPattern, AttackSpec};

/// Number of pattern kinds in the genome's kind axis.
const KINDS: u64 = 5;

/// Maximum number of numeric genes any kind uses.
const GENES: usize = 5;

/// Upper bound used when a mutation re-rolls a gene from scratch. Compile
/// clamping folds anything into the target geometry, so this only shapes
/// the search distribution, not validity.
const FRESH_GENE_SPAN: u64 = 8192;

/// Tuning knobs of one search campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Candidates evaluated per generation.
    pub population: usize,
    /// Generations to run.
    pub generations: usize,
    /// Top-ranked candidates copied unchanged into the next generation.
    pub elites: usize,
    /// Per-gene probability that mutation perturbs it.
    pub mutation_rate: f64,
    /// Probability that an offspring is bred from two parents instead of
    /// cloned from one.
    pub crossover_rate: f64,
    /// Master seed; every random choice of the search derives from it.
    pub seed: u64,
}

impl SearchConfig {
    /// A config with the default operator rates (2 elites, 35% mutation,
    /// 50% crossover).
    #[must_use]
    pub fn new(population: usize, generations: usize, seed: u64) -> Self {
        Self {
            population: population.max(1),
            generations,
            elites: 2,
            mutation_rate: 0.35,
            crossover_rate: 0.5,
            seed,
        }
    }
}

/// One point of the search space: a pattern plus the attacker seed it
/// runs under (the seed is itself a gene — Blacksmith shapes and guess
/// phases depend on it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Stable name for reports (`g<gen>c<slot>` for bred candidates,
    /// library names for the seeded generation 0).
    pub name: String,
    /// The pattern genome.
    pub pattern: AttackPattern,
    /// Attacker-core / pattern-compilation seed.
    pub seed: u64,
}

impl Candidate {
    /// The [`AttackSpec`] this candidate is scored as: one attacker core,
    /// stop at the first TRH crossing (time-to-break semantics).
    #[must_use]
    pub fn to_attack_spec(&self) -> AttackSpec {
        AttackSpec::new(self.name.clone(), self.pattern.clone()).with_seed(self.seed)
    }
}

/// A candidate's fitness, extracted from a `SecurityReport`.
///
/// The order is total and deterministic: candidates that cross the Row
/// Hammer threshold rank by time-to-first-crossing (earlier is stronger);
/// a crossing candidate always outranks a non-crossing one; non-crossing
/// candidates rank by closest-approach pressure ratio (`max_pressure /
/// t_rh`, compared exactly by cross-multiplication), with the simulated
/// time of that maximum as the tiebreak (earlier is stronger).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Score {
    /// Simulated time of the first TRH crossing, if any.
    pub first_crossing_ns: Option<u64>,
    /// Maximum pressure any victim row accumulated inside one refresh
    /// window.
    pub max_pressure: u64,
    /// The Row Hammer threshold the run was scored against.
    pub t_rh: u64,
    /// Simulated time at which `max_pressure` was reached (the closest
    /// approach), if any activation was observed.
    pub closest_ns: Option<u64>,
}

impl Score {
    /// The closest-approach pressure ratio (`>= 1.0` iff the run crossed).
    #[must_use]
    pub fn pressure_ratio(&self) -> f64 {
        self.max_pressure as f64 / self.t_rh.max(1) as f64
    }

    /// Strength order: `Greater` means `self` is the stronger attack.
    #[must_use]
    pub fn strength(&self, other: &Score) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.first_crossing_ns, other.first_crossing_ns) {
            // Both broke through: earlier break is stronger.
            (Some(a), Some(b)) => b.cmp(&a),
            (Some(_), None) => Ordering::Greater,
            (None, Some(_)) => Ordering::Less,
            (None, None) => {
                // Exact ratio comparison: a/ta vs b/tb as a*tb vs b*ta.
                let a = u128::from(self.max_pressure) * u128::from(other.t_rh.max(1));
                let b = u128::from(other.max_pressure) * u128::from(self.t_rh.max(1));
                a.cmp(&b).then_with(|| {
                    let a_ns = self.closest_ns.unwrap_or(u64::MAX);
                    let b_ns = other.closest_ns.unwrap_or(u64::MAX);
                    b_ns.cmp(&a_ns)
                })
            }
        }
    }
}

/// Decompose a pattern into its genome: a kind index plus up to
/// [`GENES`] numeric genes (unused trailing genes are absent).
#[must_use]
pub fn genes(pattern: &AttackPattern) -> (u64, Vec<u64>) {
    match pattern {
        AttackPattern::SingleSided { bank, row } => (0, vec![*bank as u64, *row]),
        AttackPattern::DoubleSided { bank, victim } => (1, vec![*bank as u64, *victim]),
        AttackPattern::NSided { bank, first, aggressors, pitch } => {
            (2, vec![*bank as u64, *first, *aggressors, *pitch])
        }
        AttackPattern::Juggernaut { banks, aggressor, bias_rounds } => {
            (3, vec![*banks as u64, *aggressor, *bias_rounds])
        }
        AttackPattern::Blacksmith { bank, region_base, region_rows, aggressors, max_intensity } => {
            (4, vec![*bank as u64, *region_base, *region_rows, *aggressors, *max_intensity])
        }
    }
}

/// Rebuild a pattern from a genome. Missing genes take library-shaped
/// defaults; every output is a well-formed pattern, and
/// `PatternProgram::compile` clamps all coordinates into the target
/// geometry, so arbitrary gene values are safe by construction.
#[must_use]
pub fn pattern_from_genes(kind: u64, genes: &[u64]) -> AttackPattern {
    let g = |i: usize, default: u64| genes.get(i).copied().unwrap_or(default);
    match kind % KINDS {
        0 => AttackPattern::SingleSided { bank: g(0, 0) as usize, row: g(1, 64) },
        1 => AttackPattern::DoubleSided { bank: g(0, 0) as usize, victim: g(1, 128) },
        2 => AttackPattern::NSided {
            bank: g(0, 0) as usize,
            first: g(1, 200),
            aggressors: g(2, 4),
            pitch: g(3, 2),
        },
        3 => AttackPattern::Juggernaut {
            banks: (g(0, 1) as usize).max(1),
            aggressor: g(1, 96),
            bias_rounds: g(2, u64::MAX),
        },
        _ => AttackPattern::Blacksmith {
            bank: g(0, 0) as usize,
            region_base: g(1, 512),
            region_rows: g(2, 64),
            aggressors: g(3, 6),
            max_intensity: g(4, 8),
        },
    }
}

/// Mutate a pattern: each gene is perturbed with probability `rate`, and
/// with probability `rate / 4` the pattern kind itself jumps (keeping the
/// positional genes, which the new kind reinterprets).
#[must_use]
pub fn mutate(pattern: &AttackPattern, rng: &mut StdRng, rate: f64) -> AttackPattern {
    let (mut kind, mut gene_values) = genes(pattern);
    if rng.random::<f64>() < rate / 4.0 {
        kind = rng.random_range(0..KINDS);
    }
    gene_values.resize(GENES, 0);
    for gene in &mut gene_values {
        if rng.random::<f64>() >= rate {
            continue;
        }
        *gene = match rng.random_range(0u32..6) {
            0 => gene.saturating_add(1),
            1 => gene.saturating_sub(1),
            2 => gene.saturating_add(rng.random_range(1u64..64)),
            3 => gene.saturating_sub(rng.random_range(1u64..64)),
            4 => gene.saturating_mul(2),
            _ => rng.random_range(0..FRESH_GENE_SPAN),
        };
    }
    pattern_from_genes(kind, &gene_values)
}

/// Uniform crossover: the kind comes from one parent, each gene from one
/// of the two, chosen per-position.
#[must_use]
pub fn crossover(a: &AttackPattern, b: &AttackPattern, rng: &mut StdRng) -> AttackPattern {
    let (kind_a, genes_a) = genes(a);
    let (kind_b, genes_b) = genes(b);
    let kind = if rng.random::<bool>() { kind_a } else { kind_b };
    let mut child = Vec::with_capacity(GENES);
    for i in 0..GENES {
        let (first, second) =
            if rng.random::<bool>() { (&genes_a, &genes_b) } else { (&genes_b, &genes_a) };
        match first.get(i).or_else(|| second.get(i)) {
            Some(gene) => child.push(*gene),
            None => break,
        }
    }
    pattern_from_genes(kind, &child)
}

/// The shipped pattern library as generation-0 candidates. Seeding the
/// search with the library guarantees the best-found candidate is never
/// weaker than the best shipped pattern under the same scoring path.
#[must_use]
pub fn shipped_candidates() -> Vec<Candidate> {
    crate::engine::shipped_patterns()
        .into_iter()
        .map(|spec| Candidate { name: spec.name.clone(), seed: spec.seed, pattern: spec.pattern })
        .collect()
}

/// What [`Search::advance`] reports about the generation it just scored.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationSummary {
    /// Zero-based index of the scored generation.
    pub index: usize,
    /// The generation's strongest candidate and its score.
    pub best: (Candidate, Score),
    /// The strongest candidate seen across all generations so far.
    pub best_so_far: (Candidate, Score),
}

/// The generational search state machine.
///
/// Usage is a strict loop: read [`Search::population`], score every
/// candidate externally (in submission order), feed the scores back
/// through [`Search::advance`], repeat until [`Search::done`].
#[derive(Debug, Clone)]
pub struct Search {
    config: SearchConfig,
    /// Generations already scored.
    generation: usize,
    population: Vec<Candidate>,
    best: Option<(Candidate, Score)>,
}

impl Search {
    /// A fresh search: generation 0 is the shipped library, truncated or
    /// padded with seeded mutants to the configured population size.
    #[must_use]
    pub fn new(config: SearchConfig) -> Self {
        let mut population = shipped_candidates();
        population.truncate(config.population);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EED_0000);
        let library: Vec<AttackPattern> = population.iter().map(|c| c.pattern.clone()).collect();
        let mut slot = 0usize;
        while population.len() < config.population {
            let base = &library[slot % library.len().max(1)];
            population.push(Candidate {
                name: format!("g0c{}", population.len()),
                pattern: mutate(base, &mut rng, config.mutation_rate.max(0.5)),
                seed: rng.random::<u64>(),
            });
            slot += 1;
        }
        Self { config, generation: 0, population, best: None }
    }

    /// Rebuild a search mid-campaign from checkpointed state. The breeding
    /// RNG is derived from the seed and generation index alone, so this is
    /// bit-identical to never having stopped.
    #[must_use]
    pub fn resume(
        config: SearchConfig,
        generation: usize,
        population: Vec<Candidate>,
        best: Option<(Candidate, Score)>,
    ) -> Self {
        Self { config, generation, population, best }
    }

    /// The campaign configuration.
    #[must_use]
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Generations scored so far (also the index of the generation the
    /// current population belongs to).
    #[must_use]
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Whether the generation budget is exhausted.
    #[must_use]
    pub fn done(&self) -> bool {
        self.generation >= self.config.generations
    }

    /// The candidates awaiting scores, in submission order.
    #[must_use]
    pub fn population(&self) -> &[Candidate] {
        &self.population
    }

    /// The strongest candidate seen so far, if any generation was scored.
    #[must_use]
    pub fn best(&self) -> Option<&(Candidate, Score)> {
        self.best.as_ref()
    }

    /// Rank the current population (strongest first; ties keep submission
    /// order), update best-so-far, and breed the next generation.
    ///
    /// # Panics
    ///
    /// Panics if `scores` does not have exactly one entry per candidate.
    pub fn advance(&mut self, scores: &[Score]) -> GenerationSummary {
        assert_eq!(
            scores.len(),
            self.population.len(),
            "one score per candidate, in population order"
        );
        let mut ranked: Vec<usize> = (0..scores.len()).collect();
        // Stable sort + submission-order ties keep ranking deterministic.
        ranked.sort_by(|&a, &b| scores[b].strength(&scores[a]));
        let best_index = ranked[0];
        let generation_best = (self.population[best_index].clone(), scores[best_index]);
        let replace = match &self.best {
            // Strictly stronger only: earlier generations win ties, so a
            // resumed run converges on the same champion.
            Some((_, incumbent)) => {
                generation_best.1.strength(incumbent) == std::cmp::Ordering::Greater
            }
            None => true,
        };
        if replace {
            self.best = Some(generation_best.clone());
        }
        let summary = GenerationSummary {
            index: self.generation,
            best: generation_best,
            best_so_far: self.best.clone().expect("best was just set or kept"),
        };

        self.generation += 1;
        self.population = self.breed(&ranked);
        summary
    }

    /// Breed the next population from the ranked current one: elites are
    /// copied unchanged, the rest are tournament-selected offspring.
    fn breed(&self, ranked: &[usize]) -> Vec<Candidate> {
        let next_gen = self.generation;
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ (next_gen as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut next = Vec::with_capacity(self.config.population);
        for &index in ranked.iter().take(self.config.elites.min(ranked.len())) {
            next.push(self.population[index].clone());
        }
        while next.len() < self.config.population {
            let pick = |rng: &mut StdRng| {
                // Tournament of two over rank positions: lower rank wins.
                let a = rng.random_range(0..ranked.len());
                let b = rng.random_range(0..ranked.len());
                &self.population[ranked[a.min(b)]]
            };
            let parent = pick(&mut rng).clone();
            let pattern = if rng.random::<f64>() < self.config.crossover_rate {
                let other = pick(&mut rng).clone();
                crossover(&parent.pattern, &other.pattern, &mut rng)
            } else {
                parent.pattern.clone()
            };
            let pattern = mutate(&pattern, &mut rng, self.config.mutation_rate);
            let seed = if rng.random::<bool>() { parent.seed } else { rng.random::<u64>() };
            next.push(Candidate { name: format!("g{next_gen}c{}", next.len()), pattern, seed });
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PatternProgram;

    /// A deterministic synthetic evaluator: stronger for larger row genes,
    /// crossing when a threshold is exceeded.
    fn fake_score(candidate: &Candidate) -> Score {
        let (_, genes) = genes(&candidate.pattern);
        let weight: u64 = genes.iter().fold(0u64, |acc, g| acc.wrapping_add(g % 1000));
        Score {
            first_crossing_ns: (weight > 800).then_some(1_000_000u64.saturating_sub(weight)),
            max_pressure: weight,
            t_rh: 1000,
            closest_ns: Some(500_000),
        }
    }

    fn run_search(config: SearchConfig) -> Vec<GenerationSummary> {
        let mut search = Search::new(config);
        let mut summaries = Vec::new();
        while !search.done() {
            let scores: Vec<Score> = search.population().iter().map(fake_score).collect();
            summaries.push(search.advance(&scores));
        }
        summaries
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let config = SearchConfig::new(8, 5, 42);
        assert_eq!(run_search(config.clone()), run_search(config));
        let other = SearchConfig::new(8, 5, 43);
        // Different seeds explore differently (populations diverge even if
        // the champion happens to agree).
        let a: Vec<_> = run_search(SearchConfig::new(8, 5, 42))
            .iter()
            .map(|s| s.best.0.pattern.clone())
            .collect();
        let b: Vec<_> = run_search(other).iter().map(|s| s.best.0.pattern.clone()).collect();
        // Not asserting inequality per-generation (they may coincide), but
        // the runs must at least both complete with full summaries.
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn resume_mid_campaign_matches_uninterrupted_run() {
        let config = SearchConfig::new(6, 6, 7);
        let uninterrupted = run_search(config.clone());

        let mut search = Search::new(config.clone());
        for _ in 0..3 {
            let scores: Vec<Score> = search.population().iter().map(fake_score).collect();
            search.advance(&scores);
        }
        // Checkpoint exactly what the manifest persists, then resume.
        let mut resumed = Search::resume(
            config,
            search.generation(),
            search.population().to_vec(),
            search.best().cloned(),
        );
        let mut tail = Vec::new();
        while !resumed.done() {
            let scores: Vec<Score> = resumed.population().iter().map(fake_score).collect();
            tail.push(resumed.advance(&scores));
        }
        assert_eq!(tail.as_slice(), &uninterrupted[3..]);
    }

    #[test]
    fn generation_zero_is_seeded_from_the_shipped_library() {
        let library = shipped_candidates();
        let search = Search::new(SearchConfig::new(library.len() + 4, 1, 9));
        for (candidate, shipped) in search.population().iter().zip(&library) {
            assert_eq!(candidate.pattern, shipped.pattern);
            assert_eq!(candidate.name, shipped.name);
        }
        assert_eq!(search.population().len(), library.len() + 4);
    }

    #[test]
    fn score_order_is_total_and_matches_the_spec() {
        use std::cmp::Ordering;
        let crossed_early =
            Score { first_crossing_ns: Some(10), max_pressure: 5, t_rh: 4, closest_ns: Some(10) };
        let crossed_late =
            Score { first_crossing_ns: Some(99), max_pressure: 9, t_rh: 4, closest_ns: Some(99) };
        let near = Score { first_crossing_ns: None, max_pressure: 3, t_rh: 4, closest_ns: Some(7) };
        let far = Score { first_crossing_ns: None, max_pressure: 1, t_rh: 4, closest_ns: Some(2) };
        assert_eq!(crossed_early.strength(&crossed_late), Ordering::Greater);
        assert_eq!(crossed_late.strength(&near), Ordering::Greater);
        assert_eq!(near.strength(&far), Ordering::Greater);
        assert_eq!(near.strength(&near), Ordering::Equal);
        // Same ratio, earlier approach wins.
        let near_late = Score { closest_ns: Some(9), ..near };
        assert_eq!(near.strength(&near_late), Ordering::Greater);
    }

    #[test]
    fn operators_always_yield_compilable_patterns() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut current = shipped_candidates()[0].pattern.clone();
        for step in 0..500 {
            let partner = shipped_candidates()[step % shipped_candidates().len()].pattern.clone();
            current = if step % 3 == 0 {
                crossover(&current, &partner, &mut rng)
            } else {
                mutate(&current, &mut rng, 0.9)
            };
            // Compile against a deliberately tiny geometry: clamping must
            // absorb any gene values the operators produced.
            let program = PatternProgram::compile(&current, 2, 8, step as u64);
            assert!(!program.slots.is_empty());
        }
    }
}
