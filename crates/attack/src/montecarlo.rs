//! Event-driven Monte-Carlo validation of the analytical Juggernaut model
//! (the experimental points of Figure 6).
//!
//! The authors' artifact uses a "bins and buckets" C++ program: each trial
//! simulates refresh windows in which the random-guess phase picks `G`
//! random rows, and the attack succeeds when the aggressor's original
//! location is picked at least `k` times in a single window. The expected
//! attack time is the refresh-window length divided by the empirical
//! per-window success probability.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::juggernaut::{evaluate, JuggernautOutcome};
use crate::params::AttackParams;
use crate::prob::poisson_sample;

/// Result of a Monte-Carlo estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloResult {
    /// Number of simulated refresh windows.
    pub windows_simulated: u64,
    /// Number of windows in which the attack succeeded.
    pub successes: u64,
    /// Estimated expected attack time in seconds (infinite if no window
    /// succeeded).
    pub expected_time_seconds: f64,
    /// The analytical outcome the simulation was parameterised with.
    pub analytical: JuggernautOutcome,
}

impl MonteCarloResult {
    /// Estimated attack time in days.
    #[must_use]
    pub fn expected_time_days(&self) -> f64 {
        self.expected_time_seconds / crate::juggernaut::SECONDS_PER_DAY
    }

    /// Relative difference between the Monte-Carlo estimate and the
    /// analytical model (0 means a perfect match).
    #[must_use]
    pub fn relative_error(&self) -> f64 {
        if !self.expected_time_seconds.is_finite() {
            return f64::INFINITY;
        }
        (self.expected_time_seconds - self.analytical.expected_time_seconds).abs()
            / self.analytical.expected_time_seconds
    }
}

/// Run the Monte-Carlo experiment for a fixed number of attack rounds.
///
/// Returns `None` when the analytical model says the chosen number of rounds
/// is infeasible within one refresh window.
#[must_use]
pub fn simulate(
    params: &AttackParams,
    attack_rounds: u64,
    windows: u64,
    seed: u64,
) -> Option<MonteCarloResult> {
    let analytical = evaluate(params, attack_rounds)?;
    if analytical.required_guesses == 0 {
        return Some(MonteCarloResult {
            windows_simulated: 0,
            successes: 0,
            expected_time_seconds: analytical.expected_time_seconds,
            analytical,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let lambda = analytical.guesses_per_window as f64 / params.rows_per_bank as f64;
    let mut successes = 0u64;
    for _ in 0..windows {
        let hits = poisson_sample(&mut rng, lambda);
        if hits >= analytical.required_guesses {
            successes += 1;
        }
    }
    let expected_time_seconds = if successes == 0 {
        f64::INFINITY
    } else {
        let p = successes as f64 / windows as f64;
        params.refresh_window_ns as f64 / 1e9 / p
    };
    Some(MonteCarloResult {
        windows_simulated: windows,
        successes,
        expected_time_seconds,
        analytical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monte_carlo_matches_analytical_model_at_high_probability_points() {
        // Pick a round count that leaves a single correct guess to land, so
        // the per-window success probability is large enough to estimate
        // accurately with a modest number of simulated windows.
        let params = AttackParams::rrs(2400, 6);
        let rounds = 800;
        let result = simulate(&params, rounds, 200_000, 7).expect("feasible");
        if result.analytical.required_guesses == 0 {
            assert_eq!(result.expected_time_seconds, result.analytical.expected_time_seconds);
        } else {
            assert!(result.relative_error() < 0.5, "error = {}", result.relative_error());
        }
    }

    #[test]
    fn single_window_breaks_need_no_simulation() {
        let params = AttackParams::rrs(1200, 6);
        let result = simulate(&params, 600, 1_000, 3).expect("feasible");
        assert_eq!(result.windows_simulated, 0);
        assert!(result.expected_time_seconds <= 0.065);
    }

    #[test]
    fn infeasible_round_counts_return_none() {
        let params = AttackParams::rrs(4800, 6);
        let max = crate::juggernaut::max_attack_rounds(&params);
        // Far beyond the feasible budget and still needing guesses.
        assert!(simulate(&params, max * 4, 100, 1).is_none());
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let params = AttackParams::rrs(2400, 6);
        let a = simulate(&params, 100, 10_000, 42).unwrap();
        let b = simulate(&params, 100, 10_000, 42).unwrap();
        assert_eq!(a.successes, b.successes);
    }
}
