//! # srs-attack
//!
//! Attack models against row-swap Row Hammer defenses, reproducing the
//! security analyses of the Scale-SRS paper:
//!
//! * [`juggernaut`] — the analytical model of the **Juggernaut** attack
//!   (Equations 1-10), which breaks Randomized Row-Swap in hours by
//!   harvesting the latent activations of its unswap-swap operations, and
//!   its application to Secure Row-Swap (Figures 6, 7 and 10);
//! * [`montecarlo`] — the event-driven Monte-Carlo validation of the
//!   analytical model (the experimental points of Figure 6);
//! * [`birthday`] — the untargeted random-row attack RRS was originally
//!   analyzed with (Figure 1a);
//! * [`outlier`] — the outlier-appearance model that justifies Scale-SRS's
//!   swap rate of 3 (Figure 13);
//! * [`multibank`] — the multiple-bank attack variant (Section III-C);
//! * [`engine`] — the closed-loop in-simulator attack engine: reactive
//!   attacker cores, the attack-pattern IR and the shipped pattern library;
//! * [`search`] — the generational adaptive-attack search: mutation and
//!   crossover operators over the pattern IR, a deterministic fitness
//!   order, and the seed-reproducible generational state machine.
//!
//! ## Example
//!
//! ```
//! use srs_attack::juggernaut;
//!
//! let rrs_days = juggernaut::time_to_break_rrs_days(4800, 6);
//! let srs_days = juggernaut::time_to_break_srs_days(4800, 6);
//! assert!(rrs_days < 1.0, "Juggernaut breaks RRS in under a day");
//! assert!(srs_days > 365.0, "SRS resists for years");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod birthday;
pub mod engine;
pub mod juggernaut;
pub mod montecarlo;
pub mod multibank;
pub mod outlier;
pub mod params;
pub mod prob;
pub mod search;

pub use birthday::BirthdayOutcome;
pub use engine::{AttackPattern, AttackSpec, AttackerCore, PatternProgram};
pub use juggernaut::JuggernautOutcome;
pub use montecarlo::MonteCarloResult;
pub use multibank::MultiBankOutcome;
pub use outlier::OutlierOutcome;
pub use params::{AttackPagePolicy, AttackParams};
pub use search::{Candidate, GenerationSummary, Score, Search, SearchConfig};
