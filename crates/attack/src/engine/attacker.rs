//! The closed-loop adversarial request source.
//!
//! An [`AttackerCore`] implements the same issue interface as
//! [`srs_cpu::TraceCore`] ([`RequestSource`]) but generates its accesses
//! *reactively*: it interprets a compiled [`PatternProgram`], observes the
//! controller's activation stream — in particular the maintenance
//! activations a row-swap defense performs — and adapts. A Juggernaut
//! program counts observed mitigations to pace its biasing rounds and
//! switches to the random-guess phase once enough latent activations have
//! been harvested; every attacker also watches its own read completions for
//! the latency spikes a multi-microsecond swap operation imprints on
//! queued demand traffic.
//!
//! All adaptive choices are drawn from a seeded RNG, so a run is fully
//! deterministic under (`pattern`, `seed`, geometry).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use srs_cpu::{AccessToken, CoreStatus, MemoryIssue, RequestSource};
use srs_dram::{AddressMapper, BankId, DramConfig};

use crate::engine::pattern::{AttackSpec, PatternProgram};

/// Counters exposed by an attacker core for the security-metrics layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttackerStats {
    /// Reads issued by this attacker.
    pub issued_reads: u64,
    /// Demand activations observed on the monitored banks (the attacker's
    /// own hammering as confirmed by the controller).
    pub observed_demand_acts: u64,
    /// Maintenance activations observed on the monitored banks — the
    /// latent-activation feedback channel.
    pub observed_maintenance_acts: u64,
    /// Distinct mitigation operations inferred from the maintenance
    /// stream (consecutive maintenance activations sharing a timestamp on
    /// one bank are one operation).
    pub mitigations_observed: u64,
    /// Read completions whose latency exceeded the spike threshold — the
    /// side channel that betrays an in-flight swap even when the
    /// maintenance stream is not directly visible.
    pub latency_spikes: u64,
    /// Random-guess rows hammered in the Juggernaut guess phase.
    pub guesses_made: u64,
}

/// Which part of its program the attacker is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Replaying the compiled cyclic schedule (all static patterns, and the
    /// Juggernaut biasing phase).
    Schedule,
    /// Juggernaut phase 2: hammering randomly guessed rows `TS` times each.
    Guess {
        /// The currently guessed row.
        row: u64,
        /// Issues spent on the current guess so far.
        issued: u64,
    },
}

/// A closed-loop attacker core driving one compiled pattern.
///
/// `Clone` snapshots the attacker mid-run — program counter, RNG state,
/// outstanding reads and observation history — so a forked simulation
/// resumes the closed loop bit-exactly.
#[derive(Debug, Clone)]
pub struct AttackerCore {
    mapper: AddressMapper,
    program: PatternProgram,
    rng: StdRng,
    rows_per_bank: u64,
    /// The defense's swap threshold `TS` as known to the attacker (the
    /// standard Kerckhoffs assumption of the paper's analysis): the guess
    /// phase hammers each guessed row `TS` times.
    t_s: u64,
    /// Pacing between issued reads; defaults to `tRC` (the fastest an
    /// attacker can force activations in one bank).
    issue_gap_ns: u64,
    /// Completion latency above which a read counts as a swap-induced
    /// latency spike.
    spike_threshold_ns: u64,
    max_outstanding: usize,
    ready_at_ns: u64,
    slot: usize,
    phase: Phase,
    outstanding: Vec<(AccessToken, u64)>,
    next_token: u64,
    /// Per-monitored-bank timestamp of the last maintenance activation, for
    /// grouping one operation's activations into one observed mitigation.
    last_maintenance_ns: Vec<(usize, u64)>,
    stats: AttackerStats,
}

impl AttackerCore {
    /// Build an attacker for `spec` against a concrete DRAM geometry.
    ///
    /// `t_s` is the defense's swap threshold (use the Row Hammer threshold
    /// itself when attacking an undefended baseline) and `stream` picks the
    /// attacker's RNG stream so several cores sharing one spec diverge.
    #[must_use]
    pub fn new(spec: &AttackSpec, dram: &DramConfig, t_s: u64, stream: u64) -> Self {
        let seed = spec.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let program =
            PatternProgram::compile(&spec.pattern, dram.total_banks(), dram.rows_per_bank, seed);
        let last_maintenance_ns = program.banks.iter().map(|&b| (b, u64::MAX)).collect();
        Self {
            mapper: AddressMapper::new(dram.clone()),
            rng: StdRng::seed_from_u64(seed ^ 0xFEED_FACE),
            rows_per_bank: dram.rows_per_bank,
            t_s: t_s.max(1),
            issue_gap_ns: dram.timing.t_rc.max(1),
            // A swap blocks its bank for microseconds; demand reads queued
            // behind it complete far later than any benign conflict chain.
            spike_threshold_ns: dram.swap_latency_ns() / 2,
            max_outstanding: 4,
            ready_at_ns: 0,
            slot: 0,
            phase: Phase::Schedule,
            outstanding: Vec::with_capacity(4),
            next_token: 0,
            last_maintenance_ns,
            program,
            stats: AttackerStats::default(),
        }
    }

    /// The compiled program this attacker interprets.
    #[must_use]
    pub fn program(&self) -> &PatternProgram {
        &self.program
    }

    /// Attacker-side counters.
    #[must_use]
    pub fn stats(&self) -> &AttackerStats {
        &self.stats
    }

    /// Whether the attacker has switched to the random-guess phase.
    #[must_use]
    pub fn in_guess_phase(&self) -> bool {
        matches!(self.phase, Phase::Guess { .. })
    }

    /// A short, stable label for the attacker's current program phase
    /// (telemetry track names).
    #[must_use]
    pub fn phase_label(&self) -> &'static str {
        if self.in_guess_phase() {
            "guess"
        } else {
            "schedule"
        }
    }

    fn monitored(&self, bank: usize) -> bool {
        self.program.banks.contains(&bank)
    }

    /// A fresh random guess row in the primary attacked bank, avoiding the
    /// schedule's own aggressors.
    fn pick_guess(&mut self) -> u64 {
        loop {
            let row = self.rng.random_range(0..self.rows_per_bank);
            let bank = self.program.banks[0];
            if !self.program.aggressors.contains(&(bank, row)) {
                self.stats.guesses_made += 1;
                return row;
            }
        }
    }

    /// The (bank, row) the attacker hammers next, advancing its state.
    fn next_target(&mut self) -> (usize, u64) {
        match self.phase {
            Phase::Schedule => {
                let target = self.program.slots[self.slot];
                self.slot = (self.slot + 1) % self.program.slots.len();
                target
            }
            Phase::Guess { row, issued } => {
                let bank = self.program.banks[0];
                // Alternate the guess with a far dummy so every visit
                // activates; `2 * TS` issues put `TS` activations on the
                // guess, after which the defense has either swapped it
                // (observed via the maintenance stream) or the guess was
                // wrong either way — move on.
                let target = if issued % 2 == 0 {
                    row
                } else {
                    (row + self.rows_per_bank / 2) % self.rows_per_bank
                };
                if issued + 1 >= 2 * self.t_s {
                    let fresh = self.pick_guess();
                    self.phase = Phase::Guess { row: fresh, issued: 0 };
                } else {
                    self.phase = Phase::Guess { row, issued: issued + 1 };
                }
                (bank, target)
            }
        }
    }
}

impl RequestSource for AttackerCore {
    fn try_issue(&mut self, now: u64) -> Option<MemoryIssue> {
        if now < self.ready_at_ns || self.outstanding.len() >= self.max_outstanding {
            return None;
        }
        let (bank, row) = self.next_target();
        let addr = self
            .mapper
            .address_of(BankId::new(bank), row % self.rows_per_bank)
            .unwrap_or_else(|_| srs_dram::PhysAddr::new(0));
        self.ready_at_ns = self.ready_at_ns.max(now) + self.issue_gap_ns;
        let token = AccessToken(self.next_token);
        self.next_token += 1;
        self.outstanding.push((token, now));
        self.stats.issued_reads += 1;
        Some(MemoryIssue { token, addr: addr.value(), is_write: false })
    }

    fn complete_read(&mut self, token: AccessToken, now: u64) {
        if let Some(idx) = self.outstanding.iter().position(|&(t, _)| t == token) {
            let (_, issued_ns) = self.outstanding.swap_remove(idx);
            if now.saturating_sub(issued_ns) > self.spike_threshold_ns {
                self.stats.latency_spikes += 1;
            }
        }
    }

    fn status(&self, now: u64) -> CoreStatus {
        if self.outstanding.len() >= self.max_outstanding {
            CoreStatus::Blocked
        } else {
            CoreStatus::ReadyAt(self.ready_at_ns.max(now))
        }
    }

    fn is_finished(&self) -> bool {
        // An attacker never retires a work target; it hammers until the
        // simulation ends (time cap or first TRH crossing).
        false
    }

    fn next_ready_ns(&self, _now: u64) -> Option<u64> {
        if self.outstanding.len() >= self.max_outstanding {
            // Only a completion event can unblock the attacker; the
            // simulator visits completions anyway.
            None
        } else {
            Some(self.ready_at_ns)
        }
    }

    fn retired_instructions(&self) -> u64 {
        0
    }

    fn ipc(&self, _elapsed_ns: u64) -> f64 {
        0.0
    }

    fn observe_activation(
        &mut self,
        bank: usize,
        _physical_row: u64,
        _logical_row: u64,
        maintenance: bool,
        now: u64,
    ) {
        if !self.monitored(bank) {
            return;
        }
        if !maintenance {
            self.stats.observed_demand_acts += 1;
            return;
        }
        self.stats.observed_maintenance_acts += 1;
        let slot = self
            .last_maintenance_ns
            .iter_mut()
            .find(|(b, _)| *b == bank)
            .expect("monitored bank has a slot");
        if slot.1 != now {
            slot.1 = now;
            self.stats.mitigations_observed += 1;
            match self.phase {
                Phase::Schedule => {
                    // Juggernaut: enough biasing rounds harvested — switch
                    // to random guessing.
                    if self
                        .program
                        .bias_rounds
                        .is_some_and(|rounds| self.stats.mitigations_observed >= rounds)
                    {
                        let fresh = self.pick_guess();
                        self.phase = Phase::Guess { row: fresh, issued: 0 };
                    }
                }
                Phase::Guess { .. } => {
                    // The defense just mitigated on our bank: the current
                    // guess has been swapped away (or the trigger was
                    // another row — either way its count is spent), so
                    // start a fresh guess immediately.
                    let fresh = self.pick_guess();
                    self.phase = Phase::Guess { row: fresh, issued: 0 };
                }
            }
        }
    }

    fn wants_feedback(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::pattern::AttackPattern;

    fn spec(pattern: AttackPattern) -> AttackSpec {
        AttackSpec::new("test", pattern)
    }

    fn attacker(pattern: AttackPattern) -> AttackerCore {
        AttackerCore::new(&spec(pattern), &DramConfig::default(), 200, 0)
    }

    #[test]
    fn issues_the_compiled_schedule_at_trc_pace() {
        let mut a = attacker(AttackPattern::SingleSided { bank: 0, row: 64 });
        let first = a.try_issue(0).expect("ready at time zero");
        assert!(!first.is_write);
        assert!(a.try_issue(1).is_none(), "paced by the issue gap");
        let gap = a.issue_gap_ns;
        assert!(a.try_issue(gap).is_some());
        assert_eq!(a.stats().issued_reads, 2);
    }

    #[test]
    fn outstanding_reads_are_bounded_and_completions_unblock() {
        let mut a = attacker(AttackPattern::DoubleSided { bank: 0, victim: 128 });
        let mut tokens = Vec::new();
        let mut now = 0;
        while let Some(issue) = a.try_issue(now) {
            tokens.push(issue.token);
            now += a.issue_gap_ns;
        }
        assert_eq!(tokens.len(), a.max_outstanding);
        assert_eq!(a.status(now), CoreStatus::Blocked);
        assert_eq!(a.next_ready_ns(now), None);
        a.complete_read(tokens[0], now + 10);
        assert!(a.next_ready_ns(now + 10).is_some());
        assert!(a.try_issue(now + 10).is_some());
    }

    #[test]
    fn latency_spikes_are_detected() {
        let mut a = attacker(AttackPattern::SingleSided { bank: 0, row: 64 });
        let fast = a.try_issue(0).unwrap();
        a.complete_read(fast.token, 100);
        assert_eq!(a.stats().latency_spikes, 0);
        let slow = a.try_issue(a.issue_gap_ns).unwrap();
        a.complete_read(slow.token, a.issue_gap_ns + a.spike_threshold_ns + 1);
        assert_eq!(a.stats().latency_spikes, 1);
    }

    #[test]
    fn juggernaut_switches_to_guessing_after_bias_rounds() {
        let mut a = AttackerCore::new(
            &spec(AttackPattern::Juggernaut { banks: 1, aggressor: 96, bias_rounds: 3 }),
            &DramConfig::default(),
            200,
            0,
        );
        assert!(!a.in_guess_phase());
        // Three distinct-timestamp maintenance operations on the bank.
        for t in [1_000, 2_000, 3_000] {
            a.observe_activation(0, 96, 96, true, t);
            a.observe_activation(0, 7, 7, true, t); // same op, same timestamp
        }
        assert_eq!(a.stats().mitigations_observed, 3);
        assert!(a.in_guess_phase());
        // A mitigation observed mid-guess re-rolls the guess row.
        let before = a.stats().guesses_made;
        a.observe_activation(0, 96, 96, true, 4_000);
        assert_eq!(a.stats().guesses_made, before + 1);
    }

    #[test]
    fn feedback_outside_monitored_banks_is_ignored() {
        let mut a = attacker(AttackPattern::SingleSided { bank: 0, row: 64 });
        a.observe_activation(5, 96, 96, true, 1_000);
        assert_eq!(a.stats().observed_maintenance_acts, 0);
        assert_eq!(a.stats().mitigations_observed, 0);
    }

    #[test]
    fn two_streams_of_one_spec_diverge_deterministically() {
        let pattern = AttackPattern::Blacksmith {
            bank: 0,
            region_base: 512,
            region_rows: 64,
            aggressors: 6,
            max_intensity: 8,
        };
        let a = AttackerCore::new(&spec(pattern.clone()), &DramConfig::default(), 200, 0);
        let b = AttackerCore::new(&spec(pattern.clone()), &DramConfig::default(), 200, 1);
        let a2 = AttackerCore::new(&spec(pattern), &DramConfig::default(), 200, 0);
        assert_ne!(a.program().slots, b.program().slots, "streams fuzz distinct schedules");
        assert_eq!(a.program().slots, a2.program().slots, "same stream is reproducible");
    }
}
