//! The in-simulator adversarial attack engine.
//!
//! Everything else in this crate models attacks *analytically*
//! (closed-form equations, standalone Monte-Carlo). This module closes the
//! loop with the actual simulated memory system: an [`AttackerCore`] is a
//! [`srs_cpu::RequestSource`] that hammers through the real controller,
//! against the real trackers and defenses, reacting to the feedback those
//! components leak (maintenance activations, swap-induced latency spikes).
//!
//! * [`AttackPattern`] — the pattern IR: single-sided, double-sided,
//!   n-sided, the (multi-bank) Juggernaut schedule and a seeded
//!   Blacksmith-style non-uniform fuzzer;
//! * [`PatternProgram`] — a pattern compiled against a DRAM geometry:
//!   cyclic schedule, aggressor and victim row sets, monitored banks;
//! * [`AttackSpec`] — a named attack run (pattern + attacker cores + seed),
//!   the unit the experiment grid's attack axis sweeps;
//! * [`shipped_patterns`] — the library of stock attacks;
//! * [`AttackerCore`] — the closed-loop interpreter.
//!
//! The companion security-metrics layer (per-victim-row activation
//! pressure, time-to-first-TRH-crossing, latent activations) lives in
//! `srs_sim::security`, where the activation stream is observed.

pub mod attacker;
pub mod pattern;

pub use attacker::{AttackerCore, AttackerStats};
pub use pattern::{shipped_patterns, AttackPattern, AttackSpec, PatternProgram};
