//! The attack-pattern intermediate representation and the shipped pattern
//! library.
//!
//! A pattern describes *what* an adversary hammers; [`PatternProgram`]
//! compiles it against a concrete DRAM geometry into the cyclic aggressor
//! schedule an [`crate::engine::AttackerCore`] interprets, together with the
//! aggressor and victim (blast-radius) row sets the security-metrics layer
//! watches. All compilation is deterministic under a `u64` seed, so an
//! attack × defense grid is reproducible run to run.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// The spatial/temporal shape of an adversarial access schedule.
///
/// Rows are logical row addresses within one bank; banks are global bank
/// indices. Both are reduced into the target geometry's range at compile
/// time, so a pattern written for a large device still runs on a scaled
/// test configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackPattern {
    /// Classic single-sided hammering of one aggressor row (a far dummy row
    /// in the same bank is alternated in to defeat an open-page policy).
    SingleSided {
        /// Global bank index to attack.
        bank: usize,
        /// The aggressor row.
        row: u64,
    },
    /// Double-sided hammering of the two rows sandwiching a victim.
    DoubleSided {
        /// Global bank index to attack.
        bank: usize,
        /// The victim row; `victim - 1` and `victim + 1` are hammered.
        victim: u64,
    },
    /// Generalized n-sided hammering: `aggressors` rows starting at `first`
    /// spaced `pitch` rows apart (pitch 2 leaves a victim between every
    /// aggressor pair).
    NSided {
        /// Global bank index to attack.
        bank: usize,
        /// First aggressor row.
        first: u64,
        /// Number of aggressor rows.
        aggressors: u64,
        /// Spacing between aggressor rows.
        pitch: u64,
    },
    /// The Juggernaut schedule of Section III: bias one aggressor per bank
    /// by forcing the defense to keep unswap-swapping it (harvesting latent
    /// activations at its home location), then fall back to random-guess
    /// hammering once `bias_rounds` mitigations have been observed. With
    /// `banks > 1` this is the multiple-bank variant of Section III-C.
    Juggernaut {
        /// Number of banks attacked in parallel (starting at bank 0).
        banks: usize,
        /// The aggressor row hammered in every attacked bank.
        aggressor: u64,
        /// Observed mitigations per bank before switching to the
        /// random-guess phase (`u64::MAX` never switches: pure biasing).
        bias_rounds: u64,
    },
    /// A Blacksmith-style non-uniform fuzzed pattern: `aggressors` distinct
    /// rows inside a region, each with a fuzzed intensity (relative
    /// hammer frequency) and phase, scheduled non-uniformly. The shape is
    /// drawn deterministically from the attacker seed.
    Blacksmith {
        /// Global bank index to attack.
        bank: usize,
        /// First row of the fuzzed region.
        region_base: u64,
        /// Number of rows in the fuzzed region.
        region_rows: u64,
        /// Number of aggressor rows to pick inside the region.
        aggressors: u64,
        /// Maximum per-aggressor intensity (schedule-slot multiplicity).
        max_intensity: u64,
    },
}

impl AttackPattern {
    /// A short stable label for reports and grid axes.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AttackPattern::SingleSided { .. } => "single-sided",
            AttackPattern::DoubleSided { .. } => "double-sided",
            AttackPattern::NSided { .. } => "n-sided",
            AttackPattern::Juggernaut { banks: 1, .. } => "juggernaut",
            AttackPattern::Juggernaut { .. } => "juggernaut-multibank",
            AttackPattern::Blacksmith { .. } => "blacksmith",
        }
    }
}

/// One run of an attack: the pattern plus the knobs the simulator needs to
/// instantiate attacker cores for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSpec {
    /// Name used on the experiment grid's attack axis and in reports.
    pub name: String,
    /// The pattern to run.
    pub pattern: AttackPattern,
    /// Number of attacker cores to add to the system (each gets a
    /// seed-derived RNG stream; they share the pattern).
    pub attacker_cores: usize,
    /// Seed for pattern compilation and the attacker's random choices.
    pub seed: u64,
    /// Stop the simulation at the first TRH crossing (time-to-break runs)
    /// instead of simulating through to the time cap.
    pub stop_at_first_crossing: bool,
}

impl AttackSpec {
    /// An attack with one attacker core, a fixed default seed, and
    /// stop-at-first-crossing semantics.
    #[must_use]
    pub fn new(name: impl Into<String>, pattern: AttackPattern) -> Self {
        Self {
            name: name.into(),
            pattern,
            attacker_cores: 1,
            seed: 0xA77AC4,
            stop_at_first_crossing: true,
        }
    }

    /// Override the attacker seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run through to the simulated-time cap even after a TRH crossing.
    #[must_use]
    pub fn run_to_cap(mut self) -> Self {
        self.stop_at_first_crossing = false;
        self
    }
}

/// The shipped pattern library: one [`AttackSpec`] per pattern family,
/// positioned in low rows of bank 0 (and banks 0..4 for the multi-bank
/// Juggernaut) so they stay in range on scaled test geometries.
#[must_use]
pub fn shipped_patterns() -> Vec<AttackSpec> {
    vec![
        AttackSpec::new("single-sided", AttackPattern::SingleSided { bank: 0, row: 64 }),
        AttackSpec::new("double-sided", AttackPattern::DoubleSided { bank: 0, victim: 128 }),
        AttackSpec::new(
            "4-sided",
            AttackPattern::NSided { bank: 0, first: 200, aggressors: 4, pitch: 2 },
        ),
        AttackSpec::new(
            "juggernaut",
            AttackPattern::Juggernaut { banks: 1, aggressor: 96, bias_rounds: u64::MAX },
        ),
        AttackSpec::new(
            "juggernaut-multibank",
            AttackPattern::Juggernaut { banks: 4, aggressor: 96, bias_rounds: u64::MAX },
        ),
        AttackSpec::new(
            "blacksmith",
            AttackPattern::Blacksmith {
                bank: 0,
                region_base: 512,
                region_rows: 64,
                aggressors: 6,
                max_intensity: 8,
            },
        ),
    ]
}

/// A compiled pattern: the cyclic aggressor schedule plus the row sets the
/// metrics layer needs, specialized to one DRAM geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternProgram {
    /// Stable label of the source pattern.
    pub label: &'static str,
    /// The cyclic base schedule the attacker replays: (bank, row) pairs.
    /// Aggressors alternate with same-bank dummy rows where needed so every
    /// access forces a fresh activation even under an open-page policy.
    pub slots: Vec<(usize, u64)>,
    /// The aggressor rows of the pattern.
    pub aggressors: Vec<(usize, u64)>,
    /// The blast radius: rows physically adjacent to an aggressor.
    pub victims: Vec<(usize, u64)>,
    /// Banks the attacker monitors for mitigation feedback.
    pub banks: Vec<usize>,
    /// Observed mitigations before switching to random guessing, if the
    /// pattern has a guess phase.
    pub bias_rounds: Option<u64>,
}

/// Rows adjacent to `row`, clamped to the bank.
fn neighbors(row: u64, rows_per_bank: u64) -> impl Iterator<Item = u64> {
    let lo = row.checked_sub(1);
    let hi = (row + 1 < rows_per_bank).then_some(row + 1);
    lo.into_iter().chain(hi)
}

/// A far-away row in the same bank used to force the aggressor's row to
/// close between consecutive accesses.
fn dummy_row(row: u64, rows_per_bank: u64) -> u64 {
    (row + rows_per_bank / 2) % rows_per_bank.max(1)
}

impl PatternProgram {
    /// Compile `pattern` against a geometry of `total_banks` banks of
    /// `rows_per_bank` rows. Bank and row coordinates are reduced into
    /// range; `seed` drives the Blacksmith fuzzer (static patterns ignore
    /// it, keeping them seed-independent).
    #[must_use]
    pub fn compile(
        pattern: &AttackPattern,
        total_banks: usize,
        rows_per_bank: u64,
        seed: u64,
    ) -> Self {
        let banks = total_banks.max(1);
        let rows = rows_per_bank.max(4);
        let clamp_bank = |b: usize| b % banks;
        let clamp_row = |r: u64| r % rows;
        match *pattern {
            AttackPattern::SingleSided { bank, row } => {
                let (bank, row) = (clamp_bank(bank), clamp_row(row));
                Self::from_aggressors(
                    pattern.label(),
                    vec![(bank, row), (bank, dummy_row(row, rows))],
                    vec![(bank, row)],
                    rows,
                    None,
                )
            }
            AttackPattern::DoubleSided { bank, victim } => {
                let bank = clamp_bank(bank);
                let victim = clamp_row(victim).clamp(1, rows - 2);
                let aggressors = vec![(bank, victim - 1), (bank, victim + 1)];
                Self::from_aggressors(pattern.label(), aggressors.clone(), aggressors, rows, None)
            }
            AttackPattern::NSided { bank, first, aggressors, pitch } => {
                let bank = clamp_bank(bank);
                let pitch = pitch.max(1);
                // Slide the window down to fit the geometry, then shrink it
                // if the geometry cannot hold the requested aggressor count
                // at this pitch — every emitted row must stay in range.
                let count = aggressors.max(2);
                let span = (count - 1).saturating_mul(pitch).saturating_add(1);
                let first = clamp_row(first).min(rows.saturating_sub(span));
                let count = count.min((rows - 1 - first) / pitch + 1);
                let rows_list: Vec<(usize, u64)> =
                    (0..count).map(|i| (bank, first + i * pitch)).collect();
                Self::from_aggressors(pattern.label(), rows_list.clone(), rows_list, rows, None)
            }
            AttackPattern::Juggernaut { banks: attack_banks, aggressor, bias_rounds } => {
                let aggressor = clamp_row(aggressor);
                let attacked: Vec<usize> = (0..attack_banks.max(1).min(banks)).collect();
                // Round-robin across banks; within a bank alternate the
                // aggressor with a dummy so each visit is an activation.
                let mut slots = Vec::with_capacity(attacked.len() * 2);
                for &b in &attacked {
                    slots.push((b, aggressor));
                    slots.push((b, dummy_row(aggressor, rows)));
                }
                let aggressors: Vec<(usize, u64)> =
                    attacked.iter().map(|&b| (b, aggressor)).collect();
                Self::from_aggressors(pattern.label(), slots, aggressors, rows, Some(bias_rounds))
            }
            AttackPattern::Blacksmith {
                bank,
                region_base,
                region_rows,
                aggressors,
                max_intensity,
            } => {
                let bank = clamp_bank(bank);
                let region_rows = region_rows.clamp(4, rows);
                let region_base = clamp_row(region_base).min(rows - region_rows);
                let mut rng = StdRng::seed_from_u64(seed ^ 0xB1AC_5317);
                let count = aggressors.clamp(1, region_rows / 2) as usize;
                // Distinct aggressor rows at even offsets (so fuzzed
                // patterns keep victims between aggressors), each with a
                // fuzzed intensity and phase.
                let mut chosen: Vec<u64> = Vec::with_capacity(count);
                while chosen.len() < count {
                    let row = region_base + rng.random_range(0..region_rows / 2) * 2;
                    if !chosen.contains(&row) {
                        chosen.push(row);
                    }
                }
                // Cap the per-aggressor intensity: the schedule length is
                // `sum(intensity)`, so an unbounded intensity gene (the
                // search mutates these freely) would make the compiled
                // program arbitrarily large.
                let max_intensity = max_intensity.clamp(1, 64);
                let mut weighted: Vec<(usize, u64)> = Vec::new();
                for &row in &chosen {
                    let intensity = rng.random_range(1..=max_intensity);
                    for _ in 0..intensity {
                        weighted.push((bank, row));
                    }
                }
                // Deterministic Fisher-Yates shuffle fuzzes the phase
                // ordering (the non-uniform part of Blacksmith schedules).
                for i in (1..weighted.len()).rev() {
                    let j = rng.random_range(0..=i);
                    weighted.swap(i, j);
                }
                let aggressors: Vec<(usize, u64)> = chosen.iter().map(|&r| (bank, r)).collect();
                Self::from_aggressors(pattern.label(), weighted, aggressors, rows, None)
            }
        }
    }

    fn from_aggressors(
        label: &'static str,
        slots: Vec<(usize, u64)>,
        aggressors: Vec<(usize, u64)>,
        rows_per_bank: u64,
        bias_rounds: Option<u64>,
    ) -> Self {
        let mut victims: Vec<(usize, u64)> = Vec::new();
        for &(bank, row) in &aggressors {
            for n in neighbors(row, rows_per_bank) {
                if !aggressors.contains(&(bank, n)) && !victims.contains(&(bank, n)) {
                    victims.push((bank, n));
                }
            }
        }
        let mut banks: Vec<usize> = aggressors.iter().map(|&(b, _)| b).collect();
        banks.sort_unstable();
        banks.dedup();
        Self { label, slots, aggressors, victims, banks, bias_rounds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BANKS: usize = 32;
    const ROWS: u64 = 1 << 17;

    #[test]
    fn compilation_is_deterministic_per_seed() {
        for spec in shipped_patterns() {
            let a = PatternProgram::compile(&spec.pattern, BANKS, ROWS, spec.seed);
            let b = PatternProgram::compile(&spec.pattern, BANKS, ROWS, spec.seed);
            assert_eq!(a, b, "{} must compile deterministically", spec.name);
            assert!(!a.slots.is_empty());
            assert!(!a.aggressors.is_empty());
            assert!(!a.victims.is_empty());
        }
    }

    #[test]
    fn blacksmith_seed_changes_the_schedule() {
        let pattern = AttackPattern::Blacksmith {
            bank: 0,
            region_base: 512,
            region_rows: 64,
            aggressors: 6,
            max_intensity: 8,
        };
        let a = PatternProgram::compile(&pattern, BANKS, ROWS, 1);
        let b = PatternProgram::compile(&pattern, BANKS, ROWS, 2);
        assert_ne!(a.slots, b.slots, "different seeds must fuzz different schedules");
    }

    #[test]
    fn double_sided_brackets_the_victim() {
        let program = PatternProgram::compile(
            &AttackPattern::DoubleSided { bank: 3, victim: 100 },
            BANKS,
            ROWS,
            0,
        );
        assert_eq!(program.aggressors, vec![(3, 99), (3, 101)]);
        assert!(program.victims.contains(&(3, 100)));
    }

    #[test]
    fn multibank_juggernaut_spans_banks_and_has_a_guess_phase() {
        let program = PatternProgram::compile(
            &AttackPattern::Juggernaut { banks: 4, aggressor: 96, bias_rounds: 10 },
            BANKS,
            ROWS,
            0,
        );
        assert_eq!(program.banks, vec![0, 1, 2, 3]);
        assert_eq!(program.bias_rounds, Some(10));
        assert_eq!(program.slots.len(), 8, "aggressor + dummy per bank");
    }

    #[test]
    fn coordinates_are_reduced_into_scaled_geometries() {
        for spec in shipped_patterns() {
            let program = PatternProgram::compile(&spec.pattern, 4, 256, spec.seed);
            for &(bank, row) in program.slots.iter().chain(&program.aggressors) {
                assert!(bank < 4, "{}: bank {bank} out of range", spec.name);
                assert!(row < 256, "{}: row {row} out of range", spec.name);
            }
        }
    }

    #[test]
    fn oversized_n_sided_is_shrunk_into_the_geometry() {
        // More aggressors than the geometry can hold at this pitch: the
        // window must shrink, never emit out-of-range rows.
        let program = PatternProgram::compile(
            &AttackPattern::NSided { bank: 0, first: 0, aggressors: 200, pitch: 2 },
            4,
            256,
            0,
        );
        assert!(!program.aggressors.is_empty());
        for &(_, row) in program.slots.iter().chain(&program.aggressors).chain(&program.victims) {
            assert!(row < 256, "row {row} escaped the geometry");
        }
    }

    #[test]
    fn single_sided_alternates_with_a_far_dummy() {
        let program = PatternProgram::compile(
            &AttackPattern::SingleSided { bank: 0, row: 64 },
            BANKS,
            ROWS,
            0,
        );
        assert_eq!(program.slots.len(), 2);
        let (_, a) = program.slots[0];
        let (_, d) = program.slots[1];
        assert!(a.abs_diff(d) > 2, "dummy must be far from the aggressor");
    }
}
