//! Per-subsystem wall-time attribution.
//!
//! Aggregate throughput numbers say a run got faster; they never say
//! *where the nanoseconds went*. This module adds a cheap timer mode to
//! [`crate::System`]: when enabled, a handful of coarse stopwatch laps
//! around the simulator's subsystem boundaries — the controller's
//! scheduling sweep, the aggressor tracker's activation accounting, the
//! defense's mitigation and lazy place-back work, the RIT address
//! translation on the issue path, and the security/attack-feedback
//! fan-out — accumulate into a [`SubsystemTimers`] ledger that folds into
//! an [`AttributionReport`]. The throughput bench records the report into
//! `BENCH_throughput.json`, so every perf PR lands against a breakdown
//! instead of a single number.
//!
//! The default path stays zero-cost: a disabled ledger never calls
//! [`Instant::now`] — each probe site is one predictable branch on the
//! `enabled` flag. The timed run is a *separate* pass from the headline
//! throughput measurement, because the laps themselves (two `Instant`
//! reads per batch per subsystem) perturb the quantity being measured.
//!
//! Buckets nest at the probe sites (the tracker loop runs inside the
//! controller tick; mitigation triggers run inside the tracker loop), so
//! the report subtracts inner laps from outer ones to make every bucket
//! *exclusive*: the buckets plus `other_ns` (issue loops, event-time
//! computation, bookkeeping) sum to the measured wall time, up to timer
//! noise.

use std::time::Instant;

use crate::json::{obj, Json, ToJson};

/// Raw stopwatch ledger, accumulated at the subsystem probe sites.
///
/// The buckets here are *inclusive* (an outer lap contains the inner laps
/// taken while it ran); [`AttributionReport::from_timers`] converts them
/// into exclusive buckets.
#[derive(Debug, Clone, Default)]
pub struct SubsystemTimers {
    enabled: bool,
    /// Whole controller tick (`tick_into`), including the sink work the
    /// activation/completion streams trigger.
    pub(crate) controller_raw_ns: u64,
    /// Demand-activation accounting loop: per-row window counts, probe
    /// fan-out, the tracker update, and (nested) mitigation triggers.
    pub(crate) tracker_raw_ns: u64,
    /// Attack feedback and security accounting fan-out (zero on benign
    /// runs, which skip the fan-out entirely).
    pub(crate) security_ns: u64,
    /// `on_mitigation_trigger` calls (nested inside the tracker loop).
    pub(crate) defense_trigger_ns: u64,
    /// Lazy defense work (`on_tick`: SRS place-back pacing).
    pub(crate) defense_lazy_ns: u64,
    /// RIT address translation on the issue path (`remapped_address`).
    pub(crate) rit_ns: u64,
}

impl SubsystemTimers {
    /// A ledger with the stopwatches armed.
    #[must_use]
    pub fn armed() -> Self {
        Self { enabled: true, ..Self::default() }
    }

    /// Start a lap: `Some(now)` when armed, `None` (no clock read) when
    /// disabled.
    #[inline]
    pub(crate) fn stamp(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Close a lap opened by [`SubsystemTimers::stamp`] into `bucket`.
    #[inline]
    pub(crate) fn lap(stamp: Option<Instant>, bucket: &mut u64) {
        if let Some(start) = stamp {
            *bucket += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
    }
}

/// Exclusive per-subsystem wall-time breakdown of one simulation run.
///
/// All fields are wall nanoseconds; the six buckets sum to `wall_ns` up to
/// timer noise (`other_ns` absorbs everything outside a probe site: core
/// issue loops, next-event computation, deferred-queue bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttributionReport {
    /// Wall time of the whole run.
    pub wall_ns: u64,
    /// Controller scheduling, timing model and completion delivery,
    /// excluding the sink work it triggers.
    pub controller_schedule_ns: u64,
    /// Aggressor-tracker accounting: per-row window counts plus the
    /// tracker's own update, excluding mitigation triggers.
    pub tracker_ns: u64,
    /// Defense work: mitigation triggers plus lazy place-back.
    pub defense_ns: u64,
    /// RIT address translation on the issue path.
    pub rit_ns: u64,
    /// Security accounting and attacker feedback fan-out.
    pub security_ns: u64,
    /// Everything outside the probe sites.
    pub other_ns: u64,
}

impl AttributionReport {
    /// Fold a raw (inclusive) ledger plus the run's wall time into
    /// exclusive buckets.
    #[must_use]
    pub(crate) fn from_timers(timers: &SubsystemTimers, wall_ns: u64) -> Self {
        let tracker_ns = timers.tracker_raw_ns.saturating_sub(timers.defense_trigger_ns);
        let controller_schedule_ns = timers
            .controller_raw_ns
            .saturating_sub(timers.tracker_raw_ns)
            .saturating_sub(timers.security_ns);
        let accounted = timers.controller_raw_ns + timers.defense_lazy_ns + timers.rit_ns;
        Self {
            wall_ns,
            controller_schedule_ns,
            tracker_ns,
            defense_ns: timers.defense_trigger_ns + timers.defense_lazy_ns,
            rit_ns: timers.rit_ns,
            security_ns: timers.security_ns,
            other_ns: wall_ns.saturating_sub(accounted),
        }
    }

    /// Decode the [`ToJson`] encoding — the inverse used by `srs-cli
    /// report` to read back the `{"attribution": ...}` footer that
    /// `srs-cli run --attribution` appends to a results stream.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or non-integer field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let field = |name: &str| -> Result<u64, String> {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("attribution.{name} must be an integer"))
        };
        Ok(Self {
            wall_ns: field("wall_ns")?,
            controller_schedule_ns: field("controller_schedule_ns")?,
            tracker_ns: field("tracker_ns")?,
            defense_ns: field("defense_ns")?,
            rit_ns: field("rit_ns")?,
            security_ns: field("security_ns")?,
            other_ns: field("other_ns")?,
        })
    }

    /// Element-wise sum, for aggregating a breakdown over several cells.
    #[must_use]
    pub fn merged(&self, other: &AttributionReport) -> AttributionReport {
        AttributionReport {
            wall_ns: self.wall_ns + other.wall_ns,
            controller_schedule_ns: self.controller_schedule_ns + other.controller_schedule_ns,
            tracker_ns: self.tracker_ns + other.tracker_ns,
            defense_ns: self.defense_ns + other.defense_ns,
            rit_ns: self.rit_ns + other.rit_ns,
            security_ns: self.security_ns + other.security_ns,
            other_ns: self.other_ns + other.other_ns,
        }
    }
}

impl ToJson for AttributionReport {
    fn to_json(&self) -> Json {
        obj(vec![
            ("wall_ns", Json::Uint(self.wall_ns)),
            ("controller_schedule_ns", Json::Uint(self.controller_schedule_ns)),
            ("tracker_ns", Json::Uint(self.tracker_ns)),
            ("defense_ns", Json::Uint(self.defense_ns)),
            ("rit_ns", Json::Uint(self.rit_ns)),
            ("security_ns", Json::Uint(self.security_ns)),
            ("other_ns", Json::Uint(self.other_ns)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ledger_never_stamps() {
        let timers = SubsystemTimers::default();
        assert!(timers.stamp().is_none());
        let mut bucket = 0;
        SubsystemTimers::lap(None, &mut bucket);
        assert_eq!(bucket, 0);
    }

    #[test]
    fn armed_ledger_accumulates() {
        let timers = SubsystemTimers::armed();
        let stamp = timers.stamp();
        assert!(stamp.is_some());
        let mut bucket = 0;
        SubsystemTimers::lap(stamp, &mut bucket);
        // Monotone clock: a closed lap records *some* duration (may be 0 on
        // coarse clocks, so only check it does not wrap).
        assert!(bucket < u64::MAX / 2);
    }

    #[test]
    fn report_makes_buckets_exclusive_and_exhaustive() {
        let timers = SubsystemTimers {
            enabled: true,
            controller_raw_ns: 1_000,
            tracker_raw_ns: 400,
            security_ns: 100,
            defense_trigger_ns: 150,
            defense_lazy_ns: 50,
            rit_ns: 30,
        };
        let report = AttributionReport::from_timers(&timers, 2_000);
        assert_eq!(report.controller_schedule_ns, 500); // 1000 - 400 - 100
        assert_eq!(report.tracker_ns, 250); // 400 - 150
        assert_eq!(report.defense_ns, 200); // 150 + 50
        assert_eq!(report.rit_ns, 30);
        assert_eq!(report.security_ns, 100);
        assert_eq!(report.other_ns, 920); // 2000 - 1000 - 50 - 30
        let sum = report.controller_schedule_ns
            + report.tracker_ns
            + report.defense_ns
            + report.rit_ns
            + report.security_ns
            + report.other_ns;
        assert_eq!(sum, report.wall_ns);
    }

    #[test]
    fn merged_adds_element_wise() {
        let a = AttributionReport { wall_ns: 10, tracker_ns: 3, ..Default::default() };
        let b = AttributionReport { wall_ns: 5, tracker_ns: 2, other_ns: 1, ..Default::default() };
        let m = a.merged(&b);
        assert_eq!(m.wall_ns, 15);
        assert_eq!(m.tracker_ns, 5);
        assert_eq!(m.other_ns, 1);
    }

    #[test]
    fn report_round_trips_through_the_json_codec() {
        let report = AttributionReport {
            wall_ns: 123,
            controller_schedule_ns: 40,
            tracker_ns: 30,
            defense_ns: 20,
            rit_ns: 10,
            security_ns: 3,
            other_ns: 20,
        };
        let encoded = report.to_json().to_compact();
        let parsed = Json::parse(&encoded).unwrap();
        assert_eq!(parsed.get("wall_ns").and_then(Json::as_u64), Some(123));
        assert_eq!(parsed.get("tracker_ns").and_then(Json::as_u64), Some(30));
        assert_eq!(parsed.get("other_ns").and_then(Json::as_u64), Some(20));
    }
}
