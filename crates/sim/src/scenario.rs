//! Declarative, scenario-driven experiment grids.
//!
//! Every performance figure of the paper is a sweep over the same axes:
//! which defenses, which workloads, which Row Hammer thresholds, sometimes
//! which tracker, core count or seed. Before this module, each bench and
//! example hand-rolled those nested loops; an [`Experiment`] instead
//! *declares* the grid and [`Experiment::run`] executes every cell on a
//! worker pool, returning results in a deterministic, submission-ordered
//! sequence (see [`Experiment::scenarios`] for the enumeration order).
//!
//! The base configuration of a grid is a named [`Preset`] plus a typed
//! [`ConfigPatch`] of overrides, so every experiment is fully serializable
//! (see [`crate::spec::ExperimentSpec`] for the data form); results either
//! come back as one `Vec` ([`Experiment::run`]) or stream into a
//! [`ResultSink`] cell by cell ([`Experiment::run_with_sink`]).
//!
//! ```
//! use srs_core::DefenseKind;
//! use srs_sim::scenario::Experiment;
//! use srs_sim::spec::ConfigPatch;
//! use srs_workloads::workloads_in;
//!
//! let tiny = ConfigPatch {
//!     cores: Some(1),
//!     target_instructions: Some(2_000),
//!     trace_records_per_core: Some(1_000),
//!     max_sim_ns: Some(2_000_000),
//!     ..ConfigPatch::default()
//! };
//!
//! let results = Experiment::new()
//!     .with_defenses(vec![DefenseKind::Baseline, DefenseKind::ScaleSrs])
//!     .with_workloads(workloads_in(srs_workloads::Suite::Gups))
//!     .with_patch(tiny)
//!     .run();
//! assert_eq!(results.len(), 2);
//! assert_eq!(results[0].scenario.defense, DefenseKind::Baseline);
//! ```

use fxhash::FxHashMap;
use srs_attack::AttackSpec;
use srs_core::DefenseKind;
use srs_trackers::TrackerKind;
use srs_workloads::{all_workloads, NamedWorkload};

use crate::campaign::CellFailure;
use crate::config::SystemConfig;
use crate::json::{obj, Json, ToJson};
use crate::metrics::{NormalizedResult, SimResult};
use crate::runner::{
    normalize_against, parallel_for_each_ordered, parallel_map_ordered, run_workload, JobEvent,
};
use crate::sink::ResultSink;
use crate::spec::{ConfigPatch, Preset};

/// Builds the base [`SystemConfig`] for one (defense, threshold) cell; a
/// plain function pointer so an [`Experiment`] stays `Clone + Send`.
#[deprecated(
    since = "0.1.0",
    note = "use the serializable `Preset` + `ConfigPatch` path \
            (`Experiment::with_preset` / `with_patch`) so experiments can be \
            described as data; `with_config_fn` remains as a compatibility \
            shim only"
)]
pub type ConfigFn = fn(DefenseKind, u64) -> SystemConfig;

/// How an [`Experiment`] builds the base configuration of each cell.
#[derive(Debug, Clone)]
#[allow(deprecated)]
enum ConfigSource {
    /// The serializable path: a named preset with typed overrides.
    Preset(Preset, ConfigPatch),
    /// The deprecated function-pointer escape hatch, kept so pre-spec
    /// callers continue to compile.
    Legacy(ConfigFn),
}

/// One cell of an experiment grid: everything needed to reproduce a single
/// simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Submission index of this scenario in the grid enumeration; results
    /// come back such that `results[i].scenario.index == i`.
    pub index: usize,
    /// The defense under test.
    pub defense: DefenseKind,
    /// Row Hammer threshold.
    pub t_rh: u64,
    /// Aggressor tracker.
    pub tracker: TrackerKind,
    /// Core-count override, or `None` for the base configuration's value.
    pub cores: Option<usize>,
    /// Seed override, or `None` for the base configuration's value.
    pub seed: Option<u64>,
    /// The attack scenario running next to the workload, or `None` for a
    /// benign cell.
    pub attack: Option<AttackSpec>,
    /// The workload to run.
    pub workload: NamedWorkload,
}

/// The outcome of one scenario: the scenario descriptor plus the
/// baseline-normalized simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The grid cell that produced this result.
    pub scenario: Scenario,
    /// The normalized simulation result.
    pub result: NormalizedResult,
}

impl ScenarioResult {
    /// Normalized performance of the run (1.0 means no slowdown).
    #[must_use]
    pub fn normalized(&self) -> f64 {
        self.result.normalized_performance
    }
}

/// A declarative experiment grid: defenses × trackers × thresholds × core
/// counts × seeds × attacks × workloads, plus the worker-thread budget that
/// [`Experiment::run`] uses to execute it.
#[derive(Debug, Clone)]
pub struct Experiment {
    defenses: Vec<DefenseKind>,
    workloads: Vec<NamedWorkload>,
    thresholds: Vec<u64>,
    trackers: Vec<TrackerKind>,
    core_counts: Vec<usize>,
    seeds: Vec<u64>,
    attacks: Vec<AttackSpec>,
    threads: usize,
    share_prefixes: bool,
    telemetry: Option<crate::telemetry::TelemetryConfig>,
    faults: Option<crate::faults::FaultsConfig>,
    config: ConfigSource,
}

impl Default for Experiment {
    fn default() -> Self {
        Self::new()
    }
}

impl Experiment {
    /// A grid with the paper's defaults: Scale-SRS, every workload,
    /// TRH = 1200, the Misra-Gries tracker, the base configuration's core
    /// count and seed, and the quick (`scaled_for_speed`) configuration.
    #[must_use]
    pub fn new() -> Self {
        Self {
            defenses: vec![DefenseKind::ScaleSrs],
            workloads: all_workloads(),
            thresholds: vec![1200],
            trackers: vec![TrackerKind::MisraGries],
            core_counts: Vec::new(),
            seeds: Vec::new(),
            attacks: Vec::new(),
            threads: default_threads(),
            share_prefixes: true,
            telemetry: None,
            faults: None,
            config: ConfigSource::Preset(Preset::ScaledForSpeed, ConfigPatch::default()),
        }
    }

    /// Sweep these defenses.
    #[must_use]
    pub fn with_defenses(mut self, defenses: Vec<DefenseKind>) -> Self {
        self.defenses = defenses;
        self
    }

    /// Sweep these workloads.
    #[must_use]
    pub fn with_workloads(mut self, workloads: Vec<NamedWorkload>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Sweep these Row Hammer thresholds.
    #[must_use]
    pub fn with_thresholds(mut self, thresholds: Vec<u64>) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Sweep these aggressor trackers.
    #[must_use]
    pub fn with_trackers(mut self, trackers: Vec<TrackerKind>) -> Self {
        self.trackers = trackers;
        self
    }

    /// Sweep these core counts (an empty list keeps the base
    /// configuration's core count, as a single-cell axis).
    #[must_use]
    pub fn with_core_counts(mut self, core_counts: Vec<usize>) -> Self {
        self.core_counts = core_counts;
        self
    }

    /// Sweep these seeds (an empty list keeps the base configuration's
    /// seed, as a single-cell axis).
    #[must_use]
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sweep these attack scenarios (an empty list runs benign cells only,
    /// as a single-cell axis). Each attacked cell adds the attack's
    /// closed-loop attacker cores next to the victim trace cores and
    /// carries a [`crate::security::SecurityReport`] on its result.
    #[must_use]
    pub fn with_attacks(mut self, attacks: Vec<AttackSpec>) -> Self {
        self.attacks = attacks;
        self
    }

    /// Execute on this many worker threads; `0` means "auto" (the
    /// [`default_threads`] budget: machine parallelism capped at 8).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 { default_threads() } else { threads };
        self
    }

    /// Enable or disable sharing-aware execution (default: enabled).
    ///
    /// When enabled, benign cells that differ only in defense, threshold,
    /// tracker or swap rate execute their common simulation prefix once on
    /// a shared trunk and fork at each cell's first mitigation feedback —
    /// results are bit-identical to the unshared path (the equivalence is
    /// test-enforced), only faster. Disabling it simulates every cell from
    /// scratch; useful for benchmarking the sharing itself or as a
    /// diagnostic bisect.
    #[must_use]
    pub fn with_share_prefixes(mut self, share: bool) -> Self {
        self.share_prefixes = share;
        self
    }

    /// Whether sharing-aware execution is enabled.
    #[must_use]
    pub fn share_prefixes(&self) -> bool {
        self.share_prefixes
    }

    /// Apply this telemetry configuration to every cell of the grid
    /// (`None`, the default, leaves the recorder disarmed). Arming
    /// telemetry never changes simulation results — the recorder only
    /// observes and its report rides outside the results JSON (see
    /// [`crate::telemetry`]).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: crate::telemetry::TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Apply this fault-model configuration to every cell of the grid
    /// (`None`, the default, leaves the end-to-end bit-flip/ECC model
    /// off). Only attacked cells build an injector, and the model is
    /// purely observational, so benign cells and every non-integrity
    /// result field are byte-identical either way.
    #[must_use]
    pub fn with_faults(mut self, faults: crate::faults::FaultsConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Build base configurations from this preset instead of the default
    /// [`Preset::ScaledForSpeed`] — the serializable replacement for
    /// `with_config_fn`.
    #[must_use]
    pub fn with_preset(mut self, preset: Preset) -> Self {
        let patch = match self.config {
            ConfigSource::Preset(_, patch) => patch,
            ConfigSource::Legacy(_) => ConfigPatch::default(),
        };
        self.config = ConfigSource::Preset(preset, patch);
        self
    }

    /// Apply these typed overrides on top of the preset's base
    /// configuration for every cell (axis values — tracker, core count,
    /// seed, attack — are applied after the patch and win over it).
    #[must_use]
    pub fn with_patch(mut self, patch: ConfigPatch) -> Self {
        let preset = match self.config {
            ConfigSource::Preset(preset, _) => preset,
            ConfigSource::Legacy(_) => Preset::default(),
        };
        self.config = ConfigSource::Preset(preset, patch);
        self
    }

    /// Build base configurations with an arbitrary function instead of a
    /// [`Preset`] + [`ConfigPatch`].
    ///
    /// Deprecated: a function pointer cannot be serialized, so experiments
    /// configured this way cannot be written to or re-run from a spec file.
    /// Express the configuration as `with_preset(...)` plus
    /// `with_patch(...)` instead; this shim remains so existing callers
    /// keep compiling.
    #[deprecated(
        since = "0.1.0",
        note = "use `with_preset` + `with_patch` (serializable); see \
                `srs_sim::spec::ExperimentSpec`"
    )]
    #[allow(deprecated)]
    #[must_use]
    pub fn with_config_fn(mut self, config_fn: ConfigFn) -> Self {
        self.config = ConfigSource::Legacy(config_fn);
        self
    }

    /// Number of grid cells this experiment will run.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.defenses.len()
            * self.trackers.len()
            * self.thresholds.len()
            * self.core_counts.len().max(1)
            * self.seeds.len().max(1)
            * self.attacks.len().max(1)
            * self.workloads.len()
    }

    /// Enumerate every cell of the grid, in the fixed order results are
    /// returned: defense (slowest-varying) → tracker → threshold → core
    /// count → seed → attack → workload (fastest-varying).
    ///
    /// # Panics
    ///
    /// Panics if a required axis (defenses, trackers, thresholds or
    /// workloads) is empty: unlike the optional core-count/seed axes, which
    /// fall back to the base configuration, an empty required axis would
    /// silently produce a zero-job grid whose downstream aggregates all
    /// read 1.000.
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        assert!(!self.defenses.is_empty(), "experiment has no defenses to sweep");
        assert!(!self.trackers.is_empty(), "experiment has no trackers to sweep");
        assert!(!self.thresholds.is_empty(), "experiment has no thresholds to sweep");
        assert!(!self.workloads.is_empty(), "experiment has no workloads to sweep");
        let core_axis: Vec<Option<usize>> = if self.core_counts.is_empty() {
            vec![None]
        } else {
            self.core_counts.iter().map(|&c| Some(c)).collect()
        };
        let seed_axis: Vec<Option<u64>> = if self.seeds.is_empty() {
            vec![None]
        } else {
            self.seeds.iter().map(|&s| Some(s)).collect()
        };
        let attack_axis: Vec<Option<AttackSpec>> = if self.attacks.is_empty() {
            vec![None]
        } else {
            self.attacks.iter().map(|a| Some(a.clone())).collect()
        };
        let mut scenarios = Vec::with_capacity(self.job_count());
        for &defense in &self.defenses {
            for &tracker in &self.trackers {
                for &t_rh in &self.thresholds {
                    for &cores in &core_axis {
                        for &seed in &seed_axis {
                            for attack in &attack_axis {
                                for workload in &self.workloads {
                                    scenarios.push(Scenario {
                                        index: scenarios.len(),
                                        defense,
                                        t_rh,
                                        tracker,
                                        cores,
                                        seed,
                                        attack: attack.clone(),
                                        workload: workload.clone(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        scenarios
    }

    /// The full configuration for one scenario: the preset's base
    /// configuration with the patch and then the scenario's axis values
    /// applied (axes win over the patch).
    #[must_use]
    pub fn config_for(&self, scenario: &Scenario) -> SystemConfig {
        let mut config = match &self.config {
            ConfigSource::Preset(preset, patch) => {
                let mut config = preset.base_config(scenario.defense, scenario.t_rh);
                patch.apply(&mut config);
                config
            }
            ConfigSource::Legacy(config_fn) => config_fn(scenario.defense, scenario.t_rh),
        };
        config.tracker = scenario.tracker;
        if let Some(cores) = scenario.cores {
            config.cores = cores;
        }
        if let Some(seed) = scenario.seed {
            config.seed = seed;
        }
        config.attack = scenario.attack.clone();
        if let Some(telemetry) = &self.telemetry {
            config.telemetry = telemetry.clone();
        }
        if let Some(faults) = self.faults {
            config.faults = faults;
        }
        config
    }

    /// Run every cell of the grid on the worker pool and return the results
    /// in submission order: `results[i].scenario.index == i`, with the
    /// ordering documented on [`Experiment::scenarios`]. Two runs of the
    /// same experiment produce identical result sequences.
    ///
    /// This is the collect-to-`Vec` view of the streaming engine behind
    /// [`Experiment::run_with_sink`] (each owned result is moved into the
    /// vector as its prefix completes); grids large enough that one
    /// end-of-run `Vec` is a problem should pass a streaming sink instead.
    #[must_use]
    pub fn run(&self) -> Vec<ScenarioResult> {
        let mut results = Vec::with_capacity(self.job_count());
        self.run_streaming(|event| {
            if let ExecEvent::Finished(result) = event {
                results.push(result);
            }
        });
        results
    }

    /// Run every cell of the grid, streaming each result into `sink` the
    /// moment its submission-order prefix has completed (the sink sees
    /// `scenario.index` 0, 1, 2, ... exactly once each) rather than
    /// materializing the whole result set; attacked cells carry their
    /// [`crate::security::SecurityReport`] on the emitted record. Two runs
    /// of the same experiment produce identical `on_result` sequences.
    ///
    /// Baseline pre-runs are not reported to the sink; it observes grid
    /// cells only.
    pub fn run_with_sink(&self, sink: &mut dyn ResultSink) {
        let total = self.run_streaming(|event| match event {
            ExecEvent::Started(scenario) => sink.on_scenario_start(scenario),
            ExecEvent::Finished(result) => sink.on_result(&result),
            // Default options never isolate, so cells cannot fail.
            ExecEvent::Failed(failure) => {
                unreachable!("cell {} failed without isolation: {}", failure.index, failure.error)
            }
            // Wall-clock accounting is a campaign concern; ResultSinks
            // observe results only.
            ExecEvent::UnitDone(_) => {}
        });
        sink.on_finish(total);
    }

    /// The streaming execution core shared by [`Experiment::run`] and
    /// [`Experiment::run_with_sink`]: `handle` receives each owned result
    /// in submission order (and start notifications in completion-race
    /// order), and the total cell count is returned.
    ///
    /// Two layers of work sharing keep a grid from re-simulating what it
    /// already knows:
    ///
    /// * **Prefix sharing** (default, see [`Experiment::with_share_prefixes`]):
    ///   benign cells that differ only in their mitigation axes (defense,
    ///   threshold, tracker, swap rate) form a group that executes the
    ///   common simulation prefix once on a shared trunk and forks each
    ///   cell at its first mitigation feedback; the trunk doubles as the
    ///   group's normalization baseline. Results are bit-identical to
    ///   from-scratch runs (test-enforced).
    /// * **Baseline sharing**: cells outside any group (attacked cells,
    ///   singleton groups, or everything when sharing is disabled) still
    ///   deduplicate their unprotected baselines — each distinct baseline
    ///   configuration × workload is simulated once across the defense
    ///   axis.
    fn run_streaming(&self, handle: impl FnMut(ExecEvent<'_>)) -> usize {
        self.run_streaming_opts(&ExecOptions::default(), handle)
    }

    /// Partition the grid into its deterministic **execution units**: each
    /// unit is either a shared-prefix trunk group (≥ 2 benign cells with
    /// equal workload and equal mitigation-neutralized configuration, see
    /// [`crate::share`]) or a singleton solo cell. Units are disjoint,
    /// cover the whole grid, and are ordered by their first cell index, so
    /// two plans of the same experiment are identical.
    ///
    /// Units are the atoms of work distribution: the campaign shard planner
    /// ([`crate::campaign::plan_shards`]) never splits a unit across
    /// shards, so sharding cannot break snapshot sharing.
    ///
    /// Keying by the *actual* neutralized configuration means a patch or
    /// legacy config function that varies non-mitigation fields per defense
    /// keeps those cells solo.
    pub(crate) fn plan_units(
        &self,
        scenarios: &[Scenario],
        configs: &[SystemConfig],
    ) -> Vec<Vec<usize>> {
        let total = scenarios.len();
        let mut group_of: Vec<Option<usize>> = vec![None; total];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        if self.share_prefixes {
            let mut keys: Vec<(&str, SystemConfig)> = Vec::new();
            for (i, scenario) in scenarios.iter().enumerate() {
                if scenario.attack.is_some() {
                    // The closed-loop attacker adapts to the defense's swap
                    // threshold from its first read: attacked cells have no
                    // shared prefix across the mitigation axes.
                    continue;
                }
                let key = crate::share::neutral_key(&configs[i]);
                let g = keys
                    .iter()
                    .position(|(w, k)| *w == scenario.workload.name && *k == key)
                    .unwrap_or_else(|| {
                        keys.push((scenario.workload.name, key));
                        groups.push(Vec::new());
                        groups.len() - 1
                    });
                groups[g].push(i);
                group_of[i] = Some(g);
            }
            // A group of one shares nothing; run it on the solo path (which
            // still shares baselines across such cells).
            for members in &groups {
                if members.len() < 2 {
                    for &i in members {
                        group_of[i] = None;
                    }
                }
            }
            groups.retain(|members| members.len() >= 2);
        }
        let mut units: Vec<Vec<usize>> = groups;
        units.extend((0..total).filter(|&i| group_of[i].is_none()).map(|i| vec![i]));
        units.sort_by_key(|unit| unit[0]);
        units
    }

    /// The streaming execution core shared by [`Experiment::run`],
    /// [`Experiment::run_with_sink`] and the campaign engine
    /// ([`crate::campaign`]): `handle` receives each cell's outcome in
    /// submission order (and start notifications in completion-race order)
    /// and the number of cells executed is returned.
    ///
    /// [`ExecOptions`] selects the execution policy: an optional cell
    /// subset (campaign shards and resume skip-lists) and optional
    /// panic isolation with bounded retry (campaign fault tolerance). The
    /// default options run the whole grid and propagate panics.
    pub(crate) fn run_streaming_opts(
        &self,
        opts: &ExecOptions,
        mut handle: impl FnMut(ExecEvent<'_>),
    ) -> usize {
        let scenarios = self.scenarios();
        let configs: Vec<SystemConfig> = scenarios.iter().map(|s| self.config_for(s)).collect();

        // The deterministic unit plan, restricted to the requested subset.
        // Units stay atomic under restriction: a shared-prefix group with
        // members outside the subset still shares its trunk among the
        // members inside it (run_shared_group accepts any cell subset and
        // branch results are independent, so the restriction cannot change
        // any cell's bits — enforced by tests/fork_equivalence.rs).
        let mut units = self.plan_units(&scenarios, &configs);
        if let Some(subset) = &opts.subset {
            let wanted: fxhash::FxHashSet<usize> = subset.iter().copied().collect();
            for unit in &mut units {
                unit.retain(|i| wanted.contains(i));
            }
            units.retain(|unit| !unit.is_empty());
        }
        // The cells this run will actually execute, in submission order.
        let order: Vec<usize> = {
            let mut order: Vec<usize> = units.iter().flatten().copied().collect();
            order.sort_unstable();
            order
        };
        let ran = order.len();

        // Phase 1: deduplicate and run the solo cells' baselines. Under
        // panic isolation a baseline panic is retried like any unit; if it
        // stays down, every cell normalizing against it fails (it cannot be
        // normalized), without aborting the rest of the grid.
        let solo: Vec<usize> = units.iter().filter(|u| u.len() == 1).map(|u| u[0]).collect();
        let mut baseline_jobs: Vec<(SystemConfig, NamedWorkload)> = Vec::new();
        let mut baseline_of: FxHashMap<usize, usize> = FxHashMap::default();
        for &i in &solo {
            let mut baseline_config = configs[i].clone();
            baseline_config.defense = DefenseKind::Baseline;
            let key = baseline_jobs
                .iter()
                .position(|(c, w)| w.name == scenarios[i].workload.name && *c == baseline_config)
                .unwrap_or_else(|| {
                    baseline_jobs.push((baseline_config, scenarios[i].workload.clone()));
                    baseline_jobs.len() - 1
                });
            baseline_of.insert(i, key);
        }
        let isolate = opts.isolate.as_ref();
        let baselines: Vec<Result<SimResult, (String, u32)>> =
            parallel_map_ordered(baseline_jobs, self.threads, |(config, workload)| match isolate {
                None => Ok(run_workload(&config, &workload)),
                Some(policy) => {
                    crate::runner::run_isolated(policy, None, || run_workload(&config, &workload))
                        .map(|(result, _attempts)| result)
                }
            });

        // Phase 2: one job per solo cell and one per shared group, ordered
        // by first cell index; each yields its cells' outcomes.
        // Jobs are cloned only when an isolated attempt is retried, so the
        // variant size asymmetry costs nothing on the happy path; boxing
        // would add a per-job allocation for no benefit.
        #[allow(clippy::large_enum_variant)]
        #[derive(Clone)]
        enum Job {
            Solo {
                index: usize,
                config: SystemConfig,
                /// `(baseline_ipc, reuse)` — or the baseline's failure.
                baseline: Result<(f64, Option<SimResult>), (String, u32)>,
            },
            Group {
                cells: Vec<crate::share::SharedCell>,
                workload: NamedWorkload,
            },
        }
        let mut jobs: Vec<Job> = Vec::new();
        for unit in &units {
            if let [i] = unit[..] {
                let baseline = match &baselines[baseline_of[&i]] {
                    Ok(b) => Ok((
                        b.total_ipc(),
                        (scenarios[i].defense == DefenseKind::Baseline).then(|| b.clone()),
                    )),
                    Err((message, attempts)) => {
                        Err((format!("baseline simulation failed: {message}"), *attempts))
                    }
                };
                jobs.push(Job::Solo { index: i, config: configs[i].clone(), baseline });
            } else {
                let cells: Vec<crate::share::SharedCell> = unit
                    .iter()
                    .map(|&i| crate::share::SharedCell {
                        index: i,
                        scenario: scenarios[i].clone(),
                        config: configs[i].clone(),
                    })
                    .collect();
                jobs.push(Job::Group { workload: scenarios[unit[0]].workload.clone(), cells });
            }
        }
        // Cell lists per job, for start notifications.
        let job_cells: Vec<Vec<usize>> = units.clone();

        type CellOutcome = (usize, Result<ScenarioResult, CellFailure>);
        let scenarios = &scenarios;
        let attribution = opts.attribution.clone();
        let attribution = attribution.as_ref();
        // Each finished unit reports its cell outcomes plus wall-clock
        // accounting (wall time spent in the worker, attempts consumed).
        let worker = |job: Job| -> (Vec<CellOutcome>, u64, u32) {
            let started = std::time::Instant::now();
            let wall =
                |attempts: u32, outcomes: Vec<CellOutcome>| -> (Vec<CellOutcome>, u64, u32) {
                    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    (outcomes, wall_ns, attempts)
                };
            // A solo cell whose shared baseline already failed has nothing
            // to normalize against; it fails without another attempt.
            if let Job::Solo { index, baseline: Err((error, attempts)), .. } = &job {
                let failure =
                    CellFailure { index: *index, attempts: *attempts, error: error.clone() };
                return wall(*attempts, vec![(*index, Err(failure))]);
            }
            let indices: Vec<usize> = match &job {
                Job::Solo { index, .. } => vec![*index],
                Job::Group { cells, .. } => cells.iter().map(|c| c.index).collect(),
            };
            let execute = |job: Job| -> Vec<(usize, ScenarioResult)> {
                match job {
                    Job::Solo { index, config, baseline } => {
                        // Invariant: jobs are only enqueued after every
                        // baseline either resolved or errored out above.
                        #[allow(clippy::expect_used)]
                        let (baseline_ipc, reuse) = baseline.expect("failed baselines early-out");
                        let scenario = &scenarios[index];
                        let defended = match (reuse, attribution) {
                            (Some(baseline), _) => baseline,
                            (None, None) => run_workload(&config, &scenario.workload),
                            (None, Some(total)) => {
                                let (result, report) = crate::runner::run_workload_attributed(
                                    &config,
                                    &scenario.workload,
                                );
                                // Invariant: worker threads never panic
                                // while holding this lock (merging is a pure
                                // add), so it cannot be poisoned.
                                #[allow(clippy::expect_used)]
                                let mut merged = total.lock().expect("attribution lock");
                                *merged = merged.merged(&report);
                                result
                            }
                        };
                        let result = normalize_against(defended, baseline_ipc, config.t_rh);
                        vec![(index, ScenarioResult { scenario: scenario.clone(), result })]
                    }
                    Job::Group { cells, workload } => {
                        crate::share::run_shared_group(&cells, &workload)
                    }
                }
            };
            match isolate {
                None => wall(1, execute(job).into_iter().map(|(i, r)| (i, Ok(r))).collect()),
                Some(policy) => {
                    let fault = opts.fault.as_ref().map(|f| (f, indices.as_slice()));
                    match crate::runner::run_isolated(policy, fault, || execute(job.clone())) {
                        Ok((results, attempts)) => {
                            wall(attempts, results.into_iter().map(|(i, r)| (i, Ok(r))).collect())
                        }
                        Err((error, attempts)) => wall(
                            attempts,
                            indices
                                .iter()
                                .map(|&i| {
                                    let failure =
                                        CellFailure { index: i, attempts, error: error.clone() };
                                    (i, Err(failure))
                                })
                                .collect(),
                        ),
                    }
                }
            }
        };

        // Jobs complete in submission order, but a group's cells are
        // scattered across the grid's index space; buffer and re-emit so
        // the handler still observes the run's cell indices ascending.
        let pos_of: FxHashMap<usize, usize> =
            order.iter().enumerate().map(|(pos, &i)| (i, pos)).collect();
        let mut slots: Vec<Option<Result<ScenarioResult, CellFailure>>> =
            (0..ran).map(|_| None).collect();
        let mut next_cell = 0usize;
        parallel_for_each_ordered(jobs, self.threads, worker, |event| match event {
            JobEvent::Started(job) => {
                for &i in &job_cells[job] {
                    handle(ExecEvent::Started(&scenarios[i]));
                }
            }
            JobEvent::Finished(job, (outputs, wall_ns, attempts)) => {
                for (index, outcome) in outputs {
                    let pos = pos_of[&index];
                    debug_assert!(slots[pos].is_none(), "cell {index} produced twice");
                    slots[pos] = Some(outcome);
                }
                while next_cell < ran {
                    let Some(outcome) = slots[next_cell].take() else { break };
                    match outcome {
                        Ok(result) => handle(ExecEvent::Finished(result)),
                        Err(failure) => handle(ExecEvent::Failed(failure)),
                    }
                    next_cell += 1;
                }
                handle(ExecEvent::UnitDone(UnitStats {
                    cells: job_cells[job].clone(),
                    wall_ns,
                    attempts,
                }));
            }
        });
        assert!(next_cell == ran, "grid execution left cells unfinished");
        ran
    }
}

/// Execution policy for one grid run: an optional cell subset (campaign
/// shards and resume skip-lists) and optional panic isolation with bounded
/// retry (campaign fault tolerance). The default runs the full grid and
/// lets a panicking cell propagate and abort the run — the historical
/// [`Experiment::run`] behaviour.
#[derive(Debug, Clone, Default)]
pub(crate) struct ExecOptions {
    /// Run only these grid cell indices (`None` runs every cell). Units
    /// stay atomic: a shared-prefix group restricted to a subset of its
    /// members still shares its trunk among them.
    pub(crate) subset: Option<Vec<usize>>,
    /// Catch per-unit panics and retry under this policy; a unit that
    /// keeps panicking reports [`ExecEvent::Failed`] for each of its cells
    /// instead of aborting the run.
    pub(crate) isolate: Option<crate::runner::RetryPolicy>,
    /// Deterministic fault injection for crash/retry tests (only honoured
    /// when `isolate` is set).
    pub(crate) fault: Option<crate::runner::FaultInjection>,
    /// When set, every defended solo cell runs with the per-subsystem
    /// stopwatches armed ([`crate::System::run_attributed`]) and merges its
    /// breakdown into this shared report. Results stay bit-identical; only
    /// wall time is perturbed, so arm it for breakdown runs, not headline
    /// throughput. Shared-prefix groups are not attributed — callers
    /// wanting full coverage disable sharing first.
    pub(crate) attribution:
        Option<std::sync::Arc<std::sync::Mutex<crate::attribution::AttributionReport>>>,
}

/// One event of [`Experiment::run_streaming_opts`]'s deterministic stream.
// The events are transient (matched and consumed immediately, never
// stored), so the variant size asymmetry costs nothing; boxing would add a
// per-cell allocation for no benefit.
#[allow(clippy::large_enum_variant)]
pub(crate) enum ExecEvent<'a> {
    /// A worker picked this scenario up (completion-race order).
    Started(&'a Scenario),
    /// The cell finished; delivered owned, in submission order.
    Finished(ScenarioResult),
    /// The cell exhausted its retry budget; delivered at the cell's slot in
    /// submission order, so downstream consumers observe a gap-free
    /// ascending stream of outcomes.
    Failed(CellFailure),
    /// An execution unit (solo cell or shared-prefix group) finished,
    /// successfully or not; delivered once per unit, in unit submission
    /// order, after the unit's cell outcomes have been buffered.
    UnitDone(UnitStats),
}

/// Wall-clock accounting for one executed unit: which cells it covered,
/// how long the worker spent on it (including retry backoff), and how
/// many isolated attempts it consumed. Recorded into the campaign
/// manifest so long-running campaigns can be profiled and re-sharded
/// from their own timing data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitStats {
    /// Sorted grid cell indices the unit covered.
    pub cells: Vec<usize>,
    /// Wall time the worker spent executing the unit.
    pub wall_ns: u64,
    /// Attempts consumed (1 without isolation or on first-try success).
    pub attempts: u32,
}

impl ToJson for UnitStats {
    fn to_json(&self) -> Json {
        obj(vec![
            ("cells", Json::Array(self.cells.iter().map(|&c| c.into()).collect())),
            ("wall_ns", self.wall_ns.into()),
            ("attempts", u64::from(self.attempts).into()),
        ])
    }
}

impl UnitStats {
    /// Decode the [`ToJson`] form.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let cells = json
            .get("cells")
            .and_then(Json::as_array)
            .ok_or("timing.cells must be an array")?
            .iter()
            .map(|c| c.as_u64().map(|v| v as usize).ok_or("timing.cells must hold integers"))
            .collect::<Result<Vec<_>, _>>()?;
        let wall_ns = json
            .get("wall_ns")
            .and_then(Json::as_u64)
            .ok_or("timing.wall_ns must be an integer")?;
        let attempts = json
            .get("attempts")
            .and_then(Json::as_u64)
            .ok_or("timing.attempts must be an integer")? as u32;
        Ok(Self { cells, wall_ns, attempts })
    }
}

impl ToJson for Scenario {
    fn to_json(&self) -> Json {
        obj(vec![
            ("index", self.index.into()),
            ("defense", Json::from(self.defense.to_string())),
            ("t_rh", self.t_rh.into()),
            ("tracker", Json::from(self.tracker.to_string())),
            ("cores", self.cores.into()),
            ("seed", self.seed.into()),
            ("attack", self.attack.as_ref().map_or(Json::Null, ToJson::to_json)),
            ("workload", Json::from(self.workload.name)),
            ("suite", Json::from(self.workload.suite.label())),
        ])
    }
}

impl ToJson for ScenarioResult {
    /// The JSONL record shape [`crate::sink::JsonlWriter`] emits: the full
    /// scenario descriptor plus the normalized result (security report
    /// included for attacked cells).
    fn to_json(&self) -> Json {
        obj(vec![("scenario", self.scenario.to_json()), ("result", self.result.to_json())])
    }
}

/// The normalized results of the cells matching a defense and threshold —
/// the per-figure grouping the benches print (pass to
/// [`crate::runner::suite_averages`]).
///
/// Returns borrowed results: the group is a view into the result set, so
/// selecting and averaging (the whole figure-printing path) never clones a
/// result record.
///
/// The group is meant to be averaged, so it must correspond to *one*
/// configuration: if the matching cells span more than one tracker, seed,
/// core count or attack (an experiment built with several values on those
/// axes), this panics rather than silently averaging unrelated runs —
/// filter with [`results_where`] on every varying axis instead.
///
/// # Panics
///
/// Panics if nothing matches (the grid never ran that defense/threshold —
/// averaging the empty group would silently print 1.000), or if the
/// matching results mix trackers, seeds, core counts or attacks.
#[must_use]
pub fn results_for(
    results: &[ScenarioResult],
    defense: DefenseKind,
    t_rh: u64,
) -> Vec<&NormalizedResult> {
    let matching: Vec<&ScenarioResult> = results
        .iter()
        .filter(|r| r.scenario.defense == defense && r.scenario.t_rh == t_rh)
        .collect();
    assert!(
        !matching.is_empty(),
        "results_for({defense}, {t_rh}) matched no cells — that defense/threshold \
         combination was not part of the experiment grid"
    );
    if let Some(first) = matching.first() {
        for r in &matching {
            assert!(
                r.scenario.tracker == first.scenario.tracker
                    && r.scenario.seed == first.scenario.seed
                    && r.scenario.cores == first.scenario.cores
                    && r.scenario.attack == first.scenario.attack,
                "results_for({defense}, {t_rh}) matched cells from more than one \
                 tracker/seed/core-count/attack configuration; group with \
                 results_where on every varying axis before averaging"
            );
        }
    }
    matching.into_iter().map(|r| &r.result).collect()
}

/// The normalized results of the cells matching an arbitrary scenario
/// predicate, for grids that sweep axes beyond defense and threshold.
/// Borrowed, like [`results_for`].
#[must_use]
pub fn results_where(
    results: &[ScenarioResult],
    predicate: impl Fn(&Scenario) -> bool,
) -> Vec<&NormalizedResult> {
    results.iter().filter(|r| predicate(&r.scenario)).map(|r| &r.result).collect()
}

/// The worker-thread budget experiments use unless overridden with
/// [`Experiment::with_threads`]: the machine's available parallelism,
/// capped at 8 (simulation jobs are memory-bound; more workers thrash).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srs_workloads::Suite;

    fn tiny() -> ConfigPatch {
        ConfigPatch {
            cores: Some(1),
            target_instructions: Some(2_000),
            trace_records_per_core: Some(1_000),
            refresh_window_ns: Some(500_000),
            max_sim_ns: Some(2_000_000),
            ..ConfigPatch::default()
        }
    }

    fn two_workloads() -> Vec<NamedWorkload> {
        all_workloads().into_iter().filter(|w| w.name == "gups" || w.name == "gcc").collect()
    }

    #[test]
    fn grid_enumeration_is_defense_major_workload_minor() {
        let experiment = Experiment::new()
            .with_defenses(vec![DefenseKind::Baseline, DefenseKind::Srs])
            .with_thresholds(vec![1200, 2400])
            .with_workloads(two_workloads());
        assert_eq!(experiment.job_count(), 8);
        let scenarios = experiment.scenarios();
        assert_eq!(scenarios.len(), 8);
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.index, i);
        }
        assert_eq!(scenarios[0].defense, DefenseKind::Baseline);
        assert_eq!(scenarios[0].t_rh, 1200);
        // Workloads vary fastest, thresholds next, defenses slowest.
        assert_ne!(scenarios[0].workload.name, scenarios[1].workload.name);
        assert_eq!(scenarios[2].t_rh, 2400);
        assert_eq!(scenarios[4].defense, DefenseKind::Srs);
    }

    #[test]
    fn axis_overrides_reach_the_configuration() {
        let experiment = Experiment::new()
            .with_workloads(two_workloads())
            .with_core_counts(vec![2])
            .with_seeds(vec![99])
            .with_trackers(vec![TrackerKind::Hydra])
            .with_patch(tiny());
        let scenarios = experiment.scenarios();
        let config = experiment.config_for(&scenarios[0]);
        assert_eq!(config.cores, 2);
        assert_eq!(config.seed, 99);
        assert_eq!(config.tracker, TrackerKind::Hydra);
    }

    #[test]
    fn empty_axes_fall_back_to_base_config() {
        let experiment = Experiment::new().with_workloads(two_workloads()).with_patch(tiny());
        let scenarios = experiment.scenarios();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].cores, None);
        let config = experiment.config_for(&scenarios[0]);
        assert_eq!(config.cores, 1);
    }

    #[test]
    fn results_for_selects_one_cell_group() {
        let experiment = Experiment::new()
            .with_defenses(vec![DefenseKind::Baseline, DefenseKind::ScaleSrs])
            .with_workloads(workloads(Suite::Gups))
            .with_patch(tiny())
            .with_threads(2);
        let results = experiment.run();
        assert_eq!(results.len(), 2);
        let scale = results_for(&results, DefenseKind::ScaleSrs, 1200);
        assert_eq!(scale.len(), 1);
        assert_eq!(scale[0].defense, "scale-srs");
    }

    fn workloads(suite: Suite) -> Vec<NamedWorkload> {
        all_workloads().into_iter().filter(|w| w.suite == suite).collect()
    }

    #[test]
    fn shared_baselines_match_per_cell_normalization() {
        // The engine computes each distinct baseline once; the results must
        // be bit-identical to normalizing every cell independently.
        let experiment = Experiment::new()
            .with_defenses(vec![DefenseKind::Srs, DefenseKind::ScaleSrs])
            .with_workloads(two_workloads())
            .with_patch(tiny())
            .with_threads(2);
        let results = experiment.run();
        for r in &results {
            let config = experiment.config_for(&r.scenario);
            let direct = crate::runner::run_normalized(&config, &r.scenario.workload);
            assert_eq!(r.result.normalized_performance, direct.normalized_performance);
            assert_eq!(r.result.detail.swaps, direct.detail.swaps);
        }
    }

    #[test]
    fn empty_required_axis_is_rejected() {
        let experiment = Experiment::new().with_defenses(Vec::new());
        assert!(std::panic::catch_unwind(|| experiment.scenarios()).is_err());
        let experiment = Experiment::new().with_workloads(Vec::new());
        assert!(std::panic::catch_unwind(|| experiment.scenarios()).is_err());
    }

    #[test]
    fn attack_axis_reaches_the_configuration_and_collects_security_reports() {
        use srs_attack::engine::{AttackPattern, AttackSpec};
        let attack = AttackSpec::new("single", AttackPattern::SingleSided { bank: 0, row: 64 });
        let experiment = Experiment::new()
            .with_defenses(vec![DefenseKind::Baseline, DefenseKind::Srs])
            .with_workloads(workloads(Suite::Gups))
            .with_attacks(vec![attack.clone()])
            .with_patch(tiny())
            .with_threads(2);
        assert_eq!(experiment.job_count(), 2);
        let scenarios = experiment.scenarios();
        assert_eq!(scenarios[0].attack.as_ref().unwrap().name, "single");
        let config = experiment.config_for(&scenarios[0]);
        assert_eq!(config.attack, Some(attack));

        let results = experiment.run();
        assert_eq!(results.len(), 2);
        for r in &results {
            let security =
                r.result.detail.security.as_ref().expect("attacked cells carry a report");
            assert_eq!(security.attack, "single");
            assert!(security.attacker_reads > 0);
        }
        // The undefended baseline must be broken; SRS must hold.
        assert!(results[0].result.detail.security.as_ref().unwrap().trh_crossed);
        assert!(!results[1].result.detail.security.as_ref().unwrap().trh_crossed);
    }

    #[test]
    fn run_with_sink_streams_the_same_results_run_returns() {
        use crate::sink::{MemoryCollector, ResultSink};

        struct CountingSink {
            inner: MemoryCollector,
            starts: usize,
            finished_total: Option<usize>,
        }
        impl ResultSink for CountingSink {
            fn on_scenario_start(&mut self, _scenario: &Scenario) {
                self.starts += 1;
            }
            fn on_result(&mut self, result: &ScenarioResult) {
                self.inner.on_result(result);
            }
            fn on_finish(&mut self, total: usize) {
                self.finished_total = Some(total);
            }
        }

        let experiment = Experiment::new()
            .with_defenses(vec![DefenseKind::Srs, DefenseKind::ScaleSrs])
            .with_workloads(two_workloads())
            .with_patch(tiny())
            .with_threads(4);
        let mut sink =
            CountingSink { inner: MemoryCollector::new(), starts: 0, finished_total: None };
        experiment.run_with_sink(&mut sink);
        assert_eq!(sink.starts, 4, "every cell reports a start event");
        assert_eq!(sink.finished_total, Some(4));
        let streamed = sink.inner.into_results();
        for (i, r) in streamed.iter().enumerate() {
            assert_eq!(r.scenario.index, i, "sink receives results in submission order");
        }
        assert_eq!(streamed, experiment.run(), "run() is the collector view of the stream");
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_config_fn_shim_still_works() {
        // The pre-spec escape hatch must keep compiling and producing the
        // same configurations until external callers migrate off it.
        fn legacy(defense: DefenseKind, t_rh: u64) -> SystemConfig {
            let mut config = SystemConfig::scaled_for_speed(defense, t_rh);
            config.cores = 3;
            config
        }
        let experiment = Experiment::new().with_workloads(two_workloads()).with_config_fn(legacy);
        let scenarios = experiment.scenarios();
        let config = experiment.config_for(&scenarios[0]);
        assert_eq!(config.cores, 3);
        // Switching back to the serializable path replaces the function.
        let experiment = experiment.with_patch(tiny());
        let config = experiment.config_for(&scenarios[0]);
        assert_eq!(config.cores, 1);
    }

    #[test]
    fn results_for_rejects_absent_groups() {
        let experiment =
            Experiment::new().with_workloads(two_workloads()).with_patch(tiny()).with_threads(2);
        let results = experiment.run();
        // The grid ran Scale-SRS at 1200 only; asking for RRS must be loud,
        // not an empty group that averages to a fake 1.000.
        let absent = std::panic::catch_unwind(|| {
            results_for(&results, DefenseKind::Rrs { immediate_unswap: true }, 1200)
        });
        assert!(absent.is_err());
    }

    #[test]
    fn results_for_rejects_mixed_axes_and_results_where_selects_them() {
        let experiment = Experiment::new()
            .with_workloads(workloads(Suite::Gups))
            .with_trackers(vec![TrackerKind::MisraGries, TrackerKind::Hydra])
            .with_patch(tiny())
            .with_threads(2);
        let results = experiment.run();
        assert_eq!(results.len(), 2);
        // Grouping by (defense, t_rh) alone would average two trackers.
        let grouped =
            std::panic::catch_unwind(|| results_for(&results, DefenseKind::ScaleSrs, 1200));
        assert!(grouped.is_err(), "mixed-tracker group must be rejected");
        // The predicate form selects one tracker's cells cleanly.
        let hydra = results_where(&results, |s| s.tracker == TrackerKind::Hydra);
        assert_eq!(hydra.len(), 1);
    }
}
