//! Structured, non-panicking errors surfaced by the simulation engine.
//!
//! The engine's robustness contract: malformed input (a trace record whose
//! address decodes outside the configured geometry, a record stream of any
//! shape) must never panic the controller or wedge a core. Instead the
//! offending access is dropped, its issuer is completed immediately so it
//! cannot hang, and the event is recorded here for the caller to inspect.

use std::error::Error;
use std::fmt;

use srs_dram::DramError;

/// A structured error the engine recorded instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A demand access could not be enqueued for a reason other than
    /// transient queue backpressure (which is deferred and retried, not an
    /// error): the decoded destination lies outside the configured
    /// geometry. The access was dropped and its issuing core completed
    /// immediately so the run proceeds.
    UnroutableAccess {
        /// The physical byte address of the dropped access.
        addr: u64,
        /// The controller's rejection.
        error: DramError,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnroutableAccess { addr, error } => {
                write!(f, "unroutable access at {addr:#x} dropped: {error}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::UnroutableAccess { error, .. } => Some(error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_address_and_cause() {
        let e = SimError::UnroutableAccess {
            addr: 0x1234,
            error: DramError::BankOutOfRange { bank: 99, total_banks: 32 },
        };
        let s = e.to_string();
        assert!(s.contains("0x1234"));
        assert!(s.contains("bank 99"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
