//! Experiment runner: normalized performance, suite sweeps and parallel
//! execution of many simulations.

use crossbeam::channel;
use serde::{Deserialize, Serialize};
use srs_core::DefenseKind;
use srs_workloads::{NamedWorkload, Suite};

use crate::config::SystemConfig;
use crate::json::{obj, Json, ToJson};
use crate::metrics::{NormalizedResult, SimResult};
use crate::system::System;

/// Run one workload under one configuration.
#[must_use]
pub fn run_workload(config: &SystemConfig, workload: &NamedWorkload) -> SimResult {
    let trace = workload.spec().generate(config.trace_records_per_core, config.seed);
    System::new(config.clone(), trace).run()
}

/// Run one workload with the per-subsystem stopwatches armed (see
/// [`crate::attribution`]). The result is bit-identical to
/// [`run_workload`]'s; the report carries the wall-time breakdown. The
/// laps perturb wall time by a few percent, so use this for breakdown
/// passes, not headline throughput measurement.
#[must_use]
pub fn run_workload_attributed(
    config: &SystemConfig,
    workload: &NamedWorkload,
) -> (SimResult, crate::attribution::AttributionReport) {
    let trace = workload.spec().generate(config.trace_records_per_core, config.seed);
    System::new(config.clone(), trace).run_attributed()
}

/// Run one workload under a defense and under the baseline, returning the
/// defense result normalized to the baseline (the y-axis of Figures 4, 12,
/// 14, 15 and 16).
#[must_use]
pub fn run_normalized(config: &SystemConfig, workload: &NamedWorkload) -> NormalizedResult {
    let mut baseline_config = config.clone();
    baseline_config.defense = DefenseKind::Baseline;
    let baseline = run_workload(&baseline_config, workload);
    let defended = run_workload(config, workload);
    normalize_against(defended, baseline.total_ipc(), config.t_rh)
}

/// Normalize a defended run against an already-computed baseline IPC (the
/// scenario engine computes each distinct baseline once and shares it across
/// the defense axis).
///
/// Normalized performance is capped at 1.0: with the dense synthetic traces,
/// Scale-SRS's LLC pinning of extremely hot rows can outweigh its swap cost
/// and beat the unprotected baseline, which the paper's real traces do not
/// exhibit (see EXPERIMENTS.md).
#[must_use]
pub fn normalize_against(defended: SimResult, baseline_ipc: f64, t_rh: u64) -> NormalizedResult {
    let normalized =
        if baseline_ipc > 0.0 { (defended.total_ipc() / baseline_ipc).min(1.0) } else { 1.0 };
    NormalizedResult {
        workload: defended.workload.clone(),
        defense: defended.defense.clone(),
        t_rh,
        normalized_performance: normalized,
        detail: defended,
    }
}

/// Bounded retry-with-backoff policy for panic-isolated campaign
/// execution (see [`crate::campaign`]).
///
/// A grid cell (or shared-prefix group) that panics is retried up to
/// [`RetryPolicy::max_attempts`] total attempts, sleeping
/// `backoff_ms * 2^(attempt-1)` between attempts; a cell still failing
/// after the last attempt is reported as a
/// [`crate::campaign::CellFailure`] instead of aborting the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per execution unit, including the first (≥ 1).
    pub max_attempts: u32,
    /// Base backoff in milliseconds; doubles after every failed attempt.
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    /// Three attempts with a 50 ms base backoff.
    fn default() -> Self {
        Self { max_attempts: 3, backoff_ms: 50 }
    }
}

impl RetryPolicy {
    /// How long to sleep after failed attempt number `attempt` (1-based).
    #[must_use]
    pub fn backoff_after(&self, attempt: u32) -> std::time::Duration {
        let shift = attempt.saturating_sub(1).min(10);
        std::time::Duration::from_millis(self.backoff_ms.saturating_mul(1u64 << shift))
    }
}

/// Deterministic fault injection for campaign crash/retry tests: the
/// execution unit containing `cell` panics on its first `failures`
/// attempts and succeeds afterwards (so `failures >=` the retry budget
/// makes the cell fail persistently).
///
/// `srs-cli run` arms this from the `SRS_CAMPAIGN_FAIL=<cell>:<failures>`
/// environment variable; it exists so the kill/retry paths can be
/// exercised end to end without racing a real signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInjection {
    /// Grid index of the cell whose execution unit panics.
    pub cell: usize,
    /// Number of leading attempts that panic.
    pub failures: u32,
}

impl FaultInjection {
    /// Parse the `<cell>:<failures>` form (e.g. `"3:2"`).
    #[must_use]
    pub fn parse(spec: &str) -> Option<Self> {
        let (cell, failures) = spec.split_once(':')?;
        Some(Self { cell: cell.trim().parse().ok()?, failures: failures.trim().parse().ok()? })
    }

    /// Read the `SRS_CAMPAIGN_FAIL` environment variable.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        Self::parse(&std::env::var("SRS_CAMPAIGN_FAIL").ok()?)
    }
}

/// Best-effort human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&'static str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

/// Run `f` under [`std::panic::catch_unwind`] with the retry policy,
/// optionally injecting a deterministic fault when this unit covers the
/// injection's target cell. Returns `(value, attempts)` — how many
/// attempts the unit consumed feeds the campaign manifest's timing
/// records — or `(message, attempts)` of the last panic once the attempt
/// budget is exhausted.
pub(crate) fn run_isolated<T>(
    policy: &RetryPolicy,
    fault: Option<(&FaultInjection, &[usize])>,
    f: impl Fn() -> T,
) -> Result<(T, u32), (String, u32)> {
    let mut attempt = 1u32;
    loop {
        let inject = fault
            .is_some_and(|(fault, cells)| cells.contains(&fault.cell) && attempt <= fault.failures);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if inject {
                panic!("injected campaign fault (attempt {attempt})");
            }
            f()
        }));
        match outcome {
            Ok(value) => return Ok((value, attempt)),
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                if attempt >= policy.max_attempts.max(1) {
                    return Err((message, attempt));
                }
                std::thread::sleep(policy.backoff_after(attempt));
                attempt += 1;
            }
        }
    }
}

/// One lifecycle event of a job running under
/// [`parallel_for_each_ordered`].
#[derive(Debug)]
pub enum JobEvent<O> {
    /// A worker picked the job up. Start events arrive in *completion-race*
    /// order (whichever worker dequeues first), not submission order — use
    /// them for progress display, not for sequencing.
    Started(usize),
    /// The job finished. Finish events are delivered strictly in
    /// **submission order**: `Finished(i, _)` always arrives after
    /// `Finished(i - 1, _)`, regardless of which job completed first.
    Finished(usize, O),
}

/// Run `f` over every item on a pool of `threads` workers, streaming each
/// output to `handle` **in submission order** as soon as its prefix of the
/// job list has completed — the execution primitive behind
/// [`parallel_map_ordered`], [`run_parallel`] and the sink-driven
/// [`crate::scenario::Experiment::run_with_sink`].
///
/// Outputs that finish ahead of an earlier, slower job are buffered until
/// the gap closes, so `handle` observes a deterministic event sequence while
/// memory holds only the out-of-order window rather than the whole result
/// set.
///
/// # Panics
///
/// Panics if a worker panicked while executing a job (the panic is reported
/// against the job's index).
pub fn parallel_for_each_ordered<I, O, F, H>(items: Vec<I>, threads: usize, f: F, mut handle: H)
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
    H: FnMut(JobEvent<O>),
{
    let threads = threads.max(1);
    if items.is_empty() {
        return;
    }
    let total = items.len();
    let (job_tx, job_rx) = channel::unbounded::<(usize, I)>();
    let (event_tx, event_rx) = channel::unbounded::<JobEvent<O>>();
    for job in items.into_iter().enumerate() {
        // Invariant: `job_rx` lives until the thread scope below joins, so
        // the unbounded channel cannot be disconnected yet.
        #[allow(clippy::expect_used)]
        job_tx.send(job).expect("queue open");
    }
    drop(job_tx);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let job_rx = job_rx.clone();
            let event_tx = event_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((index, item)) = job_rx.recv() {
                    if event_tx.send(JobEvent::Started(index)).is_err() {
                        break;
                    }
                    if event_tx.send(JobEvent::Finished(index, f(item))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(event_tx);
        // Buffer only the out-of-order window: results that arrived ahead of
        // a still-running earlier job.
        let mut pending: Vec<Option<O>> = (0..total).map(|_| None).collect();
        let mut next = 0usize;
        for event in event_rx.iter() {
            match event {
                JobEvent::Started(index) => handle(JobEvent::Started(index)),
                JobEvent::Finished(index, output) => {
                    pending[index] = Some(output);
                    while next < total {
                        let Some(output) = pending[next].take() else { break };
                        handle(JobEvent::Finished(next, output));
                        next += 1;
                    }
                }
            }
        }
        // The channel closed with a gap: the worker running job `next`
        // panicked (its sender dropped without reporting); point at the
        // real failure rather than a generic unwrap message.
        assert!(
            next == total,
            "worker panicked while executing job {next}; see the panic output above"
        );
    });
}

/// Run `f` over every item on a pool of `threads` workers, returning the
/// outputs **in submission order** regardless of completion order: two runs
/// of the same job list produce identically ordered output even though fast
/// jobs finish before slow ones.
#[must_use]
pub fn parallel_map_ordered<I, O, F>(items: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let mut outputs = Vec::with_capacity(items.len());
    parallel_for_each_ordered(items, threads, f, |event| {
        if let JobEvent::Finished(_, output) = event {
            outputs.push(output);
        }
    });
    outputs
}

/// Run a set of (configuration, workload) jobs across `threads` worker
/// threads and return the normalized results in **submission order**, so
/// sweeps are reproducible run-to-run.
#[must_use]
pub fn run_parallel(
    jobs: Vec<(SystemConfig, NamedWorkload)>,
    threads: usize,
) -> Vec<NormalizedResult> {
    parallel_map_ordered(jobs, threads, |(config, workload)| run_normalized(&config, &workload))
}

/// One row of a suite-average table: a suite (or the overall `"ALL"` row),
/// its mean normalized performance, and how many per-workload results the
/// mean aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteRow {
    /// Suite label, or the stable `"ALL"` for the overall mean.
    pub label: String,
    /// Arithmetic mean of the normalized performance of the row's results.
    pub mean: f64,
    /// Number of per-workload results aggregated into the mean.
    pub count: usize,
}

impl ToJson for SuiteRow {
    fn to_json(&self) -> Json {
        obj(vec![
            ("label", Json::from(self.label.as_str())),
            ("mean", Json::Float(self.mean)),
            ("count", self.count.into()),
        ])
    }
}

/// Average normalized performance per suite plus the overall mean, from a
/// set of per-workload results (the grouped bars of Figures 12, 14-16).
///
/// The final row is always labelled `"ALL"`; the number of aggregated
/// results is reported in [`SuiteRow::count`] rather than baked into the
/// label, so downstream code can match on the label across sweeps of
/// different sizes.
///
/// Accepts anything yielding result references — a `&Vec<NormalizedResult>`
/// or the borrowed groups [`crate::scenario::results_for`] and
/// [`crate::scenario::results_where`] return — so the aggregation path is
/// by-reference end to end.
pub fn suite_averages<'a, I>(results: I) -> Vec<SuiteRow>
where
    I: IntoIterator<Item = &'a NormalizedResult>,
{
    // One workload-name → suite index map built up front, then a single
    // by-reference pass accumulating every suite's sum and count plus the
    // overall mean — no per-suite rescans of the result set and no cloning
    // of the (large) `NormalizedResult` values. Per-suite results arrive
    // in `results` order, so the floating-point accumulation order (and
    // thus the means) match the previous filter-then-average
    // implementation bit for bit.
    let suites = Suite::all();
    let suite_index: fxhash::FxHashMap<&'static str, usize> = srs_workloads::all_workloads()
        .iter()
        .filter_map(|w| suites.iter().position(|s| *s == w.suite).map(|i| (w.name, i)))
        .collect();
    let mut sums = vec![0.0f64; suites.len()];
    let mut counts = vec![0usize; suites.len()];
    let (mut all_sum, mut all_count) = (0.0f64, 0usize);
    for r in results {
        all_sum += r.normalized_performance;
        all_count += 1;
        if let Some(&i) = suite_index.get(r.workload.as_str()) {
            sums[i] += r.normalized_performance;
            counts[i] += 1;
        }
    }
    let mut rows = Vec::with_capacity(suites.len() + 1);
    for (i, suite) in suites.iter().enumerate() {
        if counts[i] > 0 {
            rows.push(SuiteRow {
                label: suite.label().to_string(),
                mean: sums[i] / counts[i] as f64,
                count: counts[i],
            });
        }
    }
    rows.push(SuiteRow {
        label: "ALL".to_string(),
        mean: if all_count == 0 { 1.0 } else { all_sum / all_count as f64 },
        count: all_count,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use srs_workloads::all_workloads;

    fn tiny(defense: DefenseKind) -> SystemConfig {
        let mut config = SystemConfig::scaled_for_speed(defense, 1200);
        config.cores = 2;
        config.core.target_instructions = 4_000;
        config.trace_records_per_core = 1_500;
        config.dram.refresh_window_ns = 500_000;
        config.max_sim_ns = 3_000_000;
        config
    }

    fn workload(name: &str) -> NamedWorkload {
        all_workloads().into_iter().find(|w| w.name == name).expect("workload exists")
    }

    #[test]
    fn normalized_baseline_is_one() {
        let result = run_normalized(&tiny(DefenseKind::Baseline), &workload("gups"));
        assert!(
            (result.normalized_performance - 1.0).abs() < 0.06,
            "norm = {}",
            result.normalized_performance
        );
    }

    #[test]
    fn normalized_defense_is_at_most_slightly_above_one() {
        let result = run_normalized(&tiny(DefenseKind::ScaleSrs), &workload("gcc"));
        assert!(result.normalized_performance <= 1.05);
        assert!(result.normalized_performance > 0.3);
    }

    #[test]
    fn parallel_runner_returns_all_jobs() {
        let jobs = vec![
            (tiny(DefenseKind::Baseline), workload("gups")),
            (tiny(DefenseKind::ScaleSrs), workload("gups")),
        ];
        let results = run_parallel(jobs, 2);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn parallel_runner_preserves_submission_order() {
        // Mix fast and slow defenses so completion order differs from
        // submission order, then check results come back as submitted.
        let names = ["gups", "gcc", "mcf", "astar"];
        let jobs: Vec<(SystemConfig, NamedWorkload)> = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let kind = if i % 2 == 0 { DefenseKind::Baseline } else { DefenseKind::ScaleSrs };
                (tiny(kind), workload(name))
            })
            .collect();
        let first = run_parallel(jobs.clone(), 4);
        let second = run_parallel(jobs, 4);
        let order: Vec<&str> = first.iter().map(|r| r.workload.as_str()).collect();
        assert_eq!(order, names.to_vec(), "results must follow submission order");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.defense, b.defense);
            assert!((a.normalized_performance - b.normalized_performance).abs() < 1e-12);
        }
    }

    #[test]
    fn streaming_events_finish_in_submission_order() {
        // Job 0 is the slowest, so every other job completes first and must
        // be buffered; the handler still sees finishes 0, 1, 2, 3, 4.
        let mut finished = Vec::new();
        let mut started = 0usize;
        parallel_for_each_ordered(
            vec![30u64, 0, 20, 0, 10],
            4,
            |sleep_ms| {
                std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
                sleep_ms
            },
            |event| match event {
                JobEvent::Started(_) => started += 1,
                JobEvent::Finished(index, value) => finished.push((index, value)),
            },
        );
        assert_eq!(started, 5);
        assert_eq!(finished, vec![(0, 30), (1, 0), (2, 20), (3, 0), (4, 10)]);
    }

    #[test]
    fn parallel_map_ordered_handles_empty_and_excess_threads() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_ordered(empty, 8, |x: u32| x).is_empty());
        let doubled = parallel_map_ordered(vec![1u32, 2, 3], 64, |x| x * 2);
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn fault_injection_parses_the_env_form() {
        assert_eq!(FaultInjection::parse("3:2"), Some(FaultInjection { cell: 3, failures: 2 }));
        assert_eq!(FaultInjection::parse(" 7 : 1 "), Some(FaultInjection { cell: 7, failures: 1 }));
        assert_eq!(FaultInjection::parse("3"), None);
        assert_eq!(FaultInjection::parse("a:b"), None);
    }

    #[test]
    fn run_isolated_retries_injected_faults_and_reports_persistent_ones() {
        let policy = RetryPolicy { max_attempts: 3, backoff_ms: 0 };
        let fault = FaultInjection { cell: 5, failures: 2 };

        // Two injected failures, then success on the third attempt.
        let ok = run_isolated(&policy, Some((&fault, &[4, 5])), || 42u32);
        assert_eq!(ok, Ok((42, 3)));

        // The unit does not cover the target cell: no injection at all.
        let ok = run_isolated(&policy, Some((&fault, &[0, 1])), || 7u32);
        assert_eq!(ok, Ok((7, 1)));

        // Persistent failure: the attempt budget is exhausted and the last
        // panic message comes back with the attempt count.
        let fault = FaultInjection { cell: 5, failures: 99 };
        let err = run_isolated(&policy, Some((&fault, &[5])), || 0u32).unwrap_err();
        assert_eq!(err.1, 3);
        assert!(err.0.contains("injected campaign fault"), "{}", err.0);
    }

    #[test]
    fn suite_averages_include_stable_overall_row() {
        let results = vec![run_normalized(&tiny(DefenseKind::Baseline), &workload("gups"))];
        let rows = suite_averages(&results);
        assert!(rows.iter().any(|row| row.label == "GUPS"));
        let all = rows.last().expect("ALL row present");
        assert_eq!(all.label, "ALL");
        assert_eq!(all.count, 1);
        assert!(all.mean > 0.0);
    }
}
