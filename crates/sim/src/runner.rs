//! Experiment runner: normalized performance, suite sweeps and parallel
//! execution of many simulations.

use crossbeam::channel;
use srs_core::DefenseKind;
use srs_workloads::{NamedWorkload, Suite};

use crate::config::SystemConfig;
use crate::metrics::{mean_normalized, NormalizedResult, SimResult};
use crate::system::System;

/// Run one workload under one configuration.
#[must_use]
pub fn run_workload(config: &SystemConfig, workload: &NamedWorkload) -> SimResult {
    let trace = workload.spec().generate(config.trace_records_per_core, config.seed);
    System::new(config.clone(), trace).run()
}

/// Run one workload under a defense and under the baseline, returning the
/// defense result normalized to the baseline (the y-axis of Figures 4, 12,
/// 14, 15 and 16).
#[must_use]
pub fn run_normalized(config: &SystemConfig, workload: &NamedWorkload) -> NormalizedResult {
    let mut baseline_config = config.clone();
    baseline_config.defense = DefenseKind::Baseline;
    let baseline = run_workload(&baseline_config, workload);
    let defended = run_workload(config, workload);
    // Normalized performance is capped at 1.0: with the dense synthetic
    // traces, Scale-SRS's LLC pinning of extremely hot rows can outweigh its
    // swap cost and beat the unprotected baseline, which the paper's real
    // traces do not exhibit (see EXPERIMENTS.md).
    let normalized = if baseline.total_ipc() > 0.0 {
        (defended.total_ipc() / baseline.total_ipc()).min(1.0)
    } else {
        1.0
    };
    NormalizedResult {
        workload: workload.name.to_string(),
        defense: defended.defense.clone(),
        t_rh: config.t_rh,
        normalized_performance: normalized,
        detail: defended,
    }
}

/// Run a set of (configuration, workload) jobs across `threads` worker
/// threads and return the normalized results in completion order.
#[must_use]
pub fn run_parallel(jobs: Vec<(SystemConfig, NamedWorkload)>, threads: usize) -> Vec<NormalizedResult> {
    let threads = threads.max(1);
    let (job_tx, job_rx) = channel::unbounded::<(SystemConfig, NamedWorkload)>();
    let (result_tx, result_rx) = channel::unbounded::<NormalizedResult>();
    let total = jobs.len();
    for job in jobs {
        job_tx.send(job).expect("queue open");
    }
    drop(job_tx);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let job_rx = job_rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                while let Ok((config, workload)) = job_rx.recv() {
                    let result = run_normalized(&config, &workload);
                    if result_tx.send(result).is_err() {
                        break;
                    }
                }
            });
        }
        drop(result_tx);
        result_rx.iter().take(total).collect()
    })
}

/// Average normalized performance per suite plus the overall mean, from a
/// set of per-workload results (the grouped bars of Figures 12, 14-16).
#[must_use]
pub fn suite_averages(results: &[NormalizedResult]) -> Vec<(String, f64)> {
    let workloads = srs_workloads::all_workloads();
    let mut rows = Vec::new();
    for suite in Suite::all() {
        let names: Vec<&str> =
            workloads.iter().filter(|w| w.suite == *suite).map(|w| w.name).collect();
        let subset: Vec<NormalizedResult> = results
            .iter()
            .filter(|r| names.contains(&r.workload.as_str()))
            .cloned()
            .collect();
        if !subset.is_empty() {
            rows.push((suite.label().to_string(), mean_normalized(&subset)));
        }
    }
    rows.push((format!("ALL-{}", results.len()), mean_normalized(results)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use srs_workloads::all_workloads;

    fn tiny(defense: DefenseKind) -> SystemConfig {
        let mut config = SystemConfig::scaled_for_speed(defense, 1200);
        config.cores = 2;
        config.core.target_instructions = 4_000;
        config.trace_records_per_core = 1_500;
        config.dram.refresh_window_ns = 500_000;
        config.max_sim_ns = 3_000_000;
        config
    }

    fn workload(name: &str) -> NamedWorkload {
        all_workloads().into_iter().find(|w| w.name == name).expect("workload exists")
    }

    #[test]
    fn normalized_baseline_is_one() {
        let result = run_normalized(&tiny(DefenseKind::Baseline), &workload("gups"));
        assert!((result.normalized_performance - 1.0).abs() < 0.06, "norm = {}", result.normalized_performance);
    }

    #[test]
    fn normalized_defense_is_at_most_slightly_above_one() {
        let result = run_normalized(&tiny(DefenseKind::ScaleSrs), &workload("gcc"));
        assert!(result.normalized_performance <= 1.05);
        assert!(result.normalized_performance > 0.3);
    }

    #[test]
    fn parallel_runner_returns_all_jobs() {
        let jobs = vec![
            (tiny(DefenseKind::Baseline), workload("gups")),
            (tiny(DefenseKind::ScaleSrs), workload("gups")),
        ];
        let results = run_parallel(jobs, 2);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn suite_averages_include_overall_row() {
        let results = vec![run_normalized(&tiny(DefenseKind::Baseline), &workload("gups"))];
        let rows = suite_averages(&results);
        assert!(rows.iter().any(|(label, _)| label == "GUPS"));
        assert!(rows.iter().any(|(label, _)| label.starts_with("ALL-")));
    }
}
