//! The sharing-aware grid executor: amortize the common simulation prefix
//! of grid cells that differ only in their mitigation axes.
//!
//! Every paper-style grid sweeps defenses, trackers and Row Hammer
//! thresholds over the same workloads. Until its first mitigation feeds
//! back into the memory system — a swap, a pin, a Hydra counter-table
//! access — a cell's simulation is bit-identical to an undefended run of
//! the same workload: the tracker is a pure observer, the defense's row
//! indirection is still the identity, and its timed lazy work has nothing
//! to do. The executor exploits that equivalence as a *prefix tree*: one
//! **trunk** run per (workload, cores, seed, geometry) group executes the
//! shared prefix, and each branch cell forks off at the exact tick its
//! own mitigation first acts.
//!
//! Execution is two passes over the trunk:
//!
//! 1. **Discovery** — the trunk runs to completion with every branch's
//!    (tracker, defense) attached as a passive
//!    [`crate::system::MitigationProbe`]; each probe records the tick of
//!    its first feedback decision. The trunk itself is the group's
//!    undefended baseline, so this pass also produces the normalization
//!    baseline every cell needs.
//! 2. **Fork** — if any probe fired, the trunk is re-run (deterministic
//!    replay) up to the last recorded divergence tick; at each branch's
//!    tick the system is snapshotted *before* the tick executes and the
//!    branch resumes from the snapshot with its own tracker and defense
//!    installed — replaying that tick with the mitigation live, exactly
//!    as its from-scratch run would have. Branches whose probe never
//!    fired are the trunk result relabelled: their whole run provably
//!    never differed from the trunk.
//!
//! The protocol is gated end-to-end by equivalence tests
//! (`tests/fork_equivalence.rs`): a shared grid must be bit-identical —
//! `SimResult` and `SecurityReport` included — to the unshared path.
//!
//! Cells carrying an attack scenario never share: the closed-loop
//! attacker's behaviour depends on the defense's swap threshold from the
//! first issued read, so there is no common prefix across the mitigation
//! axes to begin with.

use srs_core::{build_defense, DefenseKind};
use srs_trackers::TrackerKind;
use srs_workloads::NamedWorkload;

use crate::config::SystemConfig;
use crate::metrics::SimResult;
use crate::runner::normalize_against;
use crate::scenario::{Scenario, ScenarioResult};
use crate::system::{build_tracker, MitigationProbe, NullTracker, System};

/// One grid cell participating in a shared-prefix group.
#[derive(Clone)]
pub(crate) struct SharedCell {
    /// Submission index of the cell in the grid.
    pub(crate) index: usize,
    /// The cell's scenario descriptor.
    pub(crate) scenario: Scenario,
    /// The cell's full configuration.
    pub(crate) config: SystemConfig,
}

/// The group key: a cell's configuration with every mitigation axis
/// neutralized. Two benign cells whose neutral keys (and workloads) are
/// equal differ *only* in defense, threshold, tracker or swap rate — the
/// axes the prefix tree branches on — and may share a trunk.
pub(crate) fn neutral_key(config: &SystemConfig) -> SystemConfig {
    let mut key = config.clone();
    key.defense = DefenseKind::Baseline;
    key.t_rh = 0;
    key.tracker = TrackerKind::default();
    key.swap_rate = None;
    key
}

/// Deduplicating push: the index of `config` in `configs`, appending it if
/// new.
fn intern(configs: &mut Vec<SystemConfig>, config: SystemConfig) -> usize {
    configs.iter().position(|c| *c == config).unwrap_or_else(|| {
        configs.push(config);
        configs.len() - 1
    })
}

/// Build the trunk system for a group plus probes for the requested
/// branches; returns the system and, per branch, the probe index (`None`
/// for branches that provably never diverge and need no probe).
fn build_trunk(
    trunk_config: &SystemConfig,
    trace: &srs_workloads::Trace,
    branch_configs: &[SystemConfig],
    wanted: impl Fn(usize) -> bool,
) -> (System, Vec<Option<usize>>) {
    let mut trunk = System::new(trunk_config.clone(), trace.clone());
    trunk.set_tracker(Box::new(NullTracker));
    let mut probe_of = vec![None; branch_configs.len()];
    for (b, config) in branch_configs.iter().enumerate() {
        if !wanted(b) {
            continue;
        }
        let tracker = build_tracker(config);
        let acts_on_mitigate = config.defense != DefenseKind::Baseline;
        if !acts_on_mitigate && !tracker.may_emit_memory_traffic() {
            // A baseline cell with an SRAM-only tracker has no feedback
            // channel at all: the branch equals the trunk for the whole
            // run, so it needs no probe (and no fork).
            continue;
        }
        let defense = build_defense(config.defense, config.mitigation_config());
        probe_of[b] = Some(trunk.attach_probe(MitigationProbe {
            tracker,
            defense,
            acts_on_mitigate,
            fired_at: None,
        }));
    }
    (trunk, probe_of)
}

/// Execute one shared-prefix group and return every member cell's result,
/// keyed by its grid submission index.
///
/// # Panics
///
/// Panics if the deterministic replay of pass 2 fails to revisit a
/// divergence tick recorded by pass 1 — which would mean the trunk is not
/// a faithful prefix of some branch, a protocol violation.
pub(crate) fn run_shared_group(
    cells: &[SharedCell],
    workload: &NamedWorkload,
) -> Vec<(usize, ScenarioResult)> {
    let cfg0 = &cells[0].config;
    let trace = workload.spec().generate(cfg0.trace_records_per_core, cfg0.seed);

    // The branch set: each cell's own configuration plus the baseline
    // configuration it normalizes against, interned so equal
    // configurations (e.g. a baseline cell and another cell's baseline)
    // simulate once.
    let mut branch_configs: Vec<SystemConfig> = Vec::new();
    let mut cell_branch = Vec::with_capacity(cells.len());
    let mut cell_baseline = Vec::with_capacity(cells.len());
    for cell in cells {
        cell_branch.push(intern(&mut branch_configs, cell.config.clone()));
        let mut baseline = cell.config.clone();
        baseline.defense = DefenseKind::Baseline;
        cell_baseline.push(intern(&mut branch_configs, baseline));
    }

    let mut trunk_config = cfg0.clone();
    trunk_config.defense = DefenseKind::Baseline;

    // Pass 1: run the trunk to completion with every branch probing for
    // its divergence tick. The trunk result doubles as the group's
    // undefended baseline.
    let (mut trunk, probe_of) = build_trunk(&trunk_config, &trace, &branch_configs, |_| true);
    while !trunk.engine_done() {
        trunk.engine_step(true);
    }
    let fired: Vec<Option<u64>> =
        probe_of.iter().map(|p| p.and_then(|i| trunk.probe_fired_at(i))).collect();
    let trunk_result = trunk.into_result();

    // Pass 2: deterministic replay, forking each diverging branch from the
    // state at the start of its recorded divergence tick.
    let mut branch_results: Vec<Option<SimResult>> = vec![None; branch_configs.len()];
    let mut schedule: Vec<(u64, usize)> =
        (0..branch_configs.len()).filter_map(|b| fired[b].map(|t| (t, b))).collect();
    schedule.sort_unstable();
    if !schedule.is_empty() {
        let diverging: Vec<bool> = fired.iter().map(Option::is_some).collect();
        let (mut replay, probe_of) =
            build_trunk(&trunk_config, &trace, &branch_configs, |b| diverging[b]);
        let mut next = 0;
        loop {
            let now = replay.now_ns();
            while next < schedule.len() && schedule[next].0 == now {
                let b = schedule[next].1;
                // Invariant: the schedule only records branches that were
                // given a probe by `build_trunk`.
                #[allow(clippy::expect_used)]
                let probe = replay.take_probe(probe_of[b].expect("diverging branch has a probe"));
                let fork = replay.fork_with_mitigation(
                    branch_configs[b].clone(),
                    probe.tracker,
                    probe.defense,
                );
                branch_results[b] = Some(fork.run());
                next += 1;
            }
            if next >= schedule.len() {
                break;
            }
            assert!(
                now < schedule[next].0 && !replay.engine_done(),
                "shared-prefix replay missed a recorded divergence tick \
                 (replay at {now}, expected {})",
                schedule[next].0
            );
            replay.engine_step(true);
        }
    }

    // Branches that never diverged are the trunk run under a different
    // label: same trajectory, zero swaps, their own defense name and TRH.
    for (b, config) in branch_configs.iter().enumerate() {
        if branch_results[b].is_none() {
            let mut result = trunk_result.clone();
            result.defense = config.defense.to_string();
            result.t_rh = config.t_rh;
            branch_results[b] = Some(result);
        }
    }

    cells
        .iter()
        .enumerate()
        .map(|(c, cell)| {
            // Invariant: the loop above fills every never-diverged slot, so
            // by here each branch index resolved to a result.
            #[allow(clippy::expect_used)]
            let defended =
                branch_results[cell_branch[c]].clone().expect("every branch has a result");
            #[allow(clippy::expect_used)]
            let baseline_ipc = branch_results[cell_baseline[c]]
                .as_ref()
                .expect("every baseline branch has a result")
                .total_ipc();
            let result = normalize_against(defended, baseline_ipc, cell.config.t_rh);
            (cell.index, ScenarioResult { scenario: cell.scenario.clone(), result })
        })
        .collect()
}
