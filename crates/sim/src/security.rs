//! The security-metrics layer: Row Hammer pressure observed in-simulator.
//!
//! When a run carries an [`srs_attack::AttackSpec`], the simulator feeds
//! every row activation (demand *and* maintenance) into a
//! [`SecurityTracker`], which maintains per-physical-row *disturbance
//! pressure*: each `ACT` on a row disturbs its two physical neighbors, so a
//! row's pressure within one refresh window is the number of activations
//! its neighbors received — the quantity the Row Hammer threshold `TRH` is
//! defined over. This is the simulated counterpart of the analytical
//! models in `srs_attack`: maintenance activations at a swapped row's home
//! location show up here as *latent* pressure, exactly the harvest the
//! Juggernaut attack lives on.
//!
//! The tracker reports a [`SecurityReport`] on the run's
//! [`crate::metrics::SimResult`]: maximum per-victim-row pressure in any
//! window, the time of the first TRH crossing, how much of the pressure
//! was latent (mitigation-issued), and the defense's swap rate under
//! attack.

use fxhash::FxHashMap;
use serde::{Deserialize, Serialize};
use srs_dram::ActivationEvent;

use crate::faults::FaultInjector;
use crate::json::{obj, Json, ToJson};

/// Disturbance accumulated by one physical row inside the current refresh
/// window.
#[derive(Debug, Clone, Copy, Default)]
struct RowPressure {
    total: u64,
    latent: u64,
}

/// Streaming accumulator of Row Hammer disturbance pressure.
#[derive(Debug, Clone)]
pub struct SecurityTracker {
    t_rh: u64,
    rows_per_bank: u64,
    /// Per-bank map from physical row to its pressure this window.
    pressure: Vec<FxHashMap<u64, RowPressure>>,
    max_pressure: u64,
    /// Simulated time the all-time pressure maximum was (first) reached:
    /// the closest approach to the threshold for never-crossing runs.
    max_pressure_at_ns: Option<u64>,
    latent_on_hottest: u64,
    latent_total: u64,
    first_crossing_ns: Option<u64>,
    first_crossing_row: Option<(usize, u64)>,
}

impl SecurityTracker {
    /// A tracker for a geometry of `banks` banks of `rows_per_bank` rows
    /// defended to threshold `t_rh`.
    #[must_use]
    pub fn new(t_rh: u64, rows_per_bank: u64, banks: usize) -> Self {
        Self {
            t_rh: t_rh.max(1),
            rows_per_bank,
            pressure: vec![FxHashMap::default(); banks],
            max_pressure: 0,
            max_pressure_at_ns: None,
            latent_on_hottest: 0,
            latent_total: 0,
            first_crossing_ns: None,
            first_crossing_row: None,
        }
    }

    /// Feed one activation: the activated physical row disturbs its two
    /// physical neighbors.
    ///
    /// Counter-table accesses are excluded: the per-row swap-tracking and
    /// Hydra counter rows live in a reserved region whose neighbors hold no
    /// data (the paper's analyses likewise never charge counter traffic as
    /// Row Hammer disturbance). Every row-*movement* activation — the
    /// latent-activation channel Juggernaut harvests — is charged.
    ///
    /// When a [`FaultInjector`] rides along, each neighbor's updated
    /// pressure is fed to it so over-threshold disturbance turns into
    /// concrete bit flips (pending until the end of the tick, where the
    /// defense's row mapping attributes them to logical rows).
    pub fn on_activation(
        &mut self,
        event: &ActivationEvent,
        mut faults: Option<&mut FaultInjector>,
    ) {
        if event.maintenance_kind == Some(srs_dram::MaintenanceKind::CounterAccess) {
            return;
        }
        let bank = event.bank.index();
        let row = event.row % self.rows_per_bank.max(1);
        let lo = row.checked_sub(1);
        let hi = (row + 1 < self.rows_per_bank).then_some(row + 1);
        for neighbor in lo.into_iter().chain(hi) {
            let p = self.pressure[bank].entry(neighbor).or_default();
            p.total += 1;
            if event.maintenance {
                p.latent += 1;
                self.latent_total += 1;
            }
            if let Some(f) = faults.as_deref_mut() {
                f.on_disturb(bank, neighbor, p.total, event.at_ns);
            }
            if p.total > self.max_pressure {
                self.max_pressure = p.total;
                self.max_pressure_at_ns = Some(event.at_ns);
                self.latent_on_hottest = p.latent;
            }
            if p.total >= self.t_rh && self.first_crossing_ns.is_none() {
                self.first_crossing_ns = Some(event.at_ns);
                self.first_crossing_row = Some((bank, neighbor));
            }
        }
    }

    /// A refresh-window boundary passed: every row is refreshed, so window
    /// pressure resets (the all-time maxima and the crossing latch remain).
    pub fn on_window_rollover(&mut self) {
        for shard in &mut self.pressure {
            shard.clear();
        }
    }

    /// Whether any row's window pressure has reached `TRH`.
    #[must_use]
    pub fn crossed(&self) -> bool {
        self.first_crossing_ns.is_some()
    }

    /// Largest per-row pressure seen in any window so far.
    #[must_use]
    pub fn max_pressure(&self) -> u64 {
        self.max_pressure
    }

    /// Fold the tracker into a report.
    #[must_use]
    pub fn into_report(self, context: ReportContext) -> SecurityReport {
        let windows =
            (context.elapsed_ns as f64 / context.refresh_window_ns.max(1) as f64).max(1.0);
        SecurityReport {
            attack: context.attack,
            attacker_cores: context.attacker_cores,
            t_rh: self.t_rh,
            max_victim_pressure: self.max_pressure,
            latent_on_hottest_row: self.latent_on_hottest,
            latent_activations: self.latent_total,
            trh_crossed: self.first_crossing_ns.is_some(),
            first_crossing_ns: self.first_crossing_ns,
            first_crossing_row: self.first_crossing_row,
            unswap_swaps: context.unswap_swaps,
            swaps_per_window: context.swaps as f64 / windows,
            attacker_reads: context.attacker_reads,
            mitigations_observed: context.mitigations_observed,
            latency_spikes: context.latency_spikes,
            guesses_made: context.guesses_made,
            saturation_events: context.saturation_events,
            closest_approach_ratio: self.max_pressure as f64 / self.t_rh as f64,
            closest_approach_ns: self.max_pressure_at_ns,
        }
    }
}

/// Run-level context folded into a [`SecurityReport`] alongside the
/// tracker's own counters.
#[derive(Debug, Clone)]
pub struct ReportContext {
    /// Attack name (the grid axis label).
    pub attack: String,
    /// Number of attacker cores in the run.
    pub attacker_cores: usize,
    /// Simulated time of the run.
    pub elapsed_ns: u64,
    /// Refresh-window length of the run.
    pub refresh_window_ns: u64,
    /// Swaps the defense performed.
    pub swaps: u64,
    /// Unswap-swap operations the defense performed (RRS only).
    pub unswap_swaps: u64,
    /// Reads issued by attacker cores.
    pub attacker_reads: u64,
    /// Mitigation operations the attackers observed.
    pub mitigations_observed: u64,
    /// Swap-latency spikes the attackers detected on their own reads.
    pub latency_spikes: u64,
    /// Random-guess rows hammered by the attackers.
    pub guesses_made: u64,
    /// Capacity-limit events in the defense and tracker (RIT-full swap
    /// skips, tracker table spillover).
    pub saturation_events: u64,
}

/// Security metrics of one attacked simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecurityReport {
    /// Attack name.
    pub attack: String,
    /// Number of attacker cores.
    pub attacker_cores: usize,
    /// Row Hammer threshold the run was evaluated against.
    pub t_rh: u64,
    /// Largest per-victim-row disturbance pressure in any refresh window.
    pub max_victim_pressure: u64,
    /// How much of the hottest row's pressure was mitigation-issued (the
    /// latent activations harvested from unswap-swap pairs).
    pub latent_on_hottest_row: u64,
    /// Total mitigation-issued disturbance across all rows.
    pub latent_activations: u64,
    /// Whether any row's window pressure reached `TRH`.
    pub trh_crossed: bool,
    /// Simulated time of the first TRH crossing, if any.
    pub first_crossing_ns: Option<u64>,
    /// The (bank, physical row) that first crossed, if any.
    pub first_crossing_row: Option<(usize, u64)>,
    /// Unswap-swap operations the defense performed (RRS only).
    pub unswap_swaps: u64,
    /// Defense swaps per refresh window of simulated time.
    pub swaps_per_window: f64,
    /// Reads issued by the attacker cores.
    pub attacker_reads: u64,
    /// Mitigation operations observed by the attackers (their feedback
    /// channel).
    pub mitigations_observed: u64,
    /// Swap-latency spikes the attackers detected.
    pub latency_spikes: u64,
    /// Random-guess rows hammered in Juggernaut's phase 2.
    pub guesses_made: u64,
    /// Times the defense or tracker hit a capacity limit and took its
    /// documented degraded path (RIT-full swap skip, Misra-Gries
    /// spillover, Hydra row-count-cache eviction) instead of panicking or
    /// silently wrapping. A nonzero value means the security verdict was
    /// reached under capacity pressure — the saturation contract makes
    /// that visible rather than weakening the verdict silently.
    pub saturation_events: u64,
    /// Closest approach to the threshold: `max_victim_pressure / t_rh`
    /// (`>= 1.0` iff the run crossed). This is the search subsystem's
    /// fitness tiebreak for candidates that never cross.
    pub closest_approach_ratio: f64,
    /// Simulated time the pressure maximum was first reached, if any
    /// activation was observed.
    pub closest_approach_ns: Option<u64>,
}

impl ToJson for SecurityReport {
    fn to_json(&self) -> Json {
        obj(vec![
            ("attack", Json::from(self.attack.as_str())),
            ("attacker_cores", self.attacker_cores.into()),
            ("t_rh", self.t_rh.into()),
            ("max_victim_pressure", self.max_victim_pressure.into()),
            ("latent_on_hottest_row", self.latent_on_hottest_row.into()),
            ("latent_activations", self.latent_activations.into()),
            ("trh_crossed", self.trh_crossed.into()),
            ("first_crossing_ns", self.first_crossing_ns.into()),
            (
                "first_crossing_row",
                self.first_crossing_row
                    .map_or(Json::Null, |(bank, row)| Json::Array(vec![bank.into(), row.into()])),
            ),
            ("unswap_swaps", self.unswap_swaps.into()),
            ("swaps_per_window", self.swaps_per_window.into()),
            ("attacker_reads", self.attacker_reads.into()),
            ("mitigations_observed", self.mitigations_observed.into()),
            ("latency_spikes", self.latency_spikes.into()),
            ("guesses_made", self.guesses_made.into()),
            ("saturation_events", self.saturation_events.into()),
            ("closest_approach_ratio", self.closest_approach_ratio.into()),
            ("closest_approach_ns", self.closest_approach_ns.into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srs_dram::BankId;

    fn act(bank: usize, row: u64, maintenance: bool, at_ns: u64) -> ActivationEvent {
        ActivationEvent {
            bank: BankId::new(bank),
            row,
            logical_row: row,
            at_ns,
            maintenance,
            maintenance_kind: maintenance.then_some(srs_dram::MaintenanceKind::Swap),
        }
    }

    fn context() -> ReportContext {
        ReportContext {
            attack: "test".to_string(),
            attacker_cores: 1,
            elapsed_ns: 1_000_000,
            refresh_window_ns: 500_000,
            swaps: 6,
            unswap_swaps: 2,
            attacker_reads: 100,
            mitigations_observed: 6,
            latency_spikes: 3,
            guesses_made: 0,
            saturation_events: 0,
        }
    }

    #[test]
    fn activations_pressure_both_neighbors() {
        let mut t = SecurityTracker::new(10, 1 << 10, 2);
        t.on_activation(&act(0, 5, false, 100), None);
        t.on_activation(&act(0, 5, false, 200), None);
        assert_eq!(t.max_pressure(), 2, "rows 4 and 6 each carry two disturbances");
        assert!(!t.crossed());
    }

    #[test]
    fn edge_rows_have_one_neighbor() {
        let mut t = SecurityTracker::new(10, 4, 1);
        t.on_activation(&act(0, 0, false, 1), None); // only row 1 disturbed
        t.on_activation(&act(0, 3, false, 2), None); // only row 2 disturbed
        assert_eq!(t.max_pressure(), 1);
    }

    #[test]
    fn crossing_latches_time_and_row() {
        let mut t = SecurityTracker::new(3, 1 << 10, 1);
        for i in 0..3 {
            t.on_activation(&act(0, 8, false, 100 * (i + 1)), None);
        }
        assert!(t.crossed());
        let report = t.into_report(context());
        assert_eq!(report.first_crossing_ns, Some(300));
        assert_eq!(report.first_crossing_row, Some((0, 7)));
        assert!(report.trh_crossed);
        assert!((report.swaps_per_window - 3.0).abs() < 1e-12);
    }

    #[test]
    fn window_rollover_resets_pressure_but_keeps_maxima() {
        let mut t = SecurityTracker::new(100, 1 << 10, 1);
        for i in 0..5 {
            t.on_activation(&act(0, 8, false, i), None);
        }
        assert_eq!(t.max_pressure(), 5);
        t.on_window_rollover();
        t.on_activation(&act(0, 8, false, 1_000), None);
        assert_eq!(t.max_pressure(), 5, "all-time maximum survives the rollover");
        assert!(!t.crossed());
    }

    #[test]
    fn counter_accesses_carry_no_disturbance() {
        let mut t = SecurityTracker::new(3, 1 << 10, 1);
        for i in 0..10 {
            t.on_activation(
                &ActivationEvent {
                    bank: BankId::new(0),
                    row: 8,
                    logical_row: 8,
                    at_ns: i,
                    maintenance: true,
                    maintenance_kind: Some(srs_dram::MaintenanceKind::CounterAccess),
                },
                None,
            );
        }
        assert_eq!(t.max_pressure(), 0, "counter rows live in a reserved region");
        assert!(!t.crossed());
    }

    #[test]
    fn closest_approach_tracks_the_pressure_maximum() {
        let mut t = SecurityTracker::new(100, 1 << 10, 1);
        for i in 0..5 {
            t.on_activation(&act(0, 8, false, 10 * (i + 1)), None);
        }
        t.on_window_rollover();
        // A weaker second window must not move the recorded approach.
        t.on_activation(&act(0, 8, false, 900), None);
        let report = t.into_report(context());
        assert_eq!(report.closest_approach_ns, Some(50), "time the all-time max was reached");
        assert!((report.closest_approach_ratio - 0.05).abs() < 1e-12, "5 of TRH 100");
        assert!(!report.trh_crossed);
    }

    #[test]
    fn latent_pressure_is_separated() {
        let mut t = SecurityTracker::new(100, 1 << 10, 1);
        t.on_activation(&act(0, 8, false, 1), None);
        t.on_activation(&act(0, 8, true, 2), None);
        t.on_activation(&act(0, 8, true, 3), None);
        let report = t.into_report(context());
        assert_eq!(report.max_victim_pressure, 3);
        assert_eq!(report.latent_on_hottest_row, 2);
        assert_eq!(report.latent_activations, 4, "two latent acts disturb two neighbors each");
    }
}
