//! The declarative, serializable experiment contract.
//!
//! An [`ExperimentSpec`] is the data form of an [`Experiment`]: every axis
//! is named through a registry (defenses, trackers, workload selectors,
//! attack patterns, config presets) and the base configuration is a
//! [`Preset`] plus a typed [`ConfigPatch`] of overrides, so a whole sweep —
//! including the paper's figure grids — can be written to a JSON file,
//! shipped, diffed and re-run with zero recompilation (`srs-cli run
//! spec.json`). [`ExperimentSpec::to_experiment`] resolves the names and
//! yields the exact same grid the builder API produces.
//!
//! Unknown names never panic: resolution returns a [`SpecError`] that lists
//! the valid names for the offending registry.
//!
//! ```
//! use srs_sim::spec::ExperimentSpec;
//!
//! let spec = ExperimentSpec::parse(
//!     r#"{
//!         "name": "tiny",
//!         "preset": "scaled_for_speed",
//!         "patch": {"cores": 1, "target_instructions": 2000,
//!                   "trace_records_per_core": 1000, "max_sim_ns": 2000000},
//!         "defenses": ["baseline", "scale-srs"],
//!         "workloads": ["suite:gups"]
//!     }"#,
//! )
//! .unwrap();
//! let experiment = spec.to_experiment().unwrap();
//! assert_eq!(experiment.job_count(), 2);
//! ```

use srs_attack::engine::shipped_patterns;
use srs_attack::AttackSpec;
use srs_core::DefenseKind;
use srs_dram::PagePolicy;
use srs_trackers::TrackerKind;
use srs_workloads::{all_workloads, hot_row_workloads, workloads_in, NamedWorkload, Suite};

use crate::config::SystemConfig;
use crate::faults::FaultsConfig;
use crate::json::{obj, Json, JsonError, ToJson};
use crate::scenario::Experiment;
use crate::telemetry::TelemetryConfig;

/// A named base-configuration recipe (the registry behind the old
/// `ConfigFn` escape hatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preset {
    /// The paper's full-size Table III configuration
    /// ([`SystemConfig::paper_default`]).
    Paper,
    /// The scaled-down configuration tests and quick benchmark sweeps use
    /// ([`SystemConfig::scaled_for_speed`]).
    #[default]
    ScaledForSpeed,
}

impl Preset {
    /// The registry name of this preset.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Preset::Paper => "paper",
            Preset::ScaledForSpeed => "scaled_for_speed",
        }
    }

    /// The base configuration this preset builds for one grid cell.
    #[must_use]
    pub fn base_config(self, defense: DefenseKind, t_rh: u64) -> SystemConfig {
        match self {
            Preset::Paper => SystemConfig::paper_default(defense, t_rh),
            Preset::ScaledForSpeed => SystemConfig::scaled_for_speed(defense, t_rh),
        }
    }
}

impl std::fmt::Display for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Typed overrides applied on top of a [`Preset`]'s base configuration —
/// the serializable replacement for the `ConfigFn` function pointer. Every
/// field is optional; `None` keeps the preset's value.
///
/// Axis values swept by the grid ([`crate::scenario::Scenario::cores`],
/// [`crate::scenario::Scenario::seed`]) are applied *after* the patch, so an
/// explicit `core_counts`/`seeds` sweep wins over a patched value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConfigPatch {
    /// Number of cores.
    pub cores: Option<usize>,
    /// Instructions each core retires before reporting finished.
    pub target_instructions: Option<u64>,
    /// Maximum reads a core keeps outstanding.
    pub max_outstanding_misses: Option<usize>,
    /// Trace records generated per core.
    pub trace_records_per_core: Option<usize>,
    /// Refresh-window length in nanoseconds.
    pub refresh_window_ns: Option<u64>,
    /// Hard cap on simulated time in nanoseconds.
    pub max_sim_ns: Option<u64>,
    /// Workload/defense randomness seed.
    pub seed: Option<u64>,
    /// Swap-rate override (`TRH / TS`).
    pub swap_rate: Option<u64>,
    /// Latency of an access served from a pinned LLC row, in nanoseconds.
    pub llc_hit_latency_ns: Option<u64>,
    /// Capacity of each per-bank transaction queue.
    pub queue_capacity: Option<usize>,
    /// Rows per DRAM bank.
    pub rows_per_bank: Option<u64>,
    /// Banks per rank.
    pub banks_per_rank: Option<usize>,
    /// Row-buffer management policy.
    pub page_policy: Option<PagePolicy>,
}

impl ConfigPatch {
    /// Whether the patch overrides anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Apply every set override to `config`.
    pub fn apply(&self, config: &mut SystemConfig) {
        if let Some(cores) = self.cores {
            config.cores = cores;
        }
        if let Some(instructions) = self.target_instructions {
            config.core.target_instructions = instructions;
        }
        if let Some(misses) = self.max_outstanding_misses {
            config.core.max_outstanding_misses = misses;
        }
        if let Some(records) = self.trace_records_per_core {
            config.trace_records_per_core = records;
        }
        if let Some(window) = self.refresh_window_ns {
            config.dram.refresh_window_ns = window;
        }
        if let Some(cap) = self.max_sim_ns {
            config.max_sim_ns = cap;
        }
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        if let Some(rate) = self.swap_rate {
            config.swap_rate = Some(rate);
        }
        if let Some(latency) = self.llc_hit_latency_ns {
            config.llc_hit_latency_ns = latency;
        }
        if let Some(capacity) = self.queue_capacity {
            config.dram.queue_capacity = capacity;
        }
        if let Some(rows) = self.rows_per_bank {
            config.dram.rows_per_bank = rows;
        }
        if let Some(banks) = self.banks_per_rank {
            config.dram.banks_per_rank = banks;
        }
        if let Some(policy) = self.page_policy {
            config.dram.page_policy = policy;
        }
    }

    /// Decode a patch from its JSON object form; unknown keys are errors.
    pub fn from_json(json: &Json) -> Result<Self, SpecError> {
        let pairs = json
            .as_object()
            .ok_or_else(|| SpecError::field("patch", "must be an object of overrides"))?;
        let mut patch = Self::default();
        for (key, value) in pairs {
            let field = || format!("patch.{key}");
            match key.as_str() {
                "cores" => patch.cores = Some(usize_field(&field(), value)?),
                "target_instructions" => {
                    patch.target_instructions = Some(u64_field(&field(), value)?);
                }
                "max_outstanding_misses" => {
                    patch.max_outstanding_misses = Some(usize_field(&field(), value)?);
                }
                "trace_records_per_core" => {
                    patch.trace_records_per_core = Some(usize_field(&field(), value)?);
                }
                "refresh_window_ns" => patch.refresh_window_ns = Some(u64_field(&field(), value)?),
                "max_sim_ns" => patch.max_sim_ns = Some(u64_field(&field(), value)?),
                "seed" => patch.seed = Some(u64_field(&field(), value)?),
                "swap_rate" => patch.swap_rate = Some(u64_field(&field(), value)?),
                "llc_hit_latency_ns" => {
                    patch.llc_hit_latency_ns = Some(u64_field(&field(), value)?);
                }
                "queue_capacity" => patch.queue_capacity = Some(usize_field(&field(), value)?),
                "rows_per_bank" => patch.rows_per_bank = Some(u64_field(&field(), value)?),
                "banks_per_rank" => patch.banks_per_rank = Some(usize_field(&field(), value)?),
                "page_policy" => {
                    let name = value
                        .as_str()
                        .ok_or_else(|| SpecError::field(field(), "must be a string"))?;
                    patch.page_policy = Some(parse_page_policy(name)?);
                }
                _ => {
                    return Err(SpecError::UnknownName {
                        field: "patch",
                        name: key.clone(),
                        valid: PATCH_KEYS.iter().map(ToString::to_string).collect(),
                    });
                }
            }
        }
        Ok(patch)
    }
}

/// The patch keys [`ConfigPatch::from_json`] accepts, in encode order.
const PATCH_KEYS: &[&str] = &[
    "cores",
    "target_instructions",
    "max_outstanding_misses",
    "trace_records_per_core",
    "refresh_window_ns",
    "max_sim_ns",
    "seed",
    "swap_rate",
    "llc_hit_latency_ns",
    "queue_capacity",
    "rows_per_bank",
    "banks_per_rank",
    "page_policy",
];

impl ToJson for ConfigPatch {
    /// Encode only the set overrides, in [`PATCH_KEYS`] order.
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        let mut push = |key: &str, value: Option<Json>| {
            if let Some(value) = value {
                pairs.push((key.to_string(), value));
            }
        };
        push("cores", self.cores.map(Json::from));
        push("target_instructions", self.target_instructions.map(Json::from));
        push("max_outstanding_misses", self.max_outstanding_misses.map(Json::from));
        push("trace_records_per_core", self.trace_records_per_core.map(Json::from));
        push("refresh_window_ns", self.refresh_window_ns.map(Json::from));
        push("max_sim_ns", self.max_sim_ns.map(Json::from));
        push("seed", self.seed.map(Json::from));
        push("swap_rate", self.swap_rate.map(Json::from));
        push("llc_hit_latency_ns", self.llc_hit_latency_ns.map(Json::from));
        push("queue_capacity", self.queue_capacity.map(Json::from));
        push("rows_per_bank", self.rows_per_bank.map(Json::from));
        push("banks_per_rank", self.banks_per_rank.map(Json::from));
        push("page_policy", self.page_policy.map(|p| Json::from(page_policy_name(p))));
        Json::Object(pairs)
    }
}

/// A fully serializable experiment: named registry entries on every axis
/// plus a preset-and-patch base configuration. The JSON form is the
/// `srs-cli run` input format; every field except `name` may be omitted, in
/// which case the [`Experiment::new`] defaults apply.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Human-readable name of the experiment (reports and file stems).
    pub name: String,
    /// Base-configuration preset.
    pub preset: Preset,
    /// Overrides applied on top of the preset.
    pub patch: ConfigPatch,
    /// Defense registry names to sweep (see [`defense_names`]).
    pub defenses: Vec<String>,
    /// Tracker registry names to sweep (see [`tracker_names`]).
    pub trackers: Vec<String>,
    /// Row Hammer thresholds to sweep.
    pub thresholds: Vec<u64>,
    /// Core-count axis (empty keeps the base configuration's count).
    pub core_counts: Vec<usize>,
    /// Seed axis (empty keeps the base configuration's seed).
    pub seeds: Vec<u64>,
    /// Attack registry names to sweep (empty runs benign cells only; see
    /// [`attack_names`]).
    pub attacks: Vec<String>,
    /// Workload selectors: workload names, `suite:<name>`, `hot-rows` or
    /// `all` (see [`resolve_workloads`]).
    pub workloads: Vec<String>,
    /// Worker-thread budget; `None` uses the engine default.
    pub threads: Option<usize>,
    /// Sharing-aware execution: benign cells differing only in their
    /// mitigation axes execute their common simulation prefix once and
    /// fork at each cell's first mitigation feedback (bit-identical to the
    /// unshared plan, just faster). Defaults to `true`; `srs-cli run
    /// --no-share` (or `"share_prefixes": false`) forces the from-scratch
    /// plan.
    pub share_prefixes: bool,
    /// Telemetry configuration applied to every cell, or `None` to leave
    /// the recorder disarmed. Arming it never changes results — the results
    /// JSONL stream is byte-identical either way (see [`crate::telemetry`]).
    pub telemetry: Option<TelemetryConfig>,
    /// Fault-model configuration applied to every cell, or `None` to leave
    /// the end-to-end bit-flip/ECC model off. Only attacked cells ever
    /// build an injector; the model is purely observational either way.
    pub faults: Option<FaultsConfig>,
    /// Adaptive attack-search budget and operator rates, or `None` when the
    /// spec is a plain grid campaign. Consumed by `srs-cli search` (see
    /// [`crate::search`]); ignored by `run`.
    pub search: Option<SearchSpec>,
}

impl Default for ExperimentSpec {
    /// Mirrors [`Experiment::new`]: Scale-SRS, Misra-Gries, TRH 1200, every
    /// workload, the scaled-for-speed preset, no patch.
    fn default() -> Self {
        Self {
            name: "unnamed".to_string(),
            preset: Preset::ScaledForSpeed,
            patch: ConfigPatch::default(),
            defenses: vec!["scale-srs".to_string()],
            trackers: vec!["misra-gries".to_string()],
            thresholds: vec![1200],
            core_counts: Vec::new(),
            seeds: Vec::new(),
            attacks: Vec::new(),
            workloads: vec!["all".to_string()],
            threads: None,
            share_prefixes: true,
            telemetry: None,
            faults: None,
            search: None,
        }
    }
}

impl ExperimentSpec {
    /// Parse a spec from its JSON text form.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Decode a spec from a parsed JSON document; unknown keys are errors.
    pub fn from_json(json: &Json) -> Result<Self, SpecError> {
        let pairs = json
            .as_object()
            .ok_or_else(|| SpecError::field("spec", "the document must be a JSON object"))?;
        let mut spec = Self::default();
        for (key, value) in pairs {
            match key.as_str() {
                "name" => {
                    spec.name = value
                        .as_str()
                        .ok_or_else(|| SpecError::field("name", "must be a string"))?
                        .to_string();
                }
                "preset" => {
                    let name = value
                        .as_str()
                        .ok_or_else(|| SpecError::field("preset", "must be a string"))?;
                    spec.preset = parse_preset(name)?;
                }
                "patch" => spec.patch = ConfigPatch::from_json(value)?,
                "defenses" => spec.defenses = string_list("defenses", value)?,
                "trackers" => spec.trackers = string_list("trackers", value)?,
                "thresholds" => spec.thresholds = u64_list("thresholds", value)?,
                "core_counts" => {
                    spec.core_counts =
                        u64_list("core_counts", value)?.into_iter().map(|v| v as usize).collect();
                }
                "seeds" => spec.seeds = u64_list("seeds", value)?,
                "attacks" => spec.attacks = string_list("attacks", value)?,
                "workloads" => spec.workloads = string_list("workloads", value)?,
                "threads" => spec.threads = Some(usize_field("threads", value)?),
                "share_prefixes" => {
                    spec.share_prefixes = bool_field("share_prefixes", value)?;
                }
                "telemetry" => {
                    spec.telemetry =
                        Some(TelemetryConfig::from_json(value).map_err(|message| {
                            SpecError::Field { field: "telemetry".to_string(), message }
                        })?);
                }
                "faults" => {
                    spec.faults = Some(FaultsConfig::from_json(value).map_err(|message| {
                        SpecError::Field { field: "faults".to_string(), message }
                    })?);
                }
                "search" => spec.search = Some(SearchSpec::from_json(value)?),
                _ => {
                    return Err(SpecError::UnknownName {
                        field: "spec",
                        name: key.clone(),
                        valid: SPEC_KEYS.iter().map(ToString::to_string).collect(),
                    });
                }
            }
        }
        Ok(spec)
    }

    /// Pretty-printed JSON text of this spec (the on-disk format).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Resolve every registry name and build the equivalent [`Experiment`].
    ///
    /// Unlike the builder API (whose [`Experiment::scenarios`] panics on an
    /// empty required axis), resolution reports empty axes and unknown names
    /// as structured [`SpecError`]s, so a bad spec file is a diagnosable
    /// user error rather than a crash.
    pub fn to_experiment(&self) -> Result<Experiment, SpecError> {
        let defenses: Vec<DefenseKind> =
            self.defenses.iter().map(|n| parse_defense(n)).collect::<Result<_, _>>()?;
        let trackers: Vec<TrackerKind> =
            self.trackers.iter().map(|n| parse_tracker(n)).collect::<Result<_, _>>()?;
        let attacks: Vec<AttackSpec> =
            self.attacks.iter().map(|n| parse_attack(n)).collect::<Result<_, _>>()?;
        let workloads = resolve_workloads(&self.workloads)?;
        for (field, empty) in [
            ("defenses", defenses.is_empty()),
            ("trackers", trackers.is_empty()),
            ("thresholds", self.thresholds.is_empty()),
            ("workloads", workloads.is_empty()),
        ] {
            if empty {
                return Err(SpecError::EmptyAxis(field));
            }
        }
        let mut experiment = Experiment::new()
            .with_defenses(defenses)
            .with_trackers(trackers)
            .with_thresholds(self.thresholds.clone())
            .with_core_counts(self.core_counts.clone())
            .with_seeds(self.seeds.clone())
            .with_attacks(attacks)
            .with_workloads(workloads)
            .with_preset(self.preset)
            .with_patch(self.patch.clone())
            .with_share_prefixes(self.share_prefixes);
        if let Some(telemetry) = &self.telemetry {
            experiment = experiment.with_telemetry(telemetry.clone());
        }
        if let Some(faults) = self.faults {
            experiment = experiment.with_faults(faults);
        }
        if let Some(threads) = self.threads {
            experiment = experiment.with_threads(threads);
        }
        Ok(experiment)
    }
}

/// The top-level keys [`ExperimentSpec::from_json`] accepts.
const SPEC_KEYS: &[&str] = &[
    "name",
    "preset",
    "patch",
    "defenses",
    "trackers",
    "thresholds",
    "core_counts",
    "seeds",
    "attacks",
    "workloads",
    "threads",
    "share_prefixes",
    "telemetry",
    "faults",
    "search",
];

impl ToJson for ExperimentSpec {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::from(self.name.as_str())),
            ("preset", Json::from(self.preset.name())),
            ("patch", self.patch.to_json()),
            ("defenses", str_array(&self.defenses)),
            ("trackers", str_array(&self.trackers)),
            ("thresholds", Json::Array(self.thresholds.iter().map(|&v| v.into()).collect())),
            ("core_counts", Json::Array(self.core_counts.iter().map(|&v| v.into()).collect())),
            ("seeds", Json::Array(self.seeds.iter().map(|&v| v.into()).collect())),
            ("attacks", str_array(&self.attacks)),
            ("workloads", str_array(&self.workloads)),
        ];
        if let Some(threads) = self.threads {
            pairs.push(("threads", threads.into()));
        }
        pairs.push(("share_prefixes", self.share_prefixes.into()));
        // Emitted only when set, so specs written before telemetry existed
        // keep their byte-exact round trip.
        if let Some(telemetry) = &self.telemetry {
            pairs.push(("telemetry", telemetry.to_json()));
        }
        if let Some(faults) = &self.faults {
            pairs.push(("faults", faults.to_json()));
        }
        if let Some(search) = &self.search {
            pairs.push(("search", search.to_json()));
        }
        obj(pairs)
    }
}

/// The `search` block of a spec: budget, operator rates and warm-up
/// horizon of one adaptive attack-search campaign (see [`crate::search`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpec {
    /// Candidates evaluated per generation.
    pub population: usize,
    /// Generations to run.
    pub generations: usize,
    /// Simulated time the benign system is warmed to before the first
    /// candidate fork.
    pub warmup_ns: u64,
    /// Master seed of the search (breeding RNG, candidate seeds).
    pub seed: u64,
    /// Top candidates copied unchanged into the next generation.
    pub elites: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Offspring crossover probability.
    pub crossover_rate: f64,
    /// Grid cell of the spec the search targets (defense, TRH, workload).
    pub cell: usize,
}

impl Default for SearchSpec {
    fn default() -> Self {
        Self {
            population: 8,
            generations: 4,
            warmup_ns: 500_000,
            seed: 0x5EA2C4,
            elites: 2,
            mutation_rate: 0.35,
            crossover_rate: 0.5,
            cell: 0,
        }
    }
}

/// The keys [`SearchSpec::from_json`] accepts.
const SEARCH_KEYS: &[&str] = &[
    "population",
    "generations",
    "warmup_ns",
    "seed",
    "elites",
    "mutation_rate",
    "crossover_rate",
    "cell",
];

impl SearchSpec {
    /// Decode a `search` block; unknown keys are errors.
    pub fn from_json(json: &Json) -> Result<Self, SpecError> {
        let pairs =
            json.as_object().ok_or_else(|| SpecError::field("search", "must be a JSON object"))?;
        let mut spec = Self::default();
        for (key, value) in pairs {
            match key.as_str() {
                "population" => spec.population = usize_field("search.population", value)?,
                "generations" => spec.generations = usize_field("search.generations", value)?,
                "warmup_ns" => spec.warmup_ns = u64_field("search.warmup_ns", value)?,
                "seed" => spec.seed = u64_field("search.seed", value)?,
                "elites" => spec.elites = usize_field("search.elites", value)?,
                "mutation_rate" => {
                    spec.mutation_rate = f64_field("search.mutation_rate", value)?;
                }
                "crossover_rate" => {
                    spec.crossover_rate = f64_field("search.crossover_rate", value)?;
                }
                "cell" => spec.cell = usize_field("search.cell", value)?,
                _ => {
                    return Err(SpecError::UnknownName {
                        field: "search",
                        name: key.clone(),
                        valid: SEARCH_KEYS.iter().map(ToString::to_string).collect(),
                    });
                }
            }
        }
        if spec.population == 0 {
            return Err(SpecError::field("search.population", "must be at least 1"));
        }
        if spec.generations == 0 {
            return Err(SpecError::field("search.generations", "must be at least 1"));
        }
        Ok(spec)
    }

    /// The operator configuration this block describes, as the attack
    /// crate's search engine consumes it.
    #[must_use]
    pub fn to_search_config(&self) -> srs_attack::search::SearchConfig {
        srs_attack::search::SearchConfig {
            population: self.population,
            generations: self.generations,
            elites: self.elites,
            mutation_rate: self.mutation_rate,
            crossover_rate: self.crossover_rate,
            seed: self.seed,
        }
    }
}

impl ToJson for SearchSpec {
    fn to_json(&self) -> Json {
        obj(vec![
            ("population", self.population.into()),
            ("generations", self.generations.into()),
            ("warmup_ns", self.warmup_ns.into()),
            ("seed", self.seed.into()),
            ("elites", self.elites.into()),
            ("mutation_rate", self.mutation_rate.into()),
            ("crossover_rate", self.crossover_rate.into()),
            ("cell", self.cell.into()),
        ])
    }
}

/// Everything that can go wrong turning spec text into an [`Experiment`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// A registry name (or object key) that no registry entry matches,
    /// together with the names that would have been accepted.
    UnknownName {
        /// Which registry or object was being resolved.
        field: &'static str,
        /// The name that failed to resolve.
        name: String,
        /// Every name the registry accepts.
        valid: Vec<String>,
    },
    /// A field with the wrong JSON shape (type or range).
    Field {
        /// Dotted path of the offending field.
        field: String,
        /// What the field must look like.
        message: String,
    },
    /// A required axis resolved to zero entries.
    EmptyAxis(&'static str),
}

impl SpecError {
    pub(crate) fn field(field: impl Into<String>, message: impl Into<String>) -> Self {
        SpecError::Field { field: field.into(), message: message.into() }
    }
}

impl From<JsonError> for SpecError {
    fn from(err: JsonError) -> Self {
        SpecError::Json(err)
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Json(err) => write!(f, "{err}"),
            SpecError::UnknownName { field, name, valid } => {
                write!(f, "unknown {field} name \"{name}\"; valid names: {}", valid.join(", "))
            }
            SpecError::Field { field, message } => write!(f, "invalid field {field}: {message}"),
            SpecError::EmptyAxis(field) => {
                write!(f, "the {field} axis resolved to zero entries; the grid would be empty")
            }
        }
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------------
// Registries.

/// Every defense name [`parse_defense`] accepts, in sweep-canonical order.
#[must_use]
pub fn defense_names() -> Vec<&'static str> {
    DEFENSES.iter().map(|&(name, _)| name).collect()
}

const DEFENSES: &[(&str, DefenseKind)] = &[
    ("baseline", DefenseKind::Baseline),
    ("rrs", DefenseKind::Rrs { immediate_unswap: true }),
    ("rrs-no-unswap", DefenseKind::Rrs { immediate_unswap: false }),
    ("srs", DefenseKind::Srs),
    ("scale-srs", DefenseKind::ScaleSrs),
];

/// Resolve a defense registry name (the [`DefenseKind`] display names).
pub fn parse_defense(name: &str) -> Result<DefenseKind, SpecError> {
    DEFENSES.iter().find(|&&(n, _)| n == name).map(|&(_, kind)| kind).ok_or_else(|| {
        SpecError::UnknownName {
            field: "defense",
            name: name.to_string(),
            valid: defense_names().iter().map(ToString::to_string).collect(),
        }
    })
}

/// Every tracker name [`parse_tracker`] accepts.
#[must_use]
pub fn tracker_names() -> Vec<&'static str> {
    TRACKERS.iter().map(|&(name, _)| name).collect()
}

const TRACKERS: &[(&str, TrackerKind)] =
    &[("misra-gries", TrackerKind::MisraGries), ("hydra", TrackerKind::Hydra)];

/// Resolve a tracker registry name (the [`TrackerKind`] display names).
pub fn parse_tracker(name: &str) -> Result<TrackerKind, SpecError> {
    TRACKERS.iter().find(|&&(n, _)| n == name).map(|&(_, kind)| kind).ok_or_else(|| {
        SpecError::UnknownName {
            field: "tracker",
            name: name.to_string(),
            valid: tracker_names().iter().map(ToString::to_string).collect(),
        }
    })
}

/// Every preset name [`parse_preset`] accepts.
#[must_use]
pub fn preset_names() -> Vec<&'static str> {
    vec![Preset::Paper.name(), Preset::ScaledForSpeed.name()]
}

/// Resolve a preset registry name.
pub fn parse_preset(name: &str) -> Result<Preset, SpecError> {
    match name {
        "paper" => Ok(Preset::Paper),
        "scaled_for_speed" => Ok(Preset::ScaledForSpeed),
        _ => Err(SpecError::UnknownName {
            field: "preset",
            name: name.to_string(),
            valid: preset_names().iter().map(ToString::to_string).collect(),
        }),
    }
}

/// Every attack name [`parse_attack`] accepts (the shipped pattern library).
#[must_use]
pub fn attack_names() -> Vec<String> {
    shipped_patterns().into_iter().map(|a| a.name).collect()
}

/// Resolve an attack registry name to its shipped [`AttackSpec`].
pub fn parse_attack(name: &str) -> Result<AttackSpec, SpecError> {
    shipped_patterns().into_iter().find(|a| a.name == name).ok_or_else(|| SpecError::UnknownName {
        field: "attack",
        name: name.to_string(),
        valid: attack_names(),
    })
}

const SUITES: &[(&str, Suite)] = &[
    ("gups", Suite::Gups),
    ("spec2006", Suite::Spec2006),
    ("spec2017", Suite::Spec2017),
    ("gap", Suite::Gap),
    ("commercial", Suite::Commercial),
    ("parsec", Suite::Parsec),
    ("biobench", Suite::Biobench),
    ("mix", Suite::Mix),
];

/// Every workload selector [`resolve_workloads`] accepts: the special
/// selectors first, then one `suite:<name>` per suite, then all 78 workload
/// names.
#[must_use]
pub fn workload_selector_names() -> Vec<String> {
    let mut names = vec!["all".to_string(), "hot-rows".to_string()];
    names.extend(SUITES.iter().map(|(n, _)| format!("suite:{n}")));
    names.extend(all_workloads().iter().map(|w| w.name.to_string()));
    names
}

/// Resolve a list of workload selectors into concrete workloads, in
/// selector order, deduplicated by name (first occurrence wins). Selectors:
/// `all`, `hot-rows`, `suite:<gups|spec2006|spec2017|gap|commercial|parsec|
/// biobench|mix>`, or an exact workload name.
pub fn resolve_workloads(selectors: &[String]) -> Result<Vec<NamedWorkload>, SpecError> {
    let mut resolved: Vec<NamedWorkload> = Vec::new();
    let add = |workloads: Vec<NamedWorkload>, resolved: &mut Vec<NamedWorkload>| {
        for w in workloads {
            if !resolved.iter().any(|r| r.name == w.name) {
                resolved.push(w);
            }
        }
    };
    for selector in selectors {
        if selector == "all" {
            add(all_workloads(), &mut resolved);
        } else if selector == "hot-rows" {
            add(hot_row_workloads(), &mut resolved);
        } else if let Some(suite_name) = selector.strip_prefix("suite:") {
            let suite =
                SUITES.iter().find(|&&(n, _)| n == suite_name).map(|&(_, s)| s).ok_or_else(
                    || SpecError::UnknownName {
                        field: "workload",
                        name: selector.clone(),
                        valid: workload_selector_names(),
                    },
                )?;
            add(workloads_in(suite), &mut resolved);
        } else if let Some(w) = all_workloads().into_iter().find(|w| w.name == *selector) {
            add(vec![w], &mut resolved);
        } else {
            return Err(SpecError::UnknownName {
                field: "workload",
                name: selector.clone(),
                valid: workload_selector_names(),
            });
        }
    }
    Ok(resolved)
}

impl ToJson for AttackSpec {
    fn to_json(&self) -> Json {
        use srs_attack::engine::AttackPattern;
        let pattern = match self.pattern {
            AttackPattern::SingleSided { bank, row } => obj(vec![
                ("kind", "single-sided".into()),
                ("bank", bank.into()),
                ("row", row.into()),
            ]),
            AttackPattern::DoubleSided { bank, victim } => obj(vec![
                ("kind", "double-sided".into()),
                ("bank", bank.into()),
                ("victim", victim.into()),
            ]),
            AttackPattern::NSided { bank, first, aggressors, pitch } => obj(vec![
                ("kind", "n-sided".into()),
                ("bank", bank.into()),
                ("first", first.into()),
                ("aggressors", aggressors.into()),
                ("pitch", pitch.into()),
            ]),
            AttackPattern::Juggernaut { banks, aggressor, bias_rounds } => obj(vec![
                ("kind", "juggernaut".into()),
                ("banks", banks.into()),
                ("aggressor", aggressor.into()),
                ("bias_rounds", bias_rounds.into()),
            ]),
            AttackPattern::Blacksmith {
                bank,
                region_base,
                region_rows,
                aggressors,
                max_intensity,
            } => obj(vec![
                ("kind", "blacksmith".into()),
                ("bank", bank.into()),
                ("region_base", region_base.into()),
                ("region_rows", region_rows.into()),
                ("aggressors", aggressors.into()),
                ("max_intensity", max_intensity.into()),
            ]),
        };
        obj(vec![
            ("name", Json::from(self.name.as_str())),
            ("pattern", pattern),
            ("attacker_cores", self.attacker_cores.into()),
            ("seed", self.seed.into()),
            ("stop_at_first_crossing", self.stop_at_first_crossing.into()),
        ])
    }
}

/// Decode an inline [`AttackSpec`] from the object form [`ToJson`] emits.
pub fn attack_spec_from_json(json: &Json) -> Result<AttackSpec, SpecError> {
    use srs_attack::engine::AttackPattern;
    let pattern_json = require(json, "pattern")?;
    let kind = str_field("pattern.kind", require(pattern_json, "kind")?)?;
    let field = |name: &str| -> Result<u64, SpecError> {
        u64_field(&format!("pattern.{name}"), require(pattern_json, name)?)
    };
    let pattern = match kind {
        "single-sided" => {
            AttackPattern::SingleSided { bank: field("bank")? as usize, row: field("row")? }
        }
        "double-sided" => {
            AttackPattern::DoubleSided { bank: field("bank")? as usize, victim: field("victim")? }
        }
        "n-sided" => AttackPattern::NSided {
            bank: field("bank")? as usize,
            first: field("first")?,
            aggressors: field("aggressors")?,
            pitch: field("pitch")?,
        },
        "juggernaut" => AttackPattern::Juggernaut {
            banks: field("banks")? as usize,
            aggressor: field("aggressor")?,
            bias_rounds: field("bias_rounds")?,
        },
        "blacksmith" => AttackPattern::Blacksmith {
            bank: field("bank")? as usize,
            region_base: field("region_base")?,
            region_rows: field("region_rows")?,
            aggressors: field("aggressors")?,
            max_intensity: field("max_intensity")?,
        },
        other => {
            return Err(SpecError::UnknownName {
                field: "pattern.kind",
                name: other.to_string(),
                valid: ["single-sided", "double-sided", "n-sided", "juggernaut", "blacksmith"]
                    .map(String::from)
                    .to_vec(),
            });
        }
    };
    Ok(AttackSpec {
        name: str_field("name", require(json, "name")?)?.to_string(),
        pattern,
        attacker_cores: usize_field("attacker_cores", require(json, "attacker_cores")?)?,
        seed: u64_field("seed", require(json, "seed")?)?,
        stop_at_first_crossing: bool_field(
            "stop_at_first_crossing",
            require(json, "stop_at_first_crossing")?,
        )?,
    })
}

pub(crate) fn page_policy_name(policy: PagePolicy) -> &'static str {
    match policy {
        PagePolicy::ClosedPage => "closed-page",
        PagePolicy::OpenPage => "open-page",
    }
}

pub(crate) fn parse_page_policy(name: &str) -> Result<PagePolicy, SpecError> {
    match name {
        "closed-page" => Ok(PagePolicy::ClosedPage),
        "open-page" => Ok(PagePolicy::OpenPage),
        _ => Err(SpecError::UnknownName {
            field: "page_policy",
            name: name.to_string(),
            valid: vec!["closed-page".to_string(), "open-page".to_string()],
        }),
    }
}

// ---------------------------------------------------------------------------
// JSON field helpers shared by the spec and config codecs.

pub(crate) fn u64_field(field: &str, value: &Json) -> Result<u64, SpecError> {
    value.as_u64().ok_or_else(|| SpecError::field(field, "must be a non-negative integer"))
}

pub(crate) fn usize_field(field: &str, value: &Json) -> Result<usize, SpecError> {
    u64_field(field, value).map(|v| v as usize)
}

pub(crate) fn u32_field(field: &str, value: &Json) -> Result<u32, SpecError> {
    u64_field(field, value)?
        .try_into()
        .map_err(|_| SpecError::field(field, "must fit in an unsigned 32-bit integer"))
}

pub(crate) fn f64_field(field: &str, value: &Json) -> Result<f64, SpecError> {
    value.as_f64().ok_or_else(|| SpecError::field(field, "must be a number"))
}

pub(crate) fn str_field<'j>(field: &str, value: &'j Json) -> Result<&'j str, SpecError> {
    value.as_str().ok_or_else(|| SpecError::field(field, "must be a string"))
}

pub(crate) fn bool_field(field: &str, value: &Json) -> Result<bool, SpecError> {
    value.as_bool().ok_or_else(|| SpecError::field(field, "must be a boolean"))
}

pub(crate) fn require<'j>(json: &'j Json, field: &str) -> Result<&'j Json, SpecError> {
    json.get(field).ok_or_else(|| SpecError::field(field, "missing required field"))
}

fn string_list(field: &'static str, value: &Json) -> Result<Vec<String>, SpecError> {
    let items =
        value.as_array().ok_or_else(|| SpecError::field(field, "must be an array of strings"))?;
    items
        .iter()
        .map(|v| v.as_str().map(ToString::to_string))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| SpecError::field(field, "must be an array of strings"))
}

fn u64_list(field: &'static str, value: &Json) -> Result<Vec<u64>, SpecError> {
    let items =
        value.as_array().ok_or_else(|| SpecError::field(field, "must be an array of integers"))?;
    items
        .iter()
        .map(Json::as_u64)
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| SpecError::field(field, "must be an array of non-negative integers"))
}

fn str_array(items: &[String]) -> Json {
    Json::Array(items.iter().map(|s| Json::from(s.as_str())).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_matches_builder_defaults() {
        let spec = ExperimentSpec::default();
        let experiment = spec.to_experiment().unwrap();
        assert_eq!(experiment.job_count(), Experiment::new().job_count());
        assert_eq!(experiment.scenarios(), Experiment::new().scenarios());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ExperimentSpec {
            name: "fig15".to_string(),
            preset: Preset::Paper,
            patch: ConfigPatch {
                cores: Some(2),
                seed: Some(u64::MAX),
                page_policy: Some(PagePolicy::OpenPage),
                ..ConfigPatch::default()
            },
            defenses: vec!["rrs".to_string(), "scale-srs".to_string()],
            trackers: vec!["hydra".to_string()],
            thresholds: vec![512, 1200, 2400, 4800],
            core_counts: vec![4, 8],
            seeds: vec![1, 2, 3],
            attacks: vec!["juggernaut".to_string()],
            workloads: vec!["suite:gups".to_string(), "gcc".to_string()],
            threads: Some(3),
            share_prefixes: false,
            telemetry: Some(TelemetryConfig::armed()),
            faults: Some(crate::faults::FaultsConfig::enabled()),
            search: Some(SearchSpec {
                population: 12,
                generations: 7,
                cell: 3,
                ..SearchSpec::default()
            }),
        };
        let text = spec.to_json_string();
        assert_eq!(ExperimentSpec::parse(&text).unwrap(), spec);
    }

    #[test]
    fn search_block_rejects_unknown_keys_and_zero_budgets() {
        let err = ExperimentSpec::parse(r#"{"search": {"populaton": 4}}"#).unwrap_err();
        assert!(err.to_string().contains("populaton"), "{err}");
        let err = ExperimentSpec::parse(r#"{"search": {"population": 0}}"#).unwrap_err();
        assert!(err.to_string().contains("population"), "{err}");
        let err = ExperimentSpec::parse(r#"{"search": {"generations": 0}}"#).unwrap_err();
        assert!(err.to_string().contains("generations"), "{err}");
        // Omitted block stays omitted through a round trip.
        let spec = ExperimentSpec::parse(r#"{"name": "plain"}"#).unwrap();
        assert!(spec.search.is_none());
        assert!(!spec.to_json_string().contains("search"));
    }

    #[test]
    fn share_prefixes_defaults_on_and_reaches_the_experiment() {
        let spec = ExperimentSpec::parse("{}").unwrap();
        assert!(spec.share_prefixes, "sharing must default on");
        assert!(spec.to_experiment().unwrap().share_prefixes());

        let spec = ExperimentSpec::parse(r#"{"share_prefixes": false}"#).unwrap();
        assert!(!spec.share_prefixes);
        assert!(!spec.to_experiment().unwrap().share_prefixes());

        // Wrong shapes are structured field errors, not panics.
        let err = ExperimentSpec::parse(r#"{"share_prefixes": "yes"}"#).unwrap_err();
        assert!(err.to_string().contains("share_prefixes"), "{err}");
    }

    #[test]
    fn minimal_document_gets_the_defaults() {
        let spec = ExperimentSpec::parse("{}").unwrap();
        assert_eq!(spec.defenses, vec!["scale-srs".to_string()]);
        assert_eq!(spec.thresholds, vec![1200]);
        assert_eq!(spec.preset, Preset::ScaledForSpeed);
        assert!(spec.patch.is_empty());
    }

    #[test]
    fn unknown_names_list_the_valid_registry() {
        let err = parse_defense("rowpress").unwrap_err();
        match &err {
            SpecError::UnknownName { field, name, valid } => {
                assert_eq!(*field, "defense");
                assert_eq!(name, "rowpress");
                assert_eq!(
                    valid,
                    &["baseline", "rrs", "rrs-no-unswap", "srs", "scale-srs"]
                        .map(String::from)
                        .to_vec()
                );
            }
            other => panic!("expected UnknownName, got {other:?}"),
        }
        let message = err.to_string();
        assert!(message.contains("rowpress") && message.contains("scale-srs"), "{message}");

        assert!(matches!(parse_tracker("cbf"), Err(SpecError::UnknownName { .. })));
        assert!(matches!(parse_preset("huge"), Err(SpecError::UnknownName { .. })));
        assert!(matches!(parse_attack("rowpress"), Err(SpecError::UnknownName { .. })));
        let err = resolve_workloads(&["suite:spec2037".to_string()]).unwrap_err();
        assert!(err.to_string().contains("suite:spec2017"), "{err}");
    }

    #[test]
    fn unknown_spec_and_patch_keys_are_rejected() {
        let err = ExperimentSpec::parse(r#"{"defences": ["srs"]}"#).unwrap_err();
        assert!(err.to_string().contains("defenses"), "{err}");
        let err = ExperimentSpec::parse(r#"{"patch": {"coers": 2}}"#).unwrap_err();
        assert!(err.to_string().contains("cores"), "{err}");
    }

    #[test]
    fn workload_selectors_dedup_in_order() {
        let resolved = resolve_workloads(&[
            "gcc".to_string(),
            "suite:gups".to_string(),
            "gcc".to_string(),
            "hot-rows".to_string(),
        ])
        .unwrap();
        assert_eq!(resolved[0].name, "gcc");
        assert_eq!(resolved[1].name, "gups");
        let names: Vec<&str> = resolved.iter().map(|w| w.name).collect();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped, "selectors must not produce duplicates");
        assert!(names.contains(&"bzip2"), "hot-rows adds the RRS-hostile set");
    }

    #[test]
    fn empty_axes_are_structured_errors_not_panics() {
        let spec = ExperimentSpec { defenses: Vec::new(), ..ExperimentSpec::default() };
        assert_eq!(spec.to_experiment().unwrap_err(), SpecError::EmptyAxis("defenses"));
        let spec = ExperimentSpec { thresholds: Vec::new(), ..ExperimentSpec::default() };
        assert_eq!(spec.to_experiment().unwrap_err(), SpecError::EmptyAxis("thresholds"));
    }

    #[test]
    fn shipped_attacks_round_trip_through_json() {
        for attack in shipped_patterns() {
            let decoded = attack_spec_from_json(&attack.to_json()).unwrap();
            assert_eq!(decoded, attack, "{}", attack.name);
        }
    }

    #[test]
    fn patch_applies_only_set_fields() {
        let base = SystemConfig::scaled_for_speed(DefenseKind::Srs, 1200);
        let patch = ConfigPatch {
            cores: Some(1),
            refresh_window_ns: Some(777),
            swap_rate: Some(9),
            ..ConfigPatch::default()
        };
        let mut patched = base.clone();
        patch.apply(&mut patched);
        assert_eq!(patched.cores, 1);
        assert_eq!(patched.dram.refresh_window_ns, 777);
        assert_eq!(patched.effective_swap_rate(), 9);
        assert_eq!(patched.core.target_instructions, base.core.target_instructions);
        assert!(ConfigPatch::default().is_empty());
        assert!(!patch.is_empty());
    }
}
