//! The adaptive attack-search executor: snapshot-powered scoring, the
//! crash-safe generation stream, and the replay reproducibility guard.
//!
//! [`srs_attack::search`] owns the genome, the operators and the
//! generational state machine; this module supplies the other half of the
//! closed loop — *scoring*. One benign [`System`] is warmed to steady
//! state under the spec-selected grid cell, then every candidate of a
//! generation gets its own [`System::fork`] of that snapshot with the
//! candidate attack installed ([`System::install_attack`]), run to
//! completion on the ordered parallel executor. Fitness comes straight
//! off the [`SecurityReport`]: time-to-first-TRH-crossing, with the
//! closest-approach pressure ratio as the deterministic tiebreak for
//! candidates that never cross.
//!
//! Persistence follows the campaign engine's crash-safety idiom: one
//! compact JSON line per generation appended to the output stream, and an
//! atomically rewritten (`tmp` + rename) manifest beside it holding the
//! population, the generation index and the best-so-far record. Because
//! the breeding RNG derives from the seed and generation index alone,
//! resuming from the manifest is byte-identical to never having stopped —
//! the same property `SRS_SEARCH_CRASH_AFTER` lets CI prove by killing a
//! run mid-stream.

use std::io::Write;
use std::path::{Path, PathBuf};

use srs_attack::search::Search;
pub use srs_attack::search::{Candidate, GenerationSummary, Score, SearchConfig};

use crate::json::{obj, Json, ToJson};
use crate::security::SecurityReport;
use crate::spec::{attack_spec_from_json, ExperimentSpec, SearchSpec, SpecError};
use crate::system::System;

/// Everything that can go wrong driving a search campaign.
#[derive(Debug)]
pub enum SearchError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// What was being attempted.
        action: &'static str,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The spec could not be resolved (or has no `search` block).
    Spec(SpecError),
    /// The on-disk state does not match the campaign being (re)run.
    Manifest(String),
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::Io { path, action, error } => {
                write!(f, "cannot {action} {}: {error}", path.display())
            }
            SearchError::Spec(error) => write!(f, "{error}"),
            SearchError::Manifest(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for SearchError {}

impl From<SpecError> for SearchError {
    fn from(error: SpecError) -> Self {
        SearchError::Spec(error)
    }
}

fn io_err(path: &Path, action: &'static str, error: std::io::Error) -> SearchError {
    SearchError::Io { path: path.to_path_buf(), action, error }
}

/// Extract a candidate's fitness from its run's security report.
#[must_use]
pub fn score_from_report(report: &SecurityReport) -> Score {
    Score {
        first_crossing_ns: report.first_crossing_ns,
        max_pressure: report.max_victim_pressure,
        t_rh: report.t_rh,
        closest_ns: report.closest_approach_ns,
    }
}

/// JSON form of a score as embedded in generation records and manifests.
fn score_json(score: &Score) -> Json {
    obj(vec![
        ("first_crossing_ns", score.first_crossing_ns.into()),
        ("max_pressure", score.max_pressure.into()),
        ("t_rh", score.t_rh.into()),
        ("closest_ns", score.closest_ns.into()),
        ("pressure_ratio", score.pressure_ratio().into()),
    ])
}

fn score_from_json(json: &Json) -> Result<Score, String> {
    let need_u64 = |field: &str| {
        json.get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("score field '{field}' must be a u64"))
    };
    Ok(Score {
        first_crossing_ns: match json.get("first_crossing_ns") {
            None | Some(Json::Null) => None,
            Some(value) => {
                Some(value.as_u64().ok_or("score field 'first_crossing_ns' must be u64 or null")?)
            }
        },
        max_pressure: need_u64("max_pressure")?,
        t_rh: need_u64("t_rh")?,
        closest_ns: match json.get("closest_ns") {
            None | Some(Json::Null) => None,
            Some(value) => {
                Some(value.as_u64().ok_or("score field 'closest_ns' must be u64 or null")?)
            }
        },
    })
}

fn candidate_json(candidate: &Candidate) -> Json {
    candidate.to_attack_spec().to_json()
}

fn candidate_from_json(json: &Json) -> Result<Candidate, String> {
    let spec = attack_spec_from_json(json).map_err(|e| e.to_string())?;
    Ok(Candidate { name: spec.name, pattern: spec.pattern, seed: spec.seed })
}

/// The best candidate found so far, with the full security report of its
/// scoring run (kept as JSON verbatim so replay can byte-diff it).
#[derive(Debug, Clone, PartialEq)]
pub struct BestFound {
    /// The champion candidate.
    pub candidate: Candidate,
    /// Its fitness.
    pub score: Score,
    /// The [`SecurityReport`] JSON of its scoring run.
    pub report: Json,
}

impl BestFound {
    fn to_json(&self) -> Json {
        obj(vec![
            ("attack", candidate_json(&self.candidate)),
            ("score", score_json(&self.score)),
            ("report", self.report.clone()),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let attack = json.get("attack").ok_or("best record needs an 'attack' object")?;
        let score = json.get("score").ok_or("best record needs a 'score' object")?;
        let report = json.get("report").ok_or("best record needs a 'report' object")?;
        Ok(Self {
            candidate: candidate_from_json(attack)?,
            score: score_from_json(score)?,
            report: report.clone(),
        })
    }
}

/// The atomically rewritten sidecar state of a search campaign: enough to
/// resume bit-identically after a crash.
#[derive(Debug, Clone)]
struct SearchManifest {
    campaign: String,
    cell: usize,
    total_generations: usize,
    generations_done: usize,
    bytes_committed: u64,
    population: Vec<Candidate>,
    best: Option<BestFound>,
}

impl SearchManifest {
    /// The manifest path beside an output stream.
    fn path_for(out: &Path) -> PathBuf {
        PathBuf::from(format!("{}.manifest.json", out.display()))
    }

    fn to_json(&self) -> Json {
        obj(vec![
            ("campaign", Json::from(self.campaign.as_str())),
            ("kind", Json::from("search")),
            ("cell", self.cell.into()),
            ("total_generations", self.total_generations.into()),
            ("generations_done", self.generations_done.into()),
            ("bytes_committed", self.bytes_committed.into()),
            ("population", Json::Array(self.population.iter().map(candidate_json).collect())),
            ("best", self.best.as_ref().map_or(Json::Null, BestFound::to_json)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        if json.get("kind").and_then(Json::as_str) != Some("search") {
            return Err("not a search manifest (missing \"kind\": \"search\")".to_string());
        }
        let need_u64 = |field: &str| {
            json.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("manifest field '{field}' must be a u64"))
        };
        let population = json
            .get("population")
            .and_then(Json::as_array)
            .ok_or("manifest field 'population' must be an array")?
            .iter()
            .map(candidate_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let best = match json.get("best") {
            None | Some(Json::Null) => None,
            Some(value) => Some(BestFound::from_json(value)?),
        };
        Ok(Self {
            campaign: json
                .get("campaign")
                .and_then(Json::as_str)
                .ok_or("manifest field 'campaign' must be a string")?
                .to_string(),
            cell: need_u64("cell")? as usize,
            total_generations: need_u64("total_generations")? as usize,
            generations_done: need_u64("generations_done")? as usize,
            bytes_committed: need_u64("bytes_committed")?,
            population,
            best,
        })
    }

    fn save(&self, path: &Path) -> Result<(), SearchError> {
        let tmp = PathBuf::from(format!("{}.tmp", path.display()));
        let mut text = self.to_json().to_pretty();
        text.push('\n');
        std::fs::write(&tmp, text).map_err(|e| io_err(&tmp, "write", e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, "rename manifest over", e))
    }

    fn load(path: &Path) -> Result<Self, SearchError> {
        let text = std::fs::read_to_string(path).map_err(|e| io_err(path, "read", e))?;
        let json = Json::parse(&text)
            .map_err(|e| SearchError::Manifest(format!("{}: {e}", path.display())))?;
        Self::from_json(&json)
            .map_err(|message| SearchError::Manifest(format!("{}: {message}", path.display())))
    }
}

/// `SRS_SEARCH_CRASH_AFTER=N` makes the stream write only the first half
/// of the `N`-th generation record of this run, flush it, and abort the
/// process — the CI hook proving `--resume` recovers from a torn line.
fn crash_after_from_env() -> Option<usize> {
    std::env::var("SRS_SEARCH_CRASH_AFTER").ok()?.trim().parse().ok()
}

/// What one [`run_search`] invocation accomplished.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Generations scored by this invocation (0 when resuming a finished
    /// campaign).
    pub generations_run: usize,
    /// Generations committed in total, across all invocations.
    pub generations_done: usize,
    /// The champion across the whole campaign.
    pub best: BestFound,
    /// Torn-record bytes truncated on resume (non-zero exactly when the
    /// previous run died mid-write).
    pub truncated_bytes: u64,
}

/// Warm the scenario selected by `spec.search` to its warm-up horizon:
/// a benign system (no attack installed) over the cell's workload.
pub fn warm_system(spec: &ExperimentSpec, search: &SearchSpec) -> Result<System, SearchError> {
    let experiment = spec.to_experiment()?;
    let scenarios = experiment.scenarios();
    let scenario = scenarios.get(search.cell).ok_or_else(|| {
        SearchError::Manifest(format!(
            "search.cell {} is out of range: '{}' resolves to {} cells",
            search.cell,
            spec.name,
            scenarios.len()
        ))
    })?;
    let mut config = experiment.config_for(scenario);
    // The warm-up is benign by construction: the attack axis is the
    // search's output, not its input.
    config.attack = None;
    let trace = scenario.workload.spec().generate(config.trace_records_per_core, config.seed);
    let mut system = System::new(config, trace);
    system.run_until_ns(search.warmup_ns);
    Ok(system)
}

/// Score one candidate solo: a fresh system warmed from scratch, the
/// candidate installed at the horizon, run to completion. This is the
/// from-scratch reference the fork-batch path must agree with, and the
/// `--replay` reproducibility guard.
pub fn score_solo(
    spec: &ExperimentSpec,
    search: &SearchSpec,
    candidate: &Candidate,
) -> Result<SecurityReport, SearchError> {
    let mut system = warm_system(spec, search)?;
    system.install_attack(candidate.to_attack_spec());
    let result = system.run();
    result.security.ok_or_else(|| {
        SearchError::Manifest("attacked run produced no security report".to_string())
    })
}

/// One generation record of the output stream.
fn generation_record(campaign: &str, cell: usize, summary: &GenerationSummary) -> Json {
    obj(vec![
        ("generation", summary.index.into()),
        ("campaign", Json::from(campaign)),
        ("cell", cell.into()),
        (
            "best",
            obj(vec![
                ("attack", candidate_json(&summary.best.0)),
                ("score", score_json(&summary.best.1)),
            ]),
        ),
        (
            "best_so_far",
            obj(vec![
                ("attack", candidate_json(&summary.best_so_far.0)),
                ("score", score_json(&summary.best_so_far.1)),
            ]),
        ),
    ])
}

/// Schema check for one line of a search generation stream (the `validate`
/// counterpart of [`crate::sink::validate_result_record`] for `search`
/// outputs).
pub fn validate_search_record(record: &Json) -> Result<(), String> {
    for field in ["generation", "cell"] {
        record
            .get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("record needs a u64 '{field}'"))?;
    }
    record.get("campaign").and_then(Json::as_str).ok_or("record needs a string 'campaign'")?;
    for field in ["best", "best_so_far"] {
        let entry = record.get(field).ok_or_else(|| format!("record needs a '{field}' object"))?;
        let attack = entry.get("attack").ok_or_else(|| format!("'{field}' needs an 'attack'"))?;
        candidate_from_json(attack).map_err(|e| format!("'{field}.attack': {e}"))?;
        let score = entry.get("score").ok_or_else(|| format!("'{field}' needs a 'score'"))?;
        score_from_json(score).map_err(|e| format!("'{field}.score': {e}"))?;
        score
            .get("pressure_ratio")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("'{field}.score' needs an f64 'pressure_ratio'"))?;
    }
    Ok(())
}

/// Run (or resume) the search campaign described by `spec` — which must
/// carry a `search` block — streaming one generation record per line to
/// `out` with a crash-safe manifest beside it.
///
/// `threads` caps the scoring workers (0 means the engine default);
/// `stop_after` limits how many generations this invocation scores (used
/// by tests to exercise mid-campaign resume in-process; `None` runs to the
/// configured budget). `progress` observes each generation as it commits.
pub fn run_search(
    spec: &ExperimentSpec,
    out: &Path,
    resume: bool,
    threads: usize,
    stop_after: Option<usize>,
    progress: &mut dyn FnMut(&GenerationSummary),
) -> Result<SearchOutcome, SearchError> {
    let search_spec = spec
        .search
        .clone()
        .ok_or_else(|| SearchError::Spec(SpecError::field("search", "spec has no search block")))?;
    let config = search_spec.to_search_config();
    let threads = if threads == 0 { crate::scenario::default_threads() } else { threads };
    let manifest_path = SearchManifest::path_for(out);

    let (mut search, mut manifest, truncated_bytes) = if resume {
        let manifest = SearchManifest::load(&manifest_path)?;
        if manifest.campaign != spec.name {
            return Err(SearchError::Manifest(format!(
                "manifest belongs to campaign '{}', not '{}'",
                manifest.campaign, spec.name
            )));
        }
        if manifest.cell != search_spec.cell || manifest.total_generations != config.generations {
            return Err(SearchError::Manifest(
                "manifest does not match the spec's search block (cell or generation budget \
                 changed); re-run without --resume"
                    .to_string(),
            ));
        }
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(out)
            .map_err(|e| io_err(out, "open", e))?;
        let len = file.metadata().map_err(|e| io_err(out, "stat", e))?.len();
        let truncated = len.saturating_sub(manifest.bytes_committed);
        if truncated > 0 {
            // A torn final record from a crashed run: cut back to the last
            // committed byte before appending.
            file.set_len(manifest.bytes_committed).map_err(|e| io_err(out, "truncate", e))?;
        }
        let search = Search::resume(
            config,
            manifest.generations_done,
            manifest.population.clone(),
            manifest.best.as_ref().map(|b| (b.candidate.clone(), b.score)),
        );
        (search, manifest, truncated)
    } else {
        std::fs::write(out, "").map_err(|e| io_err(out, "create", e))?;
        let search = Search::new(config.clone());
        let manifest = SearchManifest {
            campaign: spec.name.clone(),
            cell: search_spec.cell,
            total_generations: config.generations,
            generations_done: 0,
            bytes_committed: 0,
            population: search.population().to_vec(),
            best: None,
        };
        manifest.save(&manifest_path)?;
        (search, manifest, 0)
    };

    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(out)
        .map_err(|e| io_err(out, "open for append", e))?;
    let crash_after = crash_after_from_env();
    let mut generations_run = 0usize;

    if !search.done() && stop_after != Some(0) {
        let warm = warm_system(spec, &search_spec)?;
        while !search.done() {
            let specs = search.population().iter().map(Candidate::to_attack_spec).collect();
            let results = warm.fork_each(specs, threads);
            let mut scores = Vec::with_capacity(results.len());
            let mut reports = Vec::with_capacity(results.len());
            for result in &results {
                let report = result.security.as_ref().ok_or_else(|| {
                    SearchError::Manifest("attacked run produced no security report".to_string())
                })?;
                scores.push(score_from_report(report));
                reports.push(report);
            }
            let summary = search.advance(&scores);
            // `advance` only ever promotes the generation's best candidate,
            // so when the two records agree the champion came from this
            // generation — capture its full report for replay.
            if summary.best_so_far == summary.best {
                // Invariant: `best_so_far == best` means the champion was
                // promoted from this generation's score vector.
                #[allow(clippy::expect_used)]
                let index = scores
                    .iter()
                    .position(|s| *s == summary.best.1)
                    .expect("the generation best was scored this generation");
                manifest.best = Some(BestFound {
                    candidate: summary.best.0.clone(),
                    score: summary.best.1,
                    report: reports[index].to_json(),
                });
            }

            let mut line =
                generation_record(&manifest.campaign, manifest.cell, &summary).to_compact();
            line.push('\n');
            generations_run += 1;
            if crash_after == Some(generations_run) {
                // Simulate dying mid-write: half a record, then abort
                // without committing the manifest.
                let half = &line.as_bytes()[..line.len() / 2];
                let _ = file.write_all(half);
                let _ = file.flush();
                std::process::abort();
            }
            file.write_all(line.as_bytes()).map_err(|e| io_err(out, "append to", e))?;
            file.flush().map_err(|e| io_err(out, "flush", e))?;
            manifest.bytes_committed += line.len() as u64;
            manifest.generations_done = summary.index + 1;
            manifest.population = search.population().to_vec();
            manifest.save(&manifest_path)?;
            progress(&summary);
            if stop_after == Some(generations_run) {
                break;
            }
        }
    }

    let best = manifest.best.clone().ok_or_else(|| {
        SearchError::Manifest("campaign has no scored generations yet".to_string())
    })?;
    Ok(SearchOutcome {
        generations_run,
        generations_done: manifest.generations_done,
        best,
        truncated_bytes,
    })
}

/// The self-contained champion record `srs-cli search` writes beside the
/// generation stream: everything `--replay` needs to re-score the found
/// pattern from scratch and byte-diff the result.
#[must_use]
pub fn best_record(spec: &ExperimentSpec, outcome: &SearchOutcome) -> Json {
    obj(vec![
        ("spec", spec.to_json()),
        ("attack", candidate_json(&outcome.best.candidate)),
        ("score", score_json(&outcome.best.score)),
        ("report", outcome.best.report.clone()),
    ])
}

/// What [`replay_best`] produced: the recorded report and the fresh
/// re-scored one, both as compact JSON for byte comparison.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Name of the replayed candidate.
    pub attack: String,
    /// The recorded report, compact-encoded.
    pub recorded: String,
    /// The freshly re-simulated report, compact-encoded.
    pub replayed: String,
}

impl ReplayOutcome {
    /// Whether the replay reproduced the recorded score byte-for-byte.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.recorded == self.replayed
    }
}

/// Re-run a champion record solo (fresh warm-up, same candidate) and
/// return both report encodings for byte comparison.
pub fn replay_best(record: &Json) -> Result<ReplayOutcome, SearchError> {
    let spec_json = record
        .get("spec")
        .ok_or_else(|| SearchError::Manifest("best record needs a 'spec' object".to_string()))?;
    let spec = ExperimentSpec::from_json(spec_json)?;
    let search = spec
        .search
        .clone()
        .ok_or_else(|| SearchError::Spec(SpecError::field("search", "spec has no search block")))?;
    let candidate = record
        .get("attack")
        .ok_or_else(|| SearchError::Manifest("best record needs an 'attack' object".to_string()))
        .and_then(|attack| candidate_from_json(attack).map_err(SearchError::Manifest))?;
    let recorded = record
        .get("report")
        .ok_or_else(|| SearchError::Manifest("best record needs a 'report' object".to_string()))?
        .to_compact();
    let report = score_solo(&spec, &search, &candidate)?;
    Ok(ReplayOutcome { attack: candidate.name, recorded, replayed: report.to_json().to_compact() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srs-search-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec::parse(
            r#"{
                "name": "search-test",
                "patch": {"cores": 1, "target_instructions": 18446744073709551615,
                          "trace_records_per_core": 1500, "refresh_window_ns": 8000000,
                          "max_sim_ns": 1500000},
                "defenses": ["baseline"],
                "thresholds": [300],
                "workloads": ["gups"],
                "threads": 2,
                "search": {"population": 4, "generations": 2, "warmup_ns": 200000,
                           "seed": 11, "elites": 1}
            }"#,
        )
        .expect("tiny search spec parses")
    }

    fn run_to_file(spec: &ExperimentSpec, out: &Path) -> SearchOutcome {
        run_search(spec, out, false, 2, None, &mut |_| {}).expect("search runs")
    }

    #[test]
    fn search_stream_is_deterministic_per_seed() {
        let dir = scratch("determinism");
        let spec = tiny_spec();
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        run_to_file(&spec, &a);
        run_to_file(&spec, &b);
        let bytes_a = std::fs::read(&a).unwrap();
        assert_eq!(bytes_a, std::fs::read(&b).unwrap(), "same spec + seed, same bytes");
        assert!(!bytes_a.is_empty());
        for line in String::from_utf8(bytes_a).unwrap().lines() {
            let record = Json::parse(line).expect("every line parses");
            validate_search_record(&record).expect("every line passes the schema");
        }
    }

    #[test]
    fn resumed_campaign_matches_uninterrupted_bytes() {
        let dir = scratch("resume");
        let spec = tiny_spec();
        let reference = dir.join("ref.jsonl");
        let reference_outcome = run_to_file(&spec, &reference);

        let resumed = dir.join("resumed.jsonl");
        // First invocation stops mid-campaign; the second resumes from the
        // manifest and must land on the same bytes.
        run_search(&spec, &resumed, false, 2, Some(1), &mut |_| {}).expect("partial run");
        let outcome = run_search(&spec, &resumed, true, 2, None, &mut |_| {}).expect("resumed run");
        assert_eq!(std::fs::read(&reference).unwrap(), std::fs::read(&resumed).unwrap());
        assert_eq!(outcome.generations_done, 2);
        assert_eq!(outcome.best.report, reference_outcome.best.report);
    }

    #[test]
    fn resume_truncates_a_torn_final_record() {
        let dir = scratch("torn");
        let spec = tiny_spec();
        let reference = dir.join("ref.jsonl");
        run_to_file(&spec, &reference);

        let torn = dir.join("torn.jsonl");
        run_search(&spec, &torn, false, 2, Some(1), &mut |_| {}).expect("partial run");
        // Simulate a crash mid-write: garbage past the committed bytes.
        let mut file = std::fs::OpenOptions::new().append(true).open(&torn).unwrap();
        file.write_all(b"{\"generation\":1,\"camp").unwrap();
        drop(file);
        let outcome = run_search(&spec, &torn, true, 2, None, &mut |_| {}).expect("resumed");
        assert!(outcome.truncated_bytes > 0, "the torn tail was detected and cut");
        assert_eq!(std::fs::read(&reference).unwrap(), std::fs::read(&torn).unwrap());
    }

    #[test]
    fn replay_reproduces_the_recorded_report_bytes() {
        let dir = scratch("replay");
        let spec = tiny_spec();
        let out = dir.join("s.jsonl");
        let outcome = run_to_file(&spec, &out);
        let record = best_record(&spec, &outcome);
        let replay = replay_best(&record).expect("replay runs");
        assert!(
            replay.matches(),
            "replayed report diverged:\n recorded: {}\n replayed: {}",
            replay.recorded,
            replay.replayed
        );
    }

    #[test]
    fn fork_batch_scoring_equals_solo_scoring() {
        let spec = tiny_spec();
        let search_spec = spec.search.clone().unwrap();
        let warm = warm_system(&spec, &search_spec).expect("warm system");
        let candidates = srs_attack::search::shipped_candidates();
        let specs = candidates.iter().map(Candidate::to_attack_spec).collect();
        let batch = warm.fork_each(specs, 2);
        for (candidate, result) in candidates.iter().zip(&batch) {
            let solo = score_solo(&spec, &search_spec, candidate).expect("solo run");
            let batch_report = result.security.as_ref().expect("attacked run reports");
            assert_eq!(
                batch_report.to_json().to_compact(),
                solo.to_json().to_compact(),
                "candidate '{}' scored differently via fork-batch and from scratch",
                candidate.name
            );
        }
    }

    #[test]
    fn mismatched_resume_is_rejected() {
        let dir = scratch("mismatch");
        let spec = tiny_spec();
        let out = dir.join("s.jsonl");
        run_to_file(&spec, &out);
        let mut renamed = spec.clone();
        renamed.name = "someone-else".to_string();
        let err = run_search(&renamed, &out, true, 2, None, &mut |_| {})
            .expect_err("campaign name mismatch must be rejected");
        assert!(matches!(err, SearchError::Manifest(_)));
    }
}
