//! End-to-end fault injection: seeded DRAM bit flips, ECC, and the
//! integrity report.
//!
//! The security layer ([`crate::security`]) states its verdicts in terms of
//! the TRH-crossing *proxy*: a row whose disturbance pressure reaches `TRH`
//! in one refresh window is "hammered". This module models the causal chain
//! the proxy elides, end to end:
//!
//! 1. **Flips** — once a row's window pressure reaches `TRH`, further
//!    disturbance flips concrete bits. The first crossing flips
//!    deterministically; beyond it each disturbance flips with probability
//!    `min(1, excess / TRH)` drawn from a stateless seeded hash, so every
//!    run (and every engine, and every fork) makes identical decisions.
//! 2. **Damage travels** — flips land on the row *physically* at the blast
//!    site but are stored under the **logical** row occupying that location
//!    at flip time ([`srs_dram::DamageStore`]), so a defense swapping the
//!    victim away carries the damage with the data.
//! 3. **ECC** — each demand read of a damaged line is decoded under the
//!    configured [`EccKind`]: corrected, detected-but-uncorrectable, or
//!    silently corrupted. Writes overwrite (heal) the line. An optional
//!    scrub pass walks the store on a simulated-time cadence and removes
//!    what the code can correct.
//!
//! The layer is purely observational — it adds no latency or traffic and
//! only ever *reads* simulation state — so enabling it cannot perturb
//! performance or security results. Its product is the
//! [`IntegrityReport`] on [`crate::metrics::SimResult`].

use serde::{Deserialize, Serialize};
use srs_dram::{
    AccessKind, AddressMapper, DamageStore, DramConfig, EccKind, EccOutcome, MemRequest,
};

use crate::json::{obj, Json, ToJson};

/// Configuration of the fault-injection layer (the `"faults"` block of a
/// spec file). Disabled by default; the layer only runs on attacked cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultsConfig {
    /// Whether bit-flip injection and ECC decode are active.
    pub enabled: bool,
    /// The error-correcting code protecting the modelled DRAM.
    pub ecc: EccKind,
    /// Simulated-ns cadence of the patrol scrubber; 0 disables scrubbing.
    pub scrub_interval_ns: u64,
}

impl FaultsConfig {
    /// The default configuration with injection enabled.
    #[must_use]
    pub fn enabled() -> Self {
        Self { enabled: true, ..Self::default() }
    }

    /// Decode a `"faults"` configuration block.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field if a present field has
    /// the wrong type; absent fields keep their defaults.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let mut config = Self::default();
        let Some(fields) = json.as_object() else {
            return Err("faults config must be an object".to_string());
        };
        for (key, value) in fields {
            match key.as_str() {
                "enabled" => {
                    config.enabled = value.as_bool().ok_or("faults.enabled must be a boolean")?;
                }
                "ecc" => {
                    config.ecc = value
                        .as_str()
                        .and_then(EccKind::from_label)
                        .ok_or("faults.ecc must be one of none/secded/chipkill-lite")?;
                }
                "scrub_interval_ns" => {
                    config.scrub_interval_ns =
                        value.as_u64().ok_or("faults.scrub_interval_ns must be an integer")?;
                }
                other => return Err(format!("unknown faults field '{other}'")),
            }
        }
        Ok(config)
    }
}

impl ToJson for FaultsConfig {
    fn to_json(&self) -> Json {
        obj(vec![
            ("enabled", self.enabled.into()),
            ("ecc", Json::from(self.ecc.label())),
            ("scrub_interval_ns", self.scrub_interval_ns.into()),
        ])
    }
}

/// A bit flip decided at disturbance time but not yet attributed to its
/// logical row (the occupant lookup happens once the controller borrow of
/// the tick ends).
#[derive(Debug, Clone, Copy)]
struct PendingFlip {
    bank: usize,
    physical_row: u64,
    bit: u32,
    at_ns: u64,
}

/// The stateless seeded mixer every flip decision draws from (splitmix64's
/// finalizer: deterministic, well-spread, no RNG stream to snapshot).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The live fault-injection engine of one attacked run: decides flips from
/// the disturbance-pressure stream, tracks row damage, and decodes reads
/// under the configured ECC.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    ecc: EccKind,
    t_rh: u64,
    seed: u64,
    scrub_interval_ns: u64,
    next_scrub_ns: u64,
    mapper: AddressMapper,
    row_bits: u64,
    store: DamageStore,
    pending: Vec<PendingFlip>,
    bit_flips_injected: u64,
    corrupted_reads: u64,
    detected_uncorrectable: u64,
    corrected_reads: u64,
    scrub_saves: u64,
    first_flip_ns: Option<u64>,
    first_corruption_ns: Option<u64>,
}

impl FaultInjector {
    /// An injector for one run: `t_rh` drives the flip probability, `seed`
    /// the per-flip draws (salted so the fault stream is independent of the
    /// workload and mitigation streams derived from the same spec seed).
    #[must_use]
    pub fn new(config: &FaultsConfig, dram: &DramConfig, t_rh: u64, seed: u64) -> Self {
        let scrub = config.scrub_interval_ns;
        Self {
            ecc: config.ecc,
            t_rh: t_rh.max(1),
            seed: seed ^ 0xFA17_FA17_FA17_FA17,
            scrub_interval_ns: scrub,
            next_scrub_ns: if scrub == 0 { u64::MAX } else { scrub },
            mapper: AddressMapper::new(dram.clone()),
            row_bits: (dram.row_size_bytes * 8).max(1),
            store: DamageStore::new(dram.line_size_bytes),
            pending: Vec::new(),
            bit_flips_injected: 0,
            corrupted_reads: 0,
            detected_uncorrectable: 0,
            corrected_reads: 0,
            scrub_saves: 0,
            first_flip_ns: None,
            first_corruption_ns: None,
        }
    }

    /// Feed one disturbance of a physical row whose window pressure has
    /// just reached `total`. Called by the security tracker for every
    /// neighbor of every charged activation; decides whether this
    /// particular disturbance flips a bit.
    ///
    /// The crossing event itself (`total == TRH`) flips deterministically —
    /// `TRH` is *defined* as the disturbance count at which a cell flips.
    /// Past it, each further disturbance flips with probability
    /// `min(1, excess / TRH)` from a stateless seeded draw, so sustained
    /// over-threshold hammering accumulates damage at a rate growing with
    /// the overshoot. Integer-only; no RNG stream state.
    #[inline]
    pub fn on_disturb(&mut self, bank: usize, physical_row: u64, total: u64, at_ns: u64) {
        if total < self.t_rh {
            return;
        }
        let draw = mix64(self.seed ^ mix64((bank as u64) << 40 | physical_row) ^ total);
        if total > self.t_rh {
            let excess = total - self.t_rh;
            if draw % self.t_rh >= excess.min(self.t_rh) {
                return;
            }
        }
        let bit = u32::try_from(mix64(draw) % self.row_bits).unwrap_or(0);
        self.pending.push(PendingFlip { bank, physical_row, bit, at_ns });
    }

    /// Whether any flip decided this tick still awaits attribution.
    #[inline]
    #[must_use]
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Attribute every pending flip to the logical row currently occupying
    /// its blast site (`occupant` is the defense's inverse row mapping) and
    /// commit it to the damage store. Returns the newly flipped
    /// `(bank, logical_row)` pairs for telemetry; re-flips of already-bad
    /// cells are absorbed.
    pub fn commit_pending(&mut self, occupant: impl Fn(usize, u64) -> u64) -> Vec<(usize, u64)> {
        let pending = std::mem::take(&mut self.pending);
        let mut committed = Vec::with_capacity(pending.len());
        for flip in pending {
            let logical = occupant(flip.bank, flip.physical_row);
            if self.store.add_flip(flip.bank, logical, flip.bit) {
                self.bit_flips_injected += 1;
                if self.first_flip_ns.is_none() {
                    self.first_flip_ns = Some(flip.at_ns);
                }
                committed.push((flip.bank, logical));
            }
        }
        committed
    }

    /// Decode one completed demand access against the damage store: reads
    /// of a damaged line classify under the ECC, writes overwrite (heal)
    /// the line. Returns the global bank and serving outcome for a read of
    /// damaged data, `None` for clean reads and all writes.
    pub fn on_access(&mut self, request: &MemRequest, at_ns: u64) -> Option<(usize, EccOutcome)> {
        if self.store.is_empty() {
            return None;
        }
        let decoded = self.mapper.decode(request.addr);
        let bank = decoded.bank_id(self.mapper.config()).index();
        // The request address is the post-remap (physical) one; the logical
        // row rides alongside, which is exactly the damage-store key.
        let row = request.logical_row.unwrap_or(decoded.row);
        let line = decoded.column;
        if request.kind == AccessKind::Write {
            self.store.clear_line(bank, row, line);
            return None;
        }
        let flips = self.store.line_flips(bank, row, line);
        if flips.is_empty() {
            return None;
        }
        let outcome = DamageStore::classify_line(self.ecc, &flips);
        match outcome {
            EccOutcome::Clean => return None,
            EccOutcome::Corrected => self.corrected_reads += 1,
            EccOutcome::DetectedUncorrectable => self.detected_uncorrectable += 1,
            EccOutcome::Silent => {
                self.corrupted_reads += 1;
                if self.first_corruption_ns.is_none() {
                    self.first_corruption_ns = Some(at_ns);
                }
            }
        }
        Some((bank, outcome))
    }

    /// The next scrub deadline, for the event engine's candidate set
    /// (`None` when scrubbing is off).
    #[inline]
    #[must_use]
    pub fn next_scrub_ns(&self) -> Option<u64> {
        (self.scrub_interval_ns > 0).then_some(self.next_scrub_ns)
    }

    /// Run every scrub pass due at `now`: correctable damage is repaired
    /// (counted as scrub saves), detected-but-uncorrectable damage is
    /// counted and left in place, silent damage is invisible to the
    /// scrubber.
    pub fn maybe_scrub(&mut self, now: u64) {
        while self.scrub_interval_ns > 0 && now >= self.next_scrub_ns {
            let (corrected, detected) = self.store.scrub(self.ecc);
            self.scrub_saves += corrected;
            self.detected_uncorrectable += detected;
            self.next_scrub_ns += self.scrub_interval_ns;
        }
    }

    /// Silently corrupted reads served so far.
    #[must_use]
    pub fn corrupted_reads(&self) -> u64 {
        self.corrupted_reads
    }

    /// Bit flips committed so far.
    #[must_use]
    pub fn bit_flips_injected(&self) -> u64 {
        self.bit_flips_injected
    }

    /// Freeze the injector into its report.
    #[must_use]
    pub fn into_report(self) -> IntegrityReport {
        IntegrityReport {
            ecc: self.ecc.label().to_string(),
            bit_flips_injected: self.bit_flips_injected,
            rows_damaged: self.store.damaged_rows() as u64,
            corrupted_reads: self.corrupted_reads,
            detected_uncorrectable: self.detected_uncorrectable,
            corrected_reads: self.corrected_reads,
            scrub_saves: self.scrub_saves,
            first_flip_ns: self.first_flip_ns,
            first_corruption_ns: self.first_corruption_ns,
        }
    }
}

/// Data-integrity metrics of one fault-injected run: what actually happened
/// to memory contents, as opposed to the TRH-crossing proxy of
/// [`crate::security::SecurityReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegrityReport {
    /// The ECC the run modelled ([`EccKind::label`]).
    pub ecc: String,
    /// Distinct bits flipped by disturbance over the run.
    pub bit_flips_injected: u64,
    /// Logical rows still carrying damage when the run ended.
    pub rows_damaged: u64,
    /// Demand reads that served silently corrupted data — the end-to-end
    /// security failure the defenses exist to prevent.
    pub corrupted_reads: u64,
    /// Damaged reads (plus scrub passes) the ECC detected but could not
    /// correct: a machine-check, not silent corruption.
    pub detected_uncorrectable: u64,
    /// Damaged reads the ECC fully corrected.
    pub corrected_reads: u64,
    /// Damaged lines the patrol scrubber repaired before any read saw them.
    pub scrub_saves: u64,
    /// Simulated time of the first committed bit flip, if any.
    pub first_flip_ns: Option<u64>,
    /// Simulated time of the first silently corrupted read, if any.
    pub first_corruption_ns: Option<u64>,
}

impl ToJson for IntegrityReport {
    fn to_json(&self) -> Json {
        obj(vec![
            ("ecc", Json::from(self.ecc.as_str())),
            ("bit_flips_injected", self.bit_flips_injected.into()),
            ("rows_damaged", self.rows_damaged.into()),
            ("corrupted_reads", self.corrupted_reads.into()),
            ("detected_uncorrectable", self.detected_uncorrectable.into()),
            ("corrected_reads", self.corrected_reads.into()),
            ("scrub_saves", self.scrub_saves.into()),
            ("first_flip_ns", self.first_flip_ns.into()),
            ("first_corruption_ns", self.first_corruption_ns.into()),
        ])
    }
}

impl IntegrityReport {
    /// Decode the [`ToJson`] encoding.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let u = |name: &str| -> Result<u64, String> {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("integrity.{name} must be an integer"))
        };
        let opt = |name: &str| -> Result<Option<u64>, String> {
            match json.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(value) => value
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("integrity.{name} must be an integer or null")),
            }
        };
        Ok(Self {
            ecc: json
                .get("ecc")
                .and_then(Json::as_str)
                .ok_or("integrity.ecc must be a string")?
                .to_string(),
            bit_flips_injected: u("bit_flips_injected")?,
            rows_damaged: u("rows_damaged")?,
            corrupted_reads: u("corrupted_reads")?,
            detected_uncorrectable: u("detected_uncorrectable")?,
            corrected_reads: u("corrected_reads")?,
            scrub_saves: u("scrub_saves")?,
            first_flip_ns: opt("first_flip_ns")?,
            first_corruption_ns: opt("first_corruption_ns")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srs_dram::PhysAddr;

    fn injector(ecc: EccKind, t_rh: u64) -> FaultInjector {
        let config = FaultsConfig { enabled: true, ecc, scrub_interval_ns: 0 };
        FaultInjector::new(&config, &DramConfig::default(), t_rh, 0xC0DE)
    }

    #[test]
    fn config_decodes_tolerantly_and_round_trips() {
        let json = Json::parse(r#"{"enabled": true, "ecc": "chipkill-lite"}"#).unwrap();
        let config = FaultsConfig::from_json(&json).unwrap();
        assert!(config.enabled);
        assert_eq!(config.ecc, EccKind::ChipkillLite);
        assert_eq!(config.scrub_interval_ns, 0);
        let back = FaultsConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(back, config);
        assert!(FaultsConfig::from_json(&Json::parse(r#"{"ecc": "parity"}"#).unwrap()).is_err());
        assert!(FaultsConfig::from_json(&Json::parse(r#"{"scrub": 5}"#).unwrap()).is_err());
    }

    #[test]
    fn crossing_flips_deterministically_and_identically_across_clones() {
        let mut a = injector(EccKind::None, 100);
        let mut b = a.clone();
        for total in 1..=150u64 {
            a.on_disturb(3, 77, total, total * 10);
            b.on_disturb(3, 77, total, total * 10);
        }
        let fa = a.commit_pending(|_, row| row);
        let fb = b.commit_pending(|_, row| row);
        assert_eq!(fa, fb, "clones make identical flip decisions");
        assert!(a.bit_flips_injected() >= 1, "the crossing event itself must flip");
        assert_eq!(a.into_report(), b.into_report());
    }

    #[test]
    fn sub_threshold_pressure_never_flips() {
        let mut f = injector(EccKind::None, 1_000);
        for total in 1..1_000u64 {
            f.on_disturb(0, 5, total, total);
        }
        assert!(!f.has_pending());
        assert_eq!(f.into_report().bit_flips_injected, 0);
    }

    #[test]
    fn far_past_threshold_every_disturbance_flips() {
        let mut f = injector(EccKind::None, 10);
        // total >= 2*TRH makes min(excess, TRH) == TRH: certain flip.
        for total in 20..40u64 {
            f.on_disturb(0, 5, total, total);
        }
        assert_eq!(f.pending.len(), 20, "every over-2x disturbance must flip");
        let committed = f.commit_pending(|_, row| row);
        // Commits dedup repeat flips of the same bit, so committed <= 20.
        assert!(!committed.is_empty());
        assert_eq!(f.bit_flips_injected(), committed.len() as u64);
    }

    #[test]
    fn damage_lands_on_the_occupant_at_flip_time() {
        let mut f = injector(EccKind::None, 10);
        f.on_disturb(0, 64, 10, 500);
        // The defense swapped logical row 9000 into physical location 64.
        let committed = f.commit_pending(|_, _| 9_000);
        assert_eq!(committed, vec![(0, 9_000)]);
        let report = f.into_report();
        assert_eq!(report.rows_damaged, 1);
        assert_eq!(report.first_flip_ns, Some(500));
    }

    #[test]
    fn reads_classify_and_writes_heal() {
        let dram = DramConfig::default();
        let mapper = AddressMapper::new(dram.clone());
        let mut f = injector(EccKind::None, 10);
        f.on_disturb(0, 64, 10, 100);
        let committed = f.commit_pending(|_, row| row);
        let (bank, row) = committed[0];
        // Read every line of the damaged row: exactly the damaged line
        // serves corrupted data under no-ECC.
        let mut outcomes = 0;
        for line in 0..dram.lines_per_row() {
            let base = mapper.address_of(srs_dram::BankId::new(bank), row).unwrap().value()
                + line * dram.line_size_bytes;
            let request = MemRequest::new(PhysAddr::new(base), AccessKind::Read, 0, 200)
                .with_logical_row(row);
            if let Some((_, outcome)) = f.on_access(&request, 200) {
                assert_eq!(outcome, EccOutcome::Silent);
                outcomes += 1;
                // A write to the same line heals it.
                let write = MemRequest::new(PhysAddr::new(base), AccessKind::Write, 0, 300)
                    .with_logical_row(row);
                assert!(f.on_access(&write, 300).is_none());
                let reread = MemRequest::new(PhysAddr::new(base), AccessKind::Read, 0, 400)
                    .with_logical_row(row);
                assert!(f.on_access(&reread, 400).is_none(), "write healed the line");
            }
        }
        assert_eq!(outcomes, 1);
        let report = f.into_report();
        assert_eq!(report.corrupted_reads, 1);
        assert_eq!(report.first_corruption_ns, Some(200));
        assert_eq!(report.rows_damaged, 0, "the healing write emptied the store");
    }

    #[test]
    fn secded_corrects_a_single_flip() {
        let dram = DramConfig::default();
        let mapper = AddressMapper::new(dram.clone());
        let mut f = injector(EccKind::Secded, 10);
        f.on_disturb(0, 64, 10, 100);
        let (bank, row) = f.commit_pending(|_, row| row)[0];
        let mut corrected = 0;
        for line in 0..dram.lines_per_row() {
            let base = mapper.address_of(srs_dram::BankId::new(bank), row).unwrap().value()
                + line * dram.line_size_bytes;
            let request = MemRequest::new(PhysAddr::new(base), AccessKind::Read, 0, 200)
                .with_logical_row(row);
            if let Some((_, outcome)) = f.on_access(&request, 200) {
                assert_eq!(outcome, EccOutcome::Corrected);
                corrected += 1;
            }
        }
        assert_eq!(corrected, 1);
        let report = f.into_report();
        assert_eq!(report.corrupted_reads, 0);
        assert_eq!(report.corrected_reads, 1);
        assert_eq!(report.first_corruption_ns, None);
    }

    #[test]
    fn scrub_repairs_correctable_damage_on_cadence() {
        let config = FaultsConfig { enabled: true, ecc: EccKind::Secded, scrub_interval_ns: 1_000 };
        let mut f = FaultInjector::new(&config, &DramConfig::default(), 10, 1);
        f.on_disturb(0, 64, 10, 100);
        f.commit_pending(|_, row| row);
        assert_eq!(f.next_scrub_ns(), Some(1_000));
        f.maybe_scrub(999);
        assert_eq!(f.into_report().scrub_saves, 0);

        let mut f = FaultInjector::new(&config, &DramConfig::default(), 10, 1);
        f.on_disturb(0, 64, 10, 100);
        f.commit_pending(|_, row| row);
        f.maybe_scrub(2_500);
        assert_eq!(f.next_scrub_ns(), Some(3_000), "both elapsed deadlines ran");
        let report = f.into_report();
        assert_eq!(report.scrub_saves, 1, "a single-bit row is scrubbed clean");
        assert_eq!(report.rows_damaged, 0);
    }

    #[test]
    fn integrity_report_round_trips_through_json() {
        let report = IntegrityReport {
            ecc: "secded".to_string(),
            bit_flips_injected: 5,
            rows_damaged: 2,
            corrupted_reads: 1,
            detected_uncorrectable: 3,
            corrected_reads: 4,
            scrub_saves: 6,
            first_flip_ns: Some(12_345),
            first_corruption_ns: None,
        };
        let back = IntegrityReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }
}
