//! Results produced by simulation runs.

use serde::{Deserialize, Serialize};
use srs_dram::ControllerStats;

use crate::faults::IntegrityReport;
use crate::json::{obj, Json, ToJson};
use crate::security::SecurityReport;
use crate::telemetry::TelemetryReport;

/// The result of simulating one workload on one system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Workload name.
    pub workload: String,
    /// Defense name (`"baseline"`, `"rrs"`, `"srs"`, `"scale-srs"`, ...).
    pub defense: String,
    /// Row Hammer threshold of the run.
    pub t_rh: u64,
    /// Simulated time at which the run ended, in nanoseconds.
    pub elapsed_ns: u64,
    /// Per-core instructions-per-cycle values.
    pub per_core_ipc: Vec<f64>,
    /// Total instructions retired by all cores.
    pub instructions: u64,
    /// Memory-controller statistics.
    pub controller: ControllerStats,
    /// Total swaps performed by the defense.
    pub swaps: u64,
    /// Rows pinned in the LLC by Scale-SRS during the run.
    pub rows_pinned: u64,
    /// Demand accesses served from pinned LLC rows instead of DRAM.
    pub pinned_hits: u64,
    /// Largest per-row activation count observed in any refresh window.
    pub max_row_activations_in_window: u64,
    /// Security metrics of the run, present when it carried an attack
    /// scenario ([`crate::config::SystemConfig::attack`]).
    pub security: Option<SecurityReport>,
    /// Data-integrity metrics of the run, present when it carried an
    /// attack scenario with fault injection enabled
    /// ([`crate::config::SystemConfig::faults`]): actual bit flips and
    /// corrupted reads, as opposed to the TRH-crossing proxy in
    /// [`SimResult::security`].
    pub integrity: Option<IntegrityReport>,
    /// Telemetry of the run, present when the configuration armed the
    /// recorder ([`crate::config::SystemConfig::telemetry`]).
    ///
    /// Deliberately **excluded** from [`ToJson`]: the results JSONL stream
    /// is byte-identical whether telemetry was armed or not (CI-enforced),
    /// so arming it can never perturb a published result. Telemetry flows
    /// out through [`crate::telemetry::TelemetrySidecarSink`] and the
    /// `srs-cli trace` exporters instead.
    pub telemetry: Option<TelemetryReport>,
}

impl SimResult {
    /// Sum of per-core IPCs (the throughput metric USIMM reports).
    #[must_use]
    pub fn total_ipc(&self) -> f64 {
        self.per_core_ipc.iter().sum()
    }

    /// Fraction of DRAM activity spent on mitigation (swap) operations.
    #[must_use]
    pub fn swap_traffic_fraction(&self) -> f64 {
        let total = self.controller.activations.max(1) as f64;
        self.controller.maintenance_activations as f64 / total
    }
}

impl ToJson for SimResult {
    fn to_json(&self) -> Json {
        obj(vec![
            ("workload", Json::from(self.workload.as_str())),
            ("defense", Json::from(self.defense.as_str())),
            ("t_rh", self.t_rh.into()),
            ("elapsed_ns", self.elapsed_ns.into()),
            ("per_core_ipc", Json::Array(self.per_core_ipc.iter().map(|&v| v.into()).collect())),
            ("total_ipc", self.total_ipc().into()),
            ("instructions", self.instructions.into()),
            ("controller", self.controller.to_json()),
            ("swaps", self.swaps.into()),
            ("rows_pinned", self.rows_pinned.into()),
            ("pinned_hits", self.pinned_hits.into()),
            ("max_row_activations_in_window", self.max_row_activations_in_window.into()),
            ("security", self.security.as_ref().map_or(Json::Null, ToJson::to_json)),
            ("integrity", self.integrity.as_ref().map_or(Json::Null, ToJson::to_json)),
        ])
    }
}

impl ToJson for ControllerStats {
    fn to_json(&self) -> Json {
        // Per-kind maintenance counts come out of a hash map; sort by the
        // kind's display label so the encoding is deterministic.
        let mut ops: Vec<(String, u64)> =
            self.maintenance_ops.iter().map(|(kind, &count)| (kind.to_string(), count)).collect();
        ops.sort_unstable();
        obj(vec![
            ("reads", self.reads.into()),
            ("writes", self.writes.into()),
            ("row_hits", self.row_hits.into()),
            ("row_misses", self.row_misses.into()),
            ("activations", self.activations.into()),
            ("maintenance_activations", self.maintenance_activations.into()),
            (
                "maintenance_ops",
                Json::Object(ops.into_iter().map(|(k, v)| (k, v.into())).collect()),
            ),
            ("maintenance_busy_ns", self.maintenance_busy_ns.into()),
            ("refreshes", self.refreshes.into()),
            ("total_demand_latency_ns", self.total_demand_latency_ns.into()),
            ("windows_elapsed", self.windows_elapsed.into()),
        ])
    }
}

/// A defense result normalized against its baseline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormalizedResult {
    /// Workload name.
    pub workload: String,
    /// Defense name.
    pub defense: String,
    /// Row Hammer threshold.
    pub t_rh: u64,
    /// Defense IPC divided by baseline IPC (1.0 means no slowdown).
    pub normalized_performance: f64,
    /// The defense run's raw result.
    pub detail: SimResult,
}

impl NormalizedResult {
    /// Slowdown as a positive fraction (0.04 means 4% slower than baseline).
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        1.0 - self.normalized_performance
    }
}

impl ToJson for NormalizedResult {
    fn to_json(&self) -> Json {
        obj(vec![
            ("workload", Json::from(self.workload.as_str())),
            ("defense", Json::from(self.defense.as_str())),
            ("t_rh", self.t_rh.into()),
            ("normalized_performance", self.normalized_performance.into()),
            ("detail", self.detail.to_json()),
        ])
    }
}

/// Arithmetic mean of the normalized performance of a set of results (how
/// the paper aggregates each suite and the ALL-78 bar).
///
/// Accepts anything yielding result references — a `&Vec<NormalizedResult>`
/// or the borrowed groups [`crate::scenario::results_for`] and
/// [`crate::scenario::results_where`] return — so aggregation never forces
/// a clone of the (large) result records.
pub fn mean_normalized<'a, I>(results: I) -> f64
where
    I: IntoIterator<Item = &'a NormalizedResult>,
{
    let (mut sum, mut count) = (0.0f64, 0usize);
    for r in results {
        sum += r.normalized_performance;
        count += 1;
    }
    if count == 0 {
        return 1.0;
    }
    sum / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(norm: f64) -> NormalizedResult {
        NormalizedResult {
            workload: "w".to_string(),
            defense: "d".to_string(),
            t_rh: 1200,
            normalized_performance: norm,
            detail: SimResult {
                workload: "w".to_string(),
                defense: "d".to_string(),
                t_rh: 1200,
                elapsed_ns: 1000,
                per_core_ipc: vec![1.0, 2.0],
                instructions: 100,
                controller: ControllerStats::default(),
                swaps: 0,
                rows_pinned: 0,
                pinned_hits: 0,
                max_row_activations_in_window: 0,
                security: None,
                integrity: None,
                telemetry: None,
            },
        }
    }

    #[test]
    fn total_ipc_sums_cores() {
        assert!((result(1.0).detail.total_ipc() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_is_one_minus_normalized() {
        assert!((result(0.96).slowdown() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn mean_handles_empty_and_nonempty() {
        assert_eq!(mean_normalized(&[] as &[NormalizedResult]), 1.0);
        let results = vec![result(0.9), result(1.0)];
        assert!((mean_normalized(&results) - 0.95).abs() < 1e-12);
        // Borrowed groups (what `results_for` returns) aggregate without
        // cloning.
        let group: Vec<&NormalizedResult> = results.iter().collect();
        assert!((mean_normalized(group) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn swap_fraction_divides_by_activations() {
        let mut r = result(1.0);
        r.detail.controller.activations = 200;
        r.detail.controller.maintenance_activations = 20;
        assert!((r.detail.swap_traffic_fraction() - 0.1).abs() < 1e-12);
    }
}
