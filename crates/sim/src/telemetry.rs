//! Deterministic simulated-time telemetry: event tracing, a
//! counter/gauge/histogram registry, and Perfetto trace export.
//!
//! Everything in this module is keyed on **simulated nanoseconds**, never
//! the wall clock, so an armed run's telemetry is bit-deterministic: two
//! runs of one configuration produce identical traces, and the time-skip
//! engine produces the identical trace to the fixed-step oracle (armed
//! sampling deadlines join the event-time candidate set, so both engines
//! visit every sample tick; see `System::next_event_time`).
//!
//! Telemetry is also provably **non-perturbing**: the recorder only ever
//! observes — no hook mutates simulation state, and the report rides on
//! [`crate::metrics::SimResult`] *outside* its JSON encoding, so a results
//! JSONL stream is byte-identical with telemetry armed or disarmed (CI
//! enforces this on the quickstart grid). Disarmed, every hook is a single
//! predictable branch on [`Telemetry::armed`] — the same zero-cost pattern
//! as [`crate::attribution::SubsystemTimers`], but on simulated time.
//!
//! Events and samples land in preallocated ring buffers that overwrite the
//! oldest entry once full and count what they dropped, so an armed cell has
//! a hard memory bound no matter how hot it runs.

use std::io::Write;

use crate::json::{obj, Json, ToJson};
use crate::scenario::ScenarioResult;
use crate::sink::ResultSink;

/// Configuration of the telemetry subsystem for one simulated cell
/// (the `"telemetry"` block of a spec file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Whether the recorder is armed. Disarmed (the default) costs one
    /// branch per hook and allocates nothing.
    pub enabled: bool,
    /// Simulated-ns cadence of the gauge sampler (queue depths, tracker and
    /// RIT occupancy). Quantized to the engines' 25 ns tick grid at use.
    pub sample_interval_ns: u64,
    /// Capacity of the event ring buffer; the oldest events are overwritten
    /// (and counted as dropped) once it fills.
    pub event_capacity: usize,
    /// Capacity of each gauge's sample ring buffer.
    pub sample_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            sample_interval_ns: 100_000,
            event_capacity: 4096,
            sample_capacity: 2048,
        }
    }
}

impl TelemetryConfig {
    /// The default configuration with the recorder armed.
    #[must_use]
    pub fn armed() -> Self {
        Self { enabled: true, ..Self::default() }
    }

    /// Decode a `"telemetry"` configuration block.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field if a present field has
    /// the wrong type; absent fields keep their defaults.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let mut config = Self::default();
        let Some(fields) = json.as_object() else {
            return Err("telemetry config must be an object".to_string());
        };
        for (key, value) in fields {
            match key.as_str() {
                "enabled" => {
                    config.enabled =
                        value.as_bool().ok_or("telemetry.enabled must be a boolean")?;
                }
                "sample_interval_ns" => {
                    config.sample_interval_ns = value
                        .as_u64()
                        .filter(|&v| v > 0)
                        .ok_or("telemetry.sample_interval_ns must be a positive integer")?;
                }
                "event_capacity" => {
                    config.event_capacity = usize::try_from(
                        value.as_u64().ok_or("telemetry.event_capacity must be an integer")?,
                    )
                    .map_err(|_| "telemetry.event_capacity out of range")?;
                }
                "sample_capacity" => {
                    config.sample_capacity = usize::try_from(
                        value.as_u64().ok_or("telemetry.sample_capacity must be an integer")?,
                    )
                    .map_err(|_| "telemetry.sample_capacity out of range")?;
                }
                other => return Err(format!("unknown telemetry field '{other}'")),
            }
        }
        Ok(config)
    }
}

impl ToJson for TelemetryConfig {
    fn to_json(&self) -> Json {
        obj(vec![
            ("enabled", self.enabled.into()),
            ("sample_interval_ns", self.sample_interval_ns.into()),
            ("event_capacity", self.event_capacity.into()),
            ("sample_capacity", self.sample_capacity.into()),
        ])
    }
}

/// The typed event vocabulary of the trace recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A row-swap maintenance operation was enqueued (value = duration ns).
    Swap,
    /// An unswap-swap operation was enqueued (value = duration ns).
    UnswapSwap,
    /// A place-back / bulk-unswap operation was enqueued (value = duration
    /// ns).
    PlaceBack,
    /// Tracker counter-table DRAM traffic was enqueued (value = duration
    /// ns).
    CounterAccess,
    /// Scale-SRS pinned a row into the LLC (value = logical row).
    RowPin,
    /// The aggressor tracker crossed the swap threshold and triggered the
    /// defense (value = logical row).
    MitigationTrigger,
    /// The security tracker observed the first Row Hammer threshold
    /// crossing of the run (latched once).
    TrhCrossing,
    /// An attacker core changed program phase (bank = attacker index,
    /// value = 1 entering the random-guess phase).
    AttackPhase,
    /// A demand access found its bank queue full and was deferred
    /// (value = deferred-queue depth after the push).
    QueueStall,
    /// The adaptive attack search installed a candidate attack on a fork
    /// of the warm snapshot (value = the candidate's attacker seed).
    SearchPhase,
    /// The fault model committed a bit flip to a logical row (value = the
    /// damaged logical row).
    BitFlip,
    /// A demand read served silently corrupted data past the ECC
    /// (value = the damaged logical row's bank-relative row id is not
    /// recoverable here, so value = 1).
    CorruptedRead,
    /// A defense or tracker hit a capacity limit and took its degraded
    /// path (value = number of saturation events this tick).
    Saturation,
}

impl EventKind {
    /// The stable wire label of this kind.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Swap => "swap",
            EventKind::UnswapSwap => "unswap-swap",
            EventKind::PlaceBack => "place-back",
            EventKind::CounterAccess => "counter-access",
            EventKind::RowPin => "row-pin",
            EventKind::MitigationTrigger => "mitigation-trigger",
            EventKind::TrhCrossing => "trh-crossing",
            EventKind::AttackPhase => "attack-phase",
            EventKind::QueueStall => "queue-stall",
            EventKind::SearchPhase => "search-phase",
            EventKind::BitFlip => "bit-flip",
            EventKind::CorruptedRead => "corrupted-read",
            EventKind::Saturation => "saturation",
        }
    }

    /// Decode a wire label back into its kind.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        Some(match label {
            "swap" => EventKind::Swap,
            "unswap-swap" => EventKind::UnswapSwap,
            "place-back" => EventKind::PlaceBack,
            "counter-access" => EventKind::CounterAccess,
            "row-pin" => EventKind::RowPin,
            "mitigation-trigger" => EventKind::MitigationTrigger,
            "trh-crossing" => EventKind::TrhCrossing,
            "attack-phase" => EventKind::AttackPhase,
            "queue-stall" => EventKind::QueueStall,
            "search-phase" => EventKind::SearchPhase,
            "bit-flip" => EventKind::BitFlip,
            "corrupted-read" => EventKind::CorruptedRead,
            "saturation" => EventKind::Saturation,
            _ => return None,
        })
    }

    /// Whether the event's value is a duration (rendered as a Perfetto
    /// complete slice) rather than an instant payload.
    #[must_use]
    fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::Swap
                | EventKind::UnswapSwap
                | EventKind::PlaceBack
                | EventKind::CounterAccess
        )
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub at_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// The bank the event concerns (attacker index for
    /// [`EventKind::AttackPhase`], 0 where not meaningful).
    pub bank: u32,
    /// Kind-specific payload (duration, row, or depth — see each kind).
    pub value: u64,
}

/// A preallocated ring buffer of trace events that overwrites the oldest
/// entry once full and counts every overwritten event as dropped.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct EventRing {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Next write position once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl EventRing {
    fn new(capacity: usize) -> Self {
        Self { events: Vec::with_capacity(capacity), capacity, head: 0, dropped: 0 }
    }

    #[inline]
    fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
        } else if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// The retained events in chronological order (oldest first).
    fn in_order(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }
}

/// A base-2 exponential histogram: bucket 0 counts zero values and bucket
/// `i >= 1` counts values in `[2^(i-1), 2^i)`, so the full `u64` range maps
/// into 65 buckets with no configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; Self::BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Bucket count: one zero bucket plus one per `u64` bit.
    pub const BUCKETS: usize = 65;

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { buckets: [0; Self::BUCKETS], count: 0, sum: 0 }
    }

    /// The bucket index a value lands in.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The count in one bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= Self::BUCKETS`.
    #[must_use]
    pub fn bucket(&self, bucket: usize) -> u64 {
        self.buckets[bucket]
    }

    /// The occupied `(bucket, count)` pairs, in bucket order.
    #[must_use]
    pub fn occupied(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(i, &count)| (i, count))
            .collect()
    }
}

impl ToJson for Log2Histogram {
    /// Sparse encoding: only occupied buckets are written.
    fn to_json(&self) -> Json {
        let buckets = self
            .occupied()
            .into_iter()
            .map(|(i, count)| Json::Array(vec![i.into(), count.into()]))
            .collect();
        obj(vec![
            ("count", self.count.into()),
            ("sum", self.sum.into()),
            ("buckets", Json::Array(buckets)),
        ])
    }
}

impl Log2Histogram {
    /// Decode the sparse [`ToJson`] encoding.
    ///
    /// # Errors
    ///
    /// Returns a message if a field is missing, mistyped, or a bucket index
    /// is out of range.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let mut histogram = Self::new();
        histogram.count =
            json.get("count").and_then(Json::as_u64).ok_or("histogram.count must be an integer")?;
        histogram.sum =
            json.get("sum").and_then(Json::as_u64).ok_or("histogram.sum must be an integer")?;
        let buckets = json
            .get("buckets")
            .and_then(Json::as_array)
            .ok_or("histogram.buckets must be an array")?;
        for entry in buckets {
            let pair = entry.as_array().filter(|p| p.len() == 2).ok_or("bucket must be a pair")?;
            let index = pair[0]
                .as_u64()
                .and_then(|i| usize::try_from(i).ok())
                .filter(|&i| i < Self::BUCKETS)
                .ok_or("bucket index out of range")?;
            histogram.buckets[index] = pair[1].as_u64().ok_or("bucket count must be an integer")?;
        }
        Ok(histogram)
    }
}

/// One gauge's ring of `(at_ns, value)` samples.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct SampleRing {
    samples: Vec<(u64, u64)>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl SampleRing {
    fn new(capacity: usize) -> Self {
        Self { samples: Vec::with_capacity(capacity), capacity, head: 0, dropped: 0 }
    }

    #[inline]
    fn push(&mut self, at_ns: u64, value: u64) {
        if self.capacity == 0 {
            self.dropped += 1;
        } else if self.samples.len() < self.capacity {
            self.samples.push((at_ns, value));
        } else {
            self.samples[self.head] = (at_ns, value);
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn in_order(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.samples.len());
        out.extend_from_slice(&self.samples[self.head..]);
        out.extend_from_slice(&self.samples[..self.head]);
        out
    }
}

/// The registry of counters, sampled gauges and log2-bucket histograms one
/// armed simulation maintains. Entries are registered once at arm time, so
/// the hot-path update is an indexed store, and the report's metric order
/// is fixed and deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, Log2Histogram)>,
    series: Vec<(&'static str, SampleRing)>,
}

impl MetricsRegistry {
    /// Register a counter, returning its index.
    pub fn counter(&mut self, name: &'static str) -> usize {
        self.counters.push((name, 0));
        self.counters.len() - 1
    }

    /// Register a histogram, returning its index.
    pub fn histogram(&mut self, name: &'static str) -> usize {
        self.histograms.push((name, Log2Histogram::new()));
        self.histograms.len() - 1
    }

    /// Register a sampled gauge with the given ring capacity, returning its
    /// index.
    pub fn series(&mut self, name: &'static str, capacity: usize) -> usize {
        self.series.push((name, SampleRing::new(capacity)));
        self.series.len() - 1
    }

    /// Add to a registered counter.
    #[inline]
    pub fn add(&mut self, counter: usize, delta: u64) {
        self.counters[counter].1 += delta;
    }

    /// Record into a registered histogram.
    #[inline]
    pub fn record(&mut self, histogram: usize, value: u64) {
        self.histograms[histogram].1.record(value);
    }

    /// Push one sample of a registered gauge.
    #[inline]
    pub fn sample(&mut self, series: usize, at_ns: u64, value: u64) {
        self.series[series].1.push(at_ns, value);
    }
}

/// The identifiers of the fixed metric set an armed [`Telemetry`] registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MetricIds {
    mitigations: usize,
    maintenance_ops: usize,
    queue_stalls: usize,
    reads_completed: usize,
    memory_latency: usize,
    swap_stall: usize,
    bank_queue_depth: usize,
    deferred_depth: usize,
    tracker_occupancy: usize,
    rit_live_rows: usize,
    bit_flips: usize,
    corrupted_reads: usize,
    saturation_events: usize,
}

/// The live, in-simulation telemetry recorder.
///
/// Disarmed ([`Telemetry::disarmed`], the default for every configuration
/// with `telemetry.enabled == false`) it holds no buffers and every hook
/// returns after one branch. Armed, it records typed events into a ring,
/// maintains the fixed metric registry, and exposes the next sample
/// deadline for the event engine's candidate set.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    enabled: bool,
    sample_interval_ns: u64,
    next_sample_ns: u64,
    events: EventRing,
    registry: MetricsRegistry,
    ids: Option<MetricIds>,
    trh_latched: bool,
    /// Per-attacker guess-phase latch for transition detection.
    attacker_in_guess: Vec<bool>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disarmed()
    }
}

impl Telemetry {
    /// A disarmed recorder: no buffers, every hook one branch.
    #[must_use]
    pub fn disarmed() -> Self {
        Self {
            enabled: false,
            sample_interval_ns: u64::MAX,
            next_sample_ns: u64::MAX,
            events: EventRing::default(),
            registry: MetricsRegistry::default(),
            ids: None,
            trh_latched: false,
            attacker_in_guess: Vec::new(),
        }
    }

    /// Build a recorder for `config` (disarmed unless `config.enabled`).
    #[must_use]
    pub fn new(config: &TelemetryConfig) -> Self {
        if !config.enabled {
            return Self::disarmed();
        }
        let interval = config.sample_interval_ns.max(1);
        let mut registry = MetricsRegistry::default();
        let ids = MetricIds {
            mitigations: registry.counter("mitigation_triggers"),
            maintenance_ops: registry.counter("maintenance_ops"),
            queue_stalls: registry.counter("queue_stalls"),
            reads_completed: registry.counter("reads_completed"),
            memory_latency: registry.histogram("memory_latency_ns"),
            swap_stall: registry.histogram("swap_stall_ns"),
            bank_queue_depth: registry.series("bank_queue_depth", config.sample_capacity),
            deferred_depth: registry.series("deferred_depth", config.sample_capacity),
            tracker_occupancy: registry.series("tracker_occupancy", config.sample_capacity),
            rit_live_rows: registry.series("rit_live_rows", config.sample_capacity),
            bit_flips: registry.counter("bit_flips"),
            corrupted_reads: registry.counter("corrupted_reads"),
            saturation_events: registry.counter("saturation_events"),
        };
        Self {
            enabled: true,
            sample_interval_ns: interval,
            next_sample_ns: interval,
            events: EventRing::new(config.event_capacity),
            registry,
            ids: Some(ids),
            trh_latched: false,
            attacker_in_guess: Vec::new(),
        }
    }

    /// Whether the recorder is armed.
    #[inline]
    #[must_use]
    pub fn armed(&self) -> bool {
        self.enabled
    }

    /// The next simulated-ns sample deadline, for the event engine's
    /// candidate set (`None` when disarmed).
    #[inline]
    #[must_use]
    pub fn next_sample_ns(&self) -> Option<u64> {
        self.enabled.then_some(self.next_sample_ns)
    }

    /// Whether a sample is due at `now`.
    #[inline]
    #[must_use]
    pub(crate) fn sample_due(&self, now: u64) -> bool {
        self.enabled && self.next_sample_ns <= now
    }

    /// Whether the TRH-crossing event has been recorded.
    #[inline]
    #[must_use]
    pub(crate) fn trh_latched(&self) -> bool {
        self.trh_latched
    }

    /// Record a maintenance row operation (swap family or counter access).
    pub(crate) fn record_op(&mut self, at_ns: u64, kind: EventKind, bank: u32, duration_ns: u64) {
        if !self.enabled {
            return;
        }
        let Some(ids) = self.ids else { return };
        self.registry.add(ids.maintenance_ops, 1);
        if matches!(kind, EventKind::Swap | EventKind::UnswapSwap) {
            self.registry.record(ids.swap_stall, duration_ns);
        }
        self.events.push(TraceEvent { at_ns, kind, bank, value: duration_ns });
    }

    /// Record a mitigation trigger on `bank` for `row`.
    pub(crate) fn record_mitigation(&mut self, at_ns: u64, bank: u32, row: u64) {
        if !self.enabled {
            return;
        }
        let Some(ids) = self.ids else { return };
        self.registry.add(ids.mitigations, 1);
        self.events.push(TraceEvent {
            at_ns,
            kind: EventKind::MitigationTrigger,
            bank,
            value: row,
        });
    }

    /// Record an adaptive-search candidate installation on a warm fork.
    pub(crate) fn record_search_fork(&mut self, at_ns: u64, candidate_seed: u64) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            at_ns,
            kind: EventKind::SearchPhase,
            bank: 0,
            value: candidate_seed,
        });
    }

    /// Record a Scale-SRS row pin.
    pub(crate) fn record_row_pin(&mut self, at_ns: u64, bank: u32, row: u64) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent { at_ns, kind: EventKind::RowPin, bank, value: row });
    }

    /// Record a bank-queue stall (a deferred demand access).
    pub(crate) fn record_queue_stall(&mut self, at_ns: u64, bank: u32, depth: u64) {
        if !self.enabled {
            return;
        }
        let Some(ids) = self.ids else { return };
        self.registry.add(ids.queue_stalls, 1);
        self.events.push(TraceEvent { at_ns, kind: EventKind::QueueStall, bank, value: depth });
    }

    /// Record one completed demand read's end-to-end latency.
    #[inline]
    pub(crate) fn record_read_latency(&mut self, latency_ns: u64) {
        if !self.enabled {
            return;
        }
        let Some(ids) = self.ids else { return };
        self.registry.add(ids.reads_completed, 1);
        self.registry.record(ids.memory_latency, latency_ns);
    }

    /// Record a committed bit flip on logical `row` of `bank`.
    pub(crate) fn record_bit_flip(&mut self, at_ns: u64, bank: u32, row: u64) {
        if !self.enabled {
            return;
        }
        let Some(ids) = self.ids else { return };
        self.registry.add(ids.bit_flips, 1);
        self.events.push(TraceEvent { at_ns, kind: EventKind::BitFlip, bank, value: row });
    }

    /// Record a demand read that served silently corrupted data.
    pub(crate) fn record_corrupted_read(&mut self, at_ns: u64, bank: u32) {
        if !self.enabled {
            return;
        }
        let Some(ids) = self.ids else { return };
        self.registry.add(ids.corrupted_reads, 1);
        self.events.push(TraceEvent { at_ns, kind: EventKind::CorruptedRead, bank, value: 1 });
    }

    /// Record `count` defense/tracker saturation events on `bank`.
    pub(crate) fn record_saturation(&mut self, at_ns: u64, bank: u32, count: u64) {
        if !self.enabled {
            return;
        }
        let Some(ids) = self.ids else { return };
        self.registry.add(ids.saturation_events, count);
        self.events.push(TraceEvent { at_ns, kind: EventKind::Saturation, bank, value: count });
    }

    /// Latch the run's first TRH crossing (subsequent calls are no-ops).
    pub(crate) fn latch_trh_crossing(&mut self, at_ns: u64) {
        if !self.enabled || self.trh_latched {
            return;
        }
        self.trh_latched = true;
        self.events.push(TraceEvent { at_ns, kind: EventKind::TrhCrossing, bank: 0, value: 1 });
    }

    /// Record attacker `index`'s phase, emitting an event on each change.
    pub(crate) fn latch_attack_phase(&mut self, at_ns: u64, index: usize, in_guess: bool) {
        if !self.enabled {
            return;
        }
        if self.attacker_in_guess.len() <= index {
            self.attacker_in_guess.resize(index + 1, false);
        }
        if self.attacker_in_guess[index] != in_guess {
            self.attacker_in_guess[index] = in_guess;
            self.events.push(TraceEvent {
                at_ns,
                kind: EventKind::AttackPhase,
                bank: u32::try_from(index).unwrap_or(u32::MAX),
                value: u64::from(in_guess),
            });
        }
    }

    /// Push one sample of every gauge and advance the sample deadline.
    pub(crate) fn sample(
        &mut self,
        at_ns: u64,
        bank_queue_depth: u64,
        deferred_depth: u64,
        tracker_occupancy: u64,
        rit_live_rows: u64,
    ) {
        if !self.enabled {
            return;
        }
        let Some(ids) = self.ids else { return };
        self.registry.sample(ids.bank_queue_depth, at_ns, bank_queue_depth);
        self.registry.sample(ids.deferred_depth, at_ns, deferred_depth);
        self.registry.sample(ids.tracker_occupancy, at_ns, tracker_occupancy);
        self.registry.sample(ids.rit_live_rows, at_ns, rit_live_rows);
        self.next_sample_ns += self.sample_interval_ns;
    }

    /// Freeze the recorder into its report (`None` when disarmed).
    #[must_use]
    pub(crate) fn take_report(&mut self) -> Option<TelemetryReport> {
        if !self.enabled {
            return None;
        }
        let registry = std::mem::take(&mut self.registry);
        Some(TelemetryReport {
            sample_interval_ns: self.sample_interval_ns,
            events: self.events.in_order(),
            events_dropped: self.events.dropped,
            counters: registry.counters.iter().map(|(n, v)| ((*n).to_string(), *v)).collect(),
            histograms: registry
                .histograms
                .iter()
                .map(|(n, h)| ((*n).to_string(), h.clone()))
                .collect(),
            series: registry
                .series
                .iter()
                .map(|(n, s)| {
                    ((*n).to_string(), SampleSeries { samples: s.in_order(), dropped: s.dropped })
                })
                .collect(),
        })
    }
}

/// One gauge's frozen sample sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SampleSeries {
    /// `(at_ns, value)` samples in chronological order.
    pub samples: Vec<(u64, u64)>,
    /// Samples overwritten because the ring was full.
    pub dropped: u64,
}

/// The frozen telemetry of one finished cell, carried on
/// [`crate::metrics::SimResult`] (and deliberately *excluded* from its JSON
/// encoding, so results streams stay byte-identical armed vs disarmed).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    /// The sampling cadence the run used.
    pub sample_interval_ns: u64,
    /// The retained trace events, in chronological order.
    pub events: Vec<TraceEvent>,
    /// Events overwritten because the event ring was full.
    pub events_dropped: u64,
    /// Named monotonic counters, in registration order.
    pub counters: Vec<(String, u64)>,
    /// Named log2-bucket histograms, in registration order.
    pub histograms: Vec<(String, Log2Histogram)>,
    /// Named sampled gauges, in registration order.
    pub series: Vec<(String, SampleSeries)>,
}

impl ToJson for TelemetryReport {
    fn to_json(&self) -> Json {
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::Array(vec![
                    e.at_ns.into(),
                    e.kind.label().into(),
                    u64::from(e.bank).into(),
                    e.value.into(),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| Json::Array(vec![Json::from(name.clone()), (*value).into()]))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| Json::Array(vec![Json::from(name.clone()), h.to_json()]))
            .collect();
        let series = self
            .series
            .iter()
            .map(|(name, s)| {
                let samples =
                    s.samples.iter().map(|&(t, v)| Json::Array(vec![t.into(), v.into()])).collect();
                Json::Array(vec![
                    Json::from(name.clone()),
                    obj(vec![("dropped", s.dropped.into()), ("samples", Json::Array(samples))]),
                ])
            })
            .collect();
        obj(vec![
            ("sample_interval_ns", self.sample_interval_ns.into()),
            ("events_dropped", self.events_dropped.into()),
            ("events", Json::Array(events)),
            ("counters", Json::Array(counters)),
            ("histograms", Json::Array(histograms)),
            ("series", Json::Array(series)),
        ])
    }
}

impl TelemetryReport {
    /// Decode the [`ToJson`] encoding (the exact inverse: a report survives
    /// encode → parse → decode bit for bit; property-tested in
    /// `tests/telemetry_roundtrip.rs`).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let mut report = Self {
            sample_interval_ns: json
                .get("sample_interval_ns")
                .and_then(Json::as_u64)
                .ok_or("telemetry.sample_interval_ns must be an integer")?,
            events_dropped: json
                .get("events_dropped")
                .and_then(Json::as_u64)
                .ok_or("telemetry.events_dropped must be an integer")?,
            ..Self::default()
        };
        let events = json
            .get("events")
            .and_then(Json::as_array)
            .ok_or("telemetry.events must be an array")?;
        for event in events {
            let fields =
                event.as_array().filter(|f| f.len() == 4).ok_or("event must be a 4-tuple")?;
            report.events.push(TraceEvent {
                at_ns: fields[0].as_u64().ok_or("event time must be an integer")?,
                kind: fields[1]
                    .as_str()
                    .and_then(EventKind::from_label)
                    .ok_or("unknown event kind")?,
                bank: fields[2]
                    .as_u64()
                    .and_then(|b| u32::try_from(b).ok())
                    .ok_or("event bank out of range")?,
                value: fields[3].as_u64().ok_or("event value must be an integer")?,
            });
        }
        for (key, entries) in [("counters", &mut report.counters)] {
            let array = json
                .get(key)
                .and_then(Json::as_array)
                .ok_or("telemetry.counters must be an array")?;
            for entry in array {
                let pair =
                    entry.as_array().filter(|p| p.len() == 2).ok_or("counter must be a pair")?;
                entries.push((
                    pair[0].as_str().ok_or("counter name must be a string")?.to_string(),
                    pair[1].as_u64().ok_or("counter value must be an integer")?,
                ));
            }
        }
        let histograms = json
            .get("histograms")
            .and_then(Json::as_array)
            .ok_or("telemetry.histograms must be an array")?;
        for entry in histograms {
            let pair =
                entry.as_array().filter(|p| p.len() == 2).ok_or("histogram must be a pair")?;
            report.histograms.push((
                pair[0].as_str().ok_or("histogram name must be a string")?.to_string(),
                Log2Histogram::from_json(&pair[1])?,
            ));
        }
        let series = json
            .get("series")
            .and_then(Json::as_array)
            .ok_or("telemetry.series must be an array")?;
        for entry in series {
            let pair = entry.as_array().filter(|p| p.len() == 2).ok_or("series must be a pair")?;
            let name = pair[0].as_str().ok_or("series name must be a string")?.to_string();
            let dropped = pair[1]
                .get("dropped")
                .and_then(Json::as_u64)
                .ok_or("series.dropped must be an integer")?;
            let samples = pair[1]
                .get("samples")
                .and_then(Json::as_array)
                .ok_or("series.samples must be an array")?;
            let mut decoded = Vec::with_capacity(samples.len());
            for sample in samples {
                let point =
                    sample.as_array().filter(|p| p.len() == 2).ok_or("sample must be a pair")?;
                decoded.push((
                    point[0].as_u64().ok_or("sample time must be an integer")?,
                    point[1].as_u64().ok_or("sample value must be an integer")?,
                ));
            }
            report.series.push((name, SampleSeries { samples: decoded, dropped }));
        }
        Ok(report)
    }

    /// Render this report as a Chrome/Perfetto trace-event JSON document
    /// (`{"displayTimeUnit": "ns", "traceEvents": [...]}`): maintenance
    /// operations become complete slices (`ph: "X"`, one track per bank),
    /// point events become instants (`ph: "i"`), and every sampled gauge
    /// becomes a counter track (`ph: "C"`). Timestamps are microseconds, as
    /// the trace-event format requires; `label` names the process track.
    ///
    /// Load the result at <https://ui.perfetto.dev> or `chrome://tracing`.
    #[must_use]
    pub fn to_perfetto(&self, label: &str) -> Json {
        let us = |ns: u64| Json::Float(ns as f64 / 1_000.0);
        let mut trace_events = vec![obj(vec![
            ("name", "process_name".into()),
            ("ph", "M".into()),
            ("pid", 0u64.into()),
            ("tid", 0u64.into()),
            ("args", obj(vec![("name", label.into())])),
        ])];
        for event in &self.events {
            let tid = u64::from(event.bank);
            if event.kind.is_span() {
                trace_events.push(obj(vec![
                    ("name", event.kind.label().into()),
                    ("cat", "maintenance".into()),
                    ("ph", "X".into()),
                    ("ts", us(event.at_ns)),
                    ("dur", us(event.value)),
                    ("pid", 0u64.into()),
                    ("tid", tid.into()),
                ]));
            } else {
                trace_events.push(obj(vec![
                    ("name", event.kind.label().into()),
                    ("cat", "event".into()),
                    ("ph", "i".into()),
                    ("s", "t".into()),
                    ("ts", us(event.at_ns)),
                    ("pid", 0u64.into()),
                    ("tid", tid.into()),
                    ("args", obj(vec![("value", event.value.into())])),
                ]));
            }
        }
        for (name, series) in &self.series {
            for &(at_ns, value) in &series.samples {
                trace_events.push(obj(vec![
                    ("name", Json::from(name.clone())),
                    ("ph", "C".into()),
                    ("ts", us(at_ns)),
                    ("pid", 0u64.into()),
                    ("args", obj(vec![("value", value.into())])),
                ]));
            }
        }
        obj(vec![("displayTimeUnit", "ns".into()), ("traceEvents", Json::Array(trace_events))])
    }

    /// The value of a named counter, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A named histogram, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// A named sample series, if registered.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&SampleSeries> {
        self.series.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

/// A [`ResultSink`] that writes one compact telemetry JSONL line per cell
/// that carries a report — the streamable sidecar of the results stream
/// (cells without telemetry are skipped, so a disarmed grid writes
/// nothing).
#[derive(Debug)]
pub struct TelemetrySidecarSink<W: Write> {
    writer: W,
    records: usize,
    error: Option<std::io::Error>,
}

impl<W: Write> TelemetrySidecarSink<W> {
    /// Stream telemetry records into `writer`.
    #[must_use]
    pub fn new(writer: W) -> Self {
        Self { writer, records: 0, error: None }
    }

    /// Number of telemetry records written.
    #[must_use]
    pub fn records_written(&self) -> usize {
        self.records
    }

    /// Flush and return the underlying writer, or the first latched error.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the sink latched mid-stream.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(error) = self.error {
            return Err(error);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> ResultSink for TelemetrySidecarSink<W> {
    fn on_result(&mut self, result: &ScenarioResult) {
        if self.error.is_some() {
            return;
        }
        let Some(telemetry) = &result.result.detail.telemetry else { return };
        let line = obj(vec![
            ("index", result.scenario.index.into()),
            ("workload", Json::from(result.scenario.workload.name)),
            ("defense", Json::from(result.scenario.defense.to_string())),
            ("t_rh", result.scenario.t_rh.into()),
            ("telemetry", telemetry.to_json()),
        ])
        .to_compact();
        match self.writer.write_all(line.as_bytes()).and_then(|()| self.writer.write_all(b"\n")) {
            Ok(()) => self.records += 1,
            Err(error) => self.error = Some(error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_recorder_records_nothing_and_reports_none() {
        let mut telemetry = Telemetry::disarmed();
        assert!(!telemetry.armed());
        assert_eq!(telemetry.next_sample_ns(), None);
        telemetry.record_mitigation(100, 0, 7);
        telemetry.record_read_latency(40);
        telemetry.sample(100, 1, 2, 3, 4);
        assert_eq!(telemetry.take_report(), None);
    }

    #[test]
    fn event_ring_overwrites_oldest_and_counts_drops() {
        let mut ring = EventRing::new(2);
        for at_ns in 0..5u64 {
            ring.push(TraceEvent { at_ns, kind: EventKind::Swap, bank: 0, value: 0 });
        }
        assert_eq!(ring.dropped, 3);
        let kept: Vec<u64> = ring.in_order().iter().map(|e| e.at_ns).collect();
        assert_eq!(kept, vec![3, 4], "most recent events survive");
    }

    #[test]
    fn histogram_buckets_split_at_powers_of_two() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert_eq!(h.occupied(), vec![(0, 1), (64, 2)]);
        let back = Log2Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn armed_recorder_samples_on_cadence_and_freezes_a_report() {
        let config =
            TelemetryConfig { enabled: true, sample_interval_ns: 100, ..Default::default() };
        let mut telemetry = Telemetry::new(&config);
        assert_eq!(telemetry.next_sample_ns(), Some(100));
        assert!(!telemetry.sample_due(99));
        assert!(telemetry.sample_due(100));
        telemetry.sample(100, 5, 0, 2, 1);
        assert_eq!(telemetry.next_sample_ns(), Some(200));
        telemetry.record_mitigation(150, 3, 42);
        telemetry.record_op(160, EventKind::Swap, 3, 2_000);
        telemetry.record_queue_stall(170, 1, 9);
        telemetry.record_read_latency(75);
        telemetry.latch_trh_crossing(180);
        telemetry.latch_trh_crossing(190); // latched once
        telemetry.latch_attack_phase(200, 0, false); // no transition
        telemetry.latch_attack_phase(210, 0, true); // transition
        let report = telemetry.take_report().expect("armed run yields a report");
        assert_eq!(report.sample_interval_ns, 100);
        assert_eq!(report.counter("mitigation_triggers"), Some(1));
        assert_eq!(report.counter("queue_stalls"), Some(1));
        assert_eq!(report.counter("reads_completed"), Some(1));
        assert_eq!(report.histogram("swap_stall_ns").unwrap().count(), 1);
        let kinds: Vec<EventKind> = report.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::MitigationTrigger,
                EventKind::Swap,
                EventKind::QueueStall,
                EventKind::TrhCrossing,
                EventKind::AttackPhase,
            ]
        );
        let series = &report.series.iter().find(|(n, _)| n == "bank_queue_depth").unwrap().1;
        assert_eq!(series.samples, vec![(100, 5)]);
    }

    #[test]
    fn report_round_trips_through_json() {
        let config =
            TelemetryConfig { enabled: true, sample_interval_ns: 50, ..Default::default() };
        let mut telemetry = Telemetry::new(&config);
        telemetry.sample(50, 1, 2, 3, 4);
        telemetry.record_op(60, EventKind::UnswapSwap, 2, 4_000);
        telemetry.record_read_latency(u64::MAX);
        let report = telemetry.take_report().unwrap();
        let back = TelemetryReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn event_kind_labels_round_trip() {
        for kind in [
            EventKind::Swap,
            EventKind::UnswapSwap,
            EventKind::PlaceBack,
            EventKind::CounterAccess,
            EventKind::RowPin,
            EventKind::MitigationTrigger,
            EventKind::TrhCrossing,
            EventKind::AttackPhase,
            EventKind::QueueStall,
            EventKind::SearchPhase,
            EventKind::BitFlip,
            EventKind::CorruptedRead,
            EventKind::Saturation,
        ] {
            assert_eq!(EventKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(EventKind::from_label("nope"), None);
    }

    #[test]
    fn perfetto_export_has_the_trace_event_shape() {
        let config = TelemetryConfig::armed();
        let mut telemetry = Telemetry::new(&config);
        telemetry.record_op(1_000, EventKind::Swap, 4, 2_500);
        telemetry.record_mitigation(900, 4, 17);
        telemetry.sample(100_000, 8, 0, 3, 1);
        let report = telemetry.take_report().unwrap();
        let trace = report.to_perfetto("gups/scale-srs");
        assert_eq!(trace.get("displayTimeUnit").and_then(Json::as_str), Some("ns"));
        let events = trace.get("traceEvents").and_then(Json::as_array).unwrap();
        // Metadata + 2 events + 4 gauge samples (one per registered series
        // with a sample... only series with samples emit counters).
        assert!(events.len() >= 3);
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("swap renders as a complete slice");
        assert_eq!(slice.get("name").and_then(Json::as_str), Some("swap"));
        assert_eq!(slice.get("ts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(slice.get("dur").and_then(Json::as_f64), Some(2.5));
        let counter = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .expect("gauge samples render as counter events");
        assert!(counter.get("args").and_then(|a| a.get("value")).is_some());
        // The whole document survives the codec (what `check-json` does).
        let text = trace.to_pretty();
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn config_decodes_tolerantly_and_rejects_unknown_fields() {
        let json = Json::parse(r#"{"enabled": true, "sample_interval_ns": 5000}"#).unwrap();
        let config = TelemetryConfig::from_json(&json).unwrap();
        assert!(config.enabled);
        assert_eq!(config.sample_interval_ns, 5_000);
        assert_eq!(config.event_capacity, TelemetryConfig::default().event_capacity);
        let bad = Json::parse(r#"{"cadence": 5}"#).unwrap();
        assert!(TelemetryConfig::from_json(&bad).is_err());
        let zero = Json::parse(r#"{"sample_interval_ns": 0}"#).unwrap();
        assert!(TelemetryConfig::from_json(&zero).is_err());
        let config = TelemetryConfig::armed();
        let back = TelemetryConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(back, config);
    }
}
